//! panic-path fixture: linted under a serving-module classification.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

fn bad_panics(x: u32) {
    if x > 2 {
        panic!("boom");
    }
    unreachable!();
}

fn bad_index(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

fn ok_bounded(xs: &[u32], i: usize) -> u32 {
    xs[i % xs.len()]
}

fn ok_masked(xs: &[u32], i: usize) -> u32 {
    xs[i & 7]
}

fn ok_checked(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let xs = [1u32, 2];
        assert_eq!(xs[0], 1);
    }
}
