//! Interchange: JSON (serde) helpers, a typed parse path for untrusted
//! input, and Graphviz DOT export.
//!
//! The string-error [`from_json`] is the convenience path for CLI use; the
//! typed [`from_json_typed`] / [`graph_from_value`] path is what services
//! ingesting untrusted documents should call — it distinguishes syntax
//! errors, shape errors, out-of-range numeric values (with task/point
//! context) and semantic graph violations, instead of flattening everything
//! into one message.

use crate::graph::{TaskGraph, TaskGraphError, TaskNode};
use serde::json::Value;
use std::fmt;
use std::fmt::Write as _;

/// Typed failure modes of parsing a task graph from an interchange document.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// The document is not valid JSON.
    Syntax {
        /// Parser message (includes the byte offset).
        message: String,
    },
    /// The document is valid JSON but not shaped like a task graph
    /// (missing or mistyped `tasks` / `edges` fields).
    Shape {
        /// What was wrong.
        message: String,
    },
    /// A design-point number is out of range: non-finite, non-positive
    /// duration, or negative current. Caught *before* graph construction so
    /// the report can name the exact task and point.
    InvalidValue {
        /// Name of the offending task.
        task: String,
        /// 0-based index of the offending design point.
        point: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The values were well-formed but violate a graph invariant
    /// (cycle, duplicate edge, non-uniform point counts, …).
    Graph(TaskGraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { message } => write!(f, "invalid JSON: {message}"),
            Self::Shape { message } => write!(f, "not a task graph: {message}"),
            Self::InvalidValue {
                task,
                point,
                message,
            } => write!(f, "design point {point} of task {task}: {message}"),
            Self::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<TaskGraphError> for IoError {
    fn from(e: TaskGraphError) -> Self {
        Self::Graph(e)
    }
}

/// Serialises a graph to pretty JSON.
pub fn to_json(g: &TaskGraph) -> String {
    serde_json::to_string_pretty(g).expect("task graphs always serialise")
}

/// Parses a graph from JSON, revalidating all invariants.
///
/// # Errors
///
/// Returns a human-readable message; [`from_json_typed`] preserves the
/// error structure for callers that route on it.
pub fn from_json(json: &str) -> Result<TaskGraph, String> {
    from_json_typed(json).map_err(|e| e.to_string())
}

/// Parses a graph from JSON with typed errors — the ingestion path for
/// untrusted input (the scheduling service's wire format builds on it).
///
/// On top of [`from_json`]'s validation this rejects, with precise context:
///
/// * non-finite durations/currents/voltages (JSON cannot spell `NaN`, but
///   `1e999` parses to `inf`), non-positive durations and negative currents
///   *before* graph construction ([`IoError::InvalidValue`]);
/// * duplicate edges ([`TaskGraphError::DuplicateEdge`]) — interchange
///   documents must list each edge exactly once.
///
/// # Errors
///
/// Every [`IoError`] variant is reachable; see its docs.
pub fn from_json_typed(json: &str) -> Result<TaskGraph, IoError> {
    let v = serde::json::parse(json).map_err(|e| IoError::Syntax {
        message: e.to_string(),
    })?;
    graph_from_value(&v)
}

/// [`from_json_typed`] over an already-parsed JSON value — lets embedding
/// formats (a request envelope carrying a graph field) validate the graph
/// without re-serialising it.
///
/// # Errors
///
/// Every [`IoError`] variant except `Syntax`.
pub fn graph_from_value(v: &Value) -> Result<TaskGraph, IoError> {
    let shape_err = |message: String| IoError::Shape { message };
    if v.as_obj().is_none() {
        return Err(shape_err("expected a JSON object".into()));
    }
    let tasks_v = v
        .get("tasks")
        .ok_or_else(|| shape_err("missing field `tasks`".into()))?;
    let tasks: Vec<TaskNode> = serde::Deserialize::from_value(tasks_v)
        .map_err(|e| shape_err(format!("field `tasks`: {e}")))?;
    let edges_v = v
        .get("edges")
        .ok_or_else(|| shape_err("missing field `edges`".into()))?;
    let edges: Vec<(usize, usize)> = serde::Deserialize::from_value(edges_v)
        .map_err(|e| shape_err(format!("field `edges`: {e}")))?;

    for t in &tasks {
        for (j, p) in t.points.iter().enumerate() {
            let bad = |message: &str| IoError::InvalidValue {
                task: t.name.clone(),
                point: j,
                message: message.into(),
            };
            if !(p.duration.is_finite() && p.duration.value() > 0.0) {
                return Err(bad("duration must be positive and finite"));
            }
            if !(p.current.is_finite() && p.current.is_non_negative()) {
                return Err(bad("current must be non-negative and finite"));
            }
            if !(p.voltage.is_finite() && p.voltage.value() > 0.0) {
                return Err(bad("voltage must be positive and finite"));
            }
        }
    }

    Ok(TaskGraph::from_parts(tasks, edges, true)?)
}

/// Renders the DAG in Graphviz DOT format, labelling each task with its
/// design-point table.
pub fn to_dot(g: &TaskGraph) -> String {
    let mut out = String::from("digraph taskgraph {\n  rankdir=TB;\n  node [shape=record];\n");
    for t in g.task_ids() {
        let node = g.task(t);
        let mut label = format!("{{{}|", node.name);
        for (j, p) in node.points.iter().enumerate() {
            if j > 0 {
                label.push_str("\\n");
            }
            let _ = write!(
                label,
                "DP{}: {:.0} mA, {:.1} min",
                j + 1,
                p.current.value(),
                p.duration.value()
            );
        }
        label.push('}');
        let _ = writeln!(out, "  t{} [label=\"{}\"];", t.index(), label);
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  t{} -> t{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

/// Round-trips a graph through JSON; used by tests and the CLI self-check.
///
/// # Errors
///
/// Propagates parse errors (which indicate a serialisation bug).
pub fn round_trip(g: &TaskGraph) -> Result<TaskGraph, String> {
    from_json(&to_json(g))
}

/// Re-exported for error-type uniformity in downstream code.
pub type GraphResult<T> = Result<T, TaskGraphError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{g2, g3};

    #[test]
    fn json_round_trip_paper_graphs() {
        for g in [g2(), g3()] {
            let back = round_trip(&g).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn from_json_reports_syntax_errors() {
        assert!(from_json("{ not json").is_err());
    }

    #[test]
    fn from_json_reports_semantic_errors() {
        let json = r#"{"tasks": [], "edges": []}"#;
        let err = from_json(json).unwrap_err();
        assert!(err.contains("no tasks"), "got: {err}");
    }

    fn one_point_task(name: &str, duration: f64, current: f64) -> String {
        format!(
            r#"{{"name":"{name}","points":[{{"duration":{duration:?},"current":{current:?},"voltage":1.0}}]}}"#
        )
    }

    #[test]
    fn typed_errors_classify_failures() {
        // Syntax.
        assert!(matches!(
            from_json_typed("{ nope").unwrap_err(),
            IoError::Syntax { .. }
        ));
        // Shape: not an object / missing or mistyped fields.
        assert!(matches!(
            from_json_typed("[1,2]").unwrap_err(),
            IoError::Shape { .. }
        ));
        assert!(matches!(
            from_json_typed(r#"{"edges": []}"#).unwrap_err(),
            IoError::Shape { .. }
        ));
        assert!(matches!(
            from_json_typed(r#"{"tasks": 3, "edges": []}"#).unwrap_err(),
            IoError::Shape { .. }
        ));
        // Semantic graph violation.
        assert!(matches!(
            from_json_typed(r#"{"tasks": [], "edges": []}"#).unwrap_err(),
            IoError::Graph(TaskGraphError::Empty)
        ));
    }

    #[test]
    fn typed_parse_rejects_bad_numbers_with_context() {
        for (duration, current, what) in [
            ("-2.0", "10.0", "duration"),
            ("0.0", "10.0", "duration"),
            ("1e999", "10.0", "duration"), // JSON spelling of +inf
            ("1.0", "-5.0", "current"),
            ("1.0", "1e999", "current"),
        ] {
            // Built textually so 1e999 reaches the parser as written.
            let json = format!(
                r#"{{"tasks":[{{"name":"T","points":[{{"duration":{duration},"current":{current},"voltage":1.0}}]}}],"edges":[]}}"#
            );
            let err = from_json_typed(&json).unwrap_err();
            match err {
                IoError::InvalidValue {
                    task,
                    point,
                    message,
                } => {
                    assert_eq!(task, "T");
                    assert_eq!(point, 0);
                    assert!(message.contains(what), "{message} should mention {what}");
                }
                other => panic!("{duration}/{current}: expected InvalidValue, got {other:?}"),
            }
        }
    }

    #[test]
    fn typed_parse_rejects_duplicate_edges() {
        let json = format!(
            r#"{{"tasks":[{},{}],"edges":[[0,1],[0,1]]}}"#,
            one_point_task("A", 1.0, 10.0),
            one_point_task("B", 2.0, 5.0)
        );
        assert_eq!(
            from_json_typed(&json).unwrap_err(),
            IoError::Graph(TaskGraphError::DuplicateEdge { from: 0, to: 1 })
        );
        // And the string path reports it readably.
        assert!(from_json(&json).unwrap_err().contains("more than once"));
    }

    #[test]
    fn dot_mentions_every_task_and_edge() {
        let g = g2();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for t in g.task_ids() {
            assert!(dot.contains(&format!("t{} [", t.index())));
        }
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        assert!(dot.contains("938 mA"));
    }
}
