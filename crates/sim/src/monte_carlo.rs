//! Monte-Carlo robustness analysis — an extension beyond the paper.
//!
//! The paper schedules against *worst-case* execution times. Real tasks
//! jitter, and a schedule whose battery margin is thin can die on an
//! unlucky run even though the nominal plan fits. This module samples
//! jittered missions (each task's duration scaled by an independent
//! uniform factor) and estimates the probability that the mission
//! completes within both the deadline and the battery.

use crate::engine::Simulator;
use batsched_battery::model::BatteryModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::units::Minutes;
use batsched_core::Schedule;
use batsched_taskgraph::TaskGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Uniform multiplicative jitter on task durations:
/// `actual = nominal · U(1 − spread, 1 + spread)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationJitter {
    /// Relative half-width of the uniform factor, in `[0, 1)`.
    pub spread: f64,
}

impl DurationJitter {
    /// No jitter: every sample equals the nominal mission.
    pub const NONE: Self = Self { spread: 0.0 };
}

/// Aggregate outcome of a Monte-Carlo campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Samples drawn.
    pub samples: usize,
    /// Missions that finished all tasks within deadline and battery.
    pub successes: usize,
    /// Missions that ran out of battery.
    pub depletions: usize,
    /// Missions that finished the work but after the deadline.
    pub deadline_misses: usize,
    /// `successes / samples`.
    pub success_rate: f64,
    /// Mean completion time of successful missions (minutes).
    pub mean_makespan: f64,
}

/// Monte-Carlo mission sampler (deterministic per seed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionSampler {
    /// The simulator configuration (platform, capacity, deadline).
    pub simulator: Simulator,
    /// Duration jitter model.
    pub jitter: DurationJitter,
    /// Number of missions to sample.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of one sampled mission.
#[derive(Clone, Copy)]
enum TrialOutcome {
    Success { makespan: f64 },
    Depleted,
    Late,
}

impl MissionSampler {
    /// Stable per-trial seed: trials are independent streams so the
    /// campaign produces identical results whether trials run sequentially
    /// or in parallel.
    fn trial_seed(&self, trial: usize) -> u64 {
        self.seed ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Samples one jittered mission.
    fn trial<M: BatteryModel + ?Sized>(
        &self,
        g: &TaskGraph,
        schedule: &Schedule,
        model: &M,
        trial: usize,
    ) -> TrialOutcome {
        let mut rng = StdRng::seed_from_u64(self.trial_seed(trial));
        let spread = self.jitter.spread.clamp(0.0, 0.999);
        // Build the jittered physical profile (transitions included).
        let mut p = LoadProfile::with_capacity(2 * schedule.order().len());
        let mut prev_col: Option<usize> = None;
        let mut makespan = 0.0f64;
        for &t in schedule.order() {
            let col = schedule.point_of(t).index();
            if let Some(prev) = prev_col {
                let tt = self.simulator.platform.transition_time(prev, col);
                if tt.value() > 0.0 {
                    if self.simulator.platform.transition.current.value() > 0.0 {
                        p.push(tt, self.simulator.platform.transition.current)
                            .expect("positive transition");
                    } else {
                        p.push_rest(tt).expect("positive transition");
                    }
                    makespan += tt.value();
                }
            }
            let pt = g.point(t, schedule.point_of(t));
            let factor = if spread > 0.0 {
                rng.gen_range(1.0 - spread..=1.0 + spread)
            } else {
                1.0
            };
            let dur = Minutes::new(pt.duration.value() * factor);
            p.push(dur, pt.current).expect("positive jittered duration");
            makespan += dur.value();
            prev_col = Some(col);
        }

        let died = model
            .lifetime(&p, self.simulator.capacity)
            .is_some_and(|at| at.value() < makespan);
        if died {
            TrialOutcome::Depleted
        } else if self
            .simulator
            .deadline
            .is_some_and(|d| makespan > d.value() + 1e-9)
        {
            TrialOutcome::Late
        } else {
            TrialOutcome::Success { makespan }
        }
    }

    fn tally(&self, outcomes: Vec<TrialOutcome>) -> MonteCarloReport {
        let samples = outcomes.len();
        let mut successes = 0usize;
        let mut depletions = 0usize;
        let mut deadline_misses = 0usize;
        let mut makespan_sum = 0.0;
        for o in outcomes {
            match o {
                TrialOutcome::Success { makespan } => {
                    successes += 1;
                    makespan_sum += makespan;
                }
                TrialOutcome::Depleted => depletions += 1,
                TrialOutcome::Late => deadline_misses += 1,
            }
        }
        MonteCarloReport {
            samples,
            successes,
            depletions,
            deadline_misses,
            success_rate: successes as f64 / samples as f64,
            mean_makespan: if successes > 0 {
                makespan_sum / successes as f64
            } else {
                f64::NAN
            },
        }
    }

    /// Runs the campaign for `schedule` on `g` under `model`.
    ///
    /// Trials use independent per-trial RNG streams, so the report is
    /// identical with and without the `parallel` feature.
    #[cfg(not(feature = "parallel"))]
    pub fn run<M: BatteryModel + ?Sized>(
        &self,
        g: &TaskGraph,
        schedule: &Schedule,
        model: &M,
    ) -> MonteCarloReport {
        let outcomes = (0..self.samples.max(1))
            .map(|i| self.trial(g, schedule, model, i))
            .collect();
        self.tally(outcomes)
    }

    /// Runs the campaign for `schedule` on `g` under `model`, with trials
    /// spread across all cores.
    ///
    /// Trials use independent per-trial RNG streams, so the report is
    /// identical with and without the `parallel` feature.
    #[cfg(feature = "parallel")]
    pub fn run<M: BatteryModel + Sync + ?Sized>(
        &self,
        g: &TaskGraph,
        schedule: &Schedule,
        model: &M,
    ) -> MonteCarloReport {
        use rayon::prelude::*;
        let outcomes = (0..self.samples.max(1))
            .into_par_iter()
            .map(|i| self.trial(g, schedule, model, i))
            .collect();
        self.tally(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::model::peak_apparent_charge;
    use batsched_battery::rv::RvModel;
    use batsched_battery::units::MilliAmpMinutes;
    use batsched_core::SchedulerConfig;
    use batsched_taskgraph::paper::g2;

    fn setup() -> (batsched_taskgraph::TaskGraph, Schedule, RvModel) {
        let g = g2();
        let plan = batsched_core::schedule(&g, Minutes::new(75.0), &SchedulerConfig::paper())
            .unwrap()
            .schedule;
        (g, plan, RvModel::date05())
    }

    fn sampler(capacity: f64, deadline: f64, spread: f64, samples: usize) -> MissionSampler {
        MissionSampler {
            simulator: Simulator::paper(
                MilliAmpMinutes::new(capacity),
                Some(Minutes::new(deadline)),
            ),
            jitter: DurationJitter { spread },
            samples,
            seed: 0xCAFE,
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_deterministic_verdict() {
        let (g, plan, model) = setup();
        let report = sampler(50_000.0, 75.0, 0.0, 10).run(&g, &plan, &model);
        assert_eq!(report.successes, 10);
        assert_eq!(report.success_rate, 1.0);
        assert!((report.mean_makespan - plan.makespan(&g).value()).abs() < 1e-9);
    }

    #[test]
    fn thin_battery_margin_fails_under_jitter() {
        let (g, plan, model) = setup();
        let profile = plan.to_profile(&g);
        let (_, peak) = peak_apparent_charge(&model, &profile, 64);
        // 0.5% above nominal peak: fine deterministically, fragile at ±10%.
        let tight = sampler(peak.value() * 1.005, 1e9, 0.10, 200);
        let report = tight.run(&g, &plan, &model);
        assert!(
            report.depletions > 0,
            "jitter must break a razor-thin margin"
        );
        assert!(report.success_rate < 1.0);
        // A 30% margin shrugs the same jitter off.
        let roomy = sampler(peak.value() * 1.3, 1e9, 0.10, 200);
        let report = roomy.run(&g, &plan, &model);
        assert_eq!(report.success_rate, 1.0);
    }

    #[test]
    fn tight_deadline_misses_show_up_separately() {
        let (g, plan, model) = setup();
        // Plan ends ~74.7; ±10% jitter around it straddles a 74.7 deadline.
        let s = sampler(1e9, plan.makespan(&g).value(), 0.10, 200);
        let report = s.run(&g, &plan, &model);
        assert!(report.deadline_misses > 0);
        assert!(report.successes > 0);
        assert_eq!(report.depletions, 0);
        assert_eq!(
            report.successes + report.deadline_misses + report.depletions,
            report.samples
        );
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let (g, plan, model) = setup();
        let a = sampler(20_000.0, 75.0, 0.05, 100).run(&g, &plan, &model);
        let b = sampler(20_000.0, 75.0, 0.05, 100).run(&g, &plan, &model);
        assert_eq!(a, b);
    }
}
