//! Random search: the sanity floor every informed heuristic must beat.
//!
//! Draws random topological orders (uniform ready-task choice) paired with
//! random *feasible* assignments (greedy repair toward faster points when a
//! draw misses the deadline) and keeps the cheapest.

use crate::Scheduler;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::{EngineCost, Schedule, SchedulerError};
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random sampler over schedules.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// RNG seed.
    pub seed: u64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Battery model used for scoring.
    pub model: RvModel,
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            samples: 500,
            model: RvModel::date05(),
        }
    }
}

/// A uniformly random topological order (uniform over ready choices, not
/// over linear extensions — adequate for a baseline).
pub fn random_topological_order<R: Rng + ?Sized>(g: &TaskGraph, rng: &mut R) -> Vec<TaskId> {
    let n = g.task_count();
    let mut indeg: Vec<usize> = g.task_ids().map(|t| g.preds(t).len()).collect();
    let mut ready: Vec<TaskId> = g.task_ids().filter(|t| indeg[t.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let k = rng.gen_range(0..ready.len());
        let t = ready.swap_remove(k);
        order.push(t);
        for &s in g.succs(t) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    order
}

impl Scheduler for RandomSearch {
    fn name(&self) -> &'static str {
        "random-search"
    }

    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when the instance admits no
    /// feasible assignment; [`SchedulerError::InvalidDeadline`] otherwise.
    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        if !(deadline.is_finite() && deadline.value() > 0.0) {
            return Err(SchedulerError::InvalidDeadline { deadline });
        }
        let fastest = batsched_taskgraph::analysis::min_makespan(g);
        if fastest.value() > deadline.value() + 1e-9 {
            return Err(SchedulerError::DeadlineInfeasible { fastest, deadline });
        }
        let n = g.task_count();
        let m = g.point_count();
        let d = deadline.value();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut engine = EngineCost::new(g, &self.model);
        let mut best: Option<(Schedule, f64)> = None;

        for _ in 0..self.samples {
            let order = random_topological_order(g, &mut rng);
            let mut assignment: Vec<PointId> =
                (0..n).map(|_| PointId(rng.gen_range(0..m))).collect();
            // Greedy repair: promote random tasks toward faster columns
            // until the draw fits the deadline (always terminates because
            // the all-fastest assignment is feasible).
            let mut total: f64 = g
                .task_ids()
                .map(|t| g.duration(t, assignment[t.index()]).value())
                .sum();
            while total > d + 1e-9 {
                let t = TaskId(rng.gen_range(0..n));
                let col = assignment[t.index()].index();
                if col > 0 {
                    total += g.duration(t, PointId(col - 1)).value()
                        - g.duration(t, PointId(col)).value();
                    assignment[t.index()] = PointId(col - 1);
                }
            }
            let (cost, _) = engine.cost(&order, &assignment);
            if best.as_ref().is_none_or(|&(_, c)| cost.value() < c) {
                best = Some((Schedule::new(order, assignment), cost.value()));
            }
        }
        Ok(best.expect("samples >= 1").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_taskgraph::paper::g2;
    use batsched_taskgraph::topo::is_topological;

    #[test]
    fn random_orders_are_topological() {
        let g = g2();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let o = random_topological_order(&g, &mut rng);
            assert!(is_topological(&g, &o));
        }
    }

    #[test]
    fn results_are_valid_and_deterministic() {
        let g = g2();
        let d = Minutes::new(75.0);
        let a = RandomSearch::default().schedule(&g, d).unwrap();
        a.validate(&g, Some(d)).unwrap();
        let b = RandomSearch::default().schedule(&g, d).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_impossible_deadline() {
        let g = g2();
        assert!(matches!(
            RandomSearch::default().schedule(&g, Minutes::new(10.0)),
            Err(SchedulerError::DeadlineInfeasible { .. })
        ));
    }
}
