//! The service core: a bounded job queue feeding a pool of worker threads,
//! each holding reusable solver buffers, in front of the tiered result
//! cache (sharded in-memory LRU over an optional disk tier) and the stats
//! counters.
//!
//! Backpressure is explicit: [`Service::submit`] never blocks — when the
//! queue is full the caller gets a typed `overloaded` response immediately
//! instead of an unbounded pile-up. Shutdown is graceful: queued jobs are
//! drained, workers exit, and the disk tier is compacted so the next boot
//! loads a dense file.

use crate::cache::ShardedCache;
use crate::disk::DiskTier;
use crate::wire::{self, ErrorResponse, ScheduleRequest, ScheduleResponse, WIRE_VERSION};
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_core::{schedule_in, SolverWorkspace};
use serde::Serialize;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing knobs for a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads solving requests.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Aggregate result-cache entries across shards (0 disables caching).
    pub cache_capacity: usize,
    /// Independently locked cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Append-only JSONL file backing the disk cache tier; `None` keeps
    /// the cache memory-only (cold after every restart).
    pub disk_path: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            disk_path: None,
        }
    }
}

/// How a request was answered — transport metadata that deliberately never
/// enters the response body (a cache hit must be bit-identical to the
/// recomputed answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// A schedule was returned; `cached` says whether it came from the LRU.
    Ok {
        /// `true` when served from the result cache.
        cached: bool,
    },
    /// The request itself was at fault (parse error, invalid graph,
    /// infeasible deadline, …).
    ClientError,
    /// The queue was full; the request was never enqueued.
    Overloaded,
    /// The service failed internally (search invariant violation, worker
    /// gone); the request may be retried.
    Internal,
}

/// One answered request: the response body plus transport metadata.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Serialised response document (schedule or typed error).
    pub body: String,
    /// Transport classification (HTTP status / `X-Cache` derive from it).
    pub disposition: Disposition,
    /// Wall-clock service time in microseconds (enqueue to answer).
    pub micros: u64,
}

struct Job {
    body: String,
    reply: Sender<Reply>,
    submitted: Instant,
}

#[derive(Debug, Default)]
struct Counters {
    received: AtomicU64,
    ok_solved: AtomicU64,
    cache_hits: AtomicU64,
    disk_hits: AtomicU64,
    cache_misses: AtomicU64,
    client_errors: AtomicU64,
    internal_errors: AtomicU64,
    rejected: AtomicU64,
    solve_nanos: AtomicU64,
    hit_nanos: AtomicU64,
    disk_hit_nanos: AtomicU64,
}

struct Shared {
    cache: ShardedCache,
    disk: Option<Mutex<DiskTier>>,
    counters: Counters,
}

/// Point-in-time statistics, served by the `stats` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Wire version.
    pub v: u32,
    /// Worker threads.
    pub workers: usize,
    /// Queue depth limit.
    pub queue_capacity: usize,
    /// Aggregate memory-cache capacity across shards.
    pub cache_capacity: usize,
    /// Live memory-cache entries across shards.
    pub cache_len: usize,
    /// Number of memory-cache shards.
    pub cache_shards: usize,
    /// Live entries per shard, in shard order.
    pub shard_occupancy: Vec<usize>,
    /// `true` when a disk tier is configured.
    pub disk_enabled: bool,
    /// Distinct keys persisted on the disk tier (0 without one).
    pub disk_entries: usize,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests answered from a cold solve.
    pub solved: u64,
    /// Requests answered from the in-memory cache tier.
    pub cache_hits: u64,
    /// Requests answered from the disk tier (after a memory miss).
    pub disk_hits: u64,
    /// Requests that missed every cache tier.
    pub cache_misses: u64,
    /// Requests rejected as the caller's fault.
    pub client_errors: u64,
    /// Internal failures.
    pub internal_errors: u64,
    /// Requests refused because the queue was full.
    pub rejected: u64,
    /// Mean cold-solve latency (µs) including parse and serialisation.
    pub solve_mean_us: f64,
    /// Mean memory-tier cache-hit latency (µs).
    pub hit_mean_us: f64,
    /// Mean disk-tier cache-hit latency (µs).
    pub disk_hit_mean_us: f64,
}

/// A running scheduling service. Cheap to share behind an [`Arc`];
/// [`Service::shutdown`] takes `&self` so any frontend can trigger it.
pub struct Service {
    cfg: ServiceConfig,
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shared: Arc<Shared>,
}

impl Service {
    /// Spawns the worker pool and returns the running service.
    ///
    /// # Panics
    ///
    /// When a configured disk tier cannot be opened; use
    /// [`Service::try_start`] to handle that as an error.
    pub fn start(cfg: ServiceConfig) -> Self {
        Self::try_start(cfg).expect("opening the disk cache tier")
    }

    /// Spawns the worker pool, opening (and indexing) the disk cache tier
    /// when one is configured.
    ///
    /// # Errors
    ///
    /// File-system failures opening `cfg.disk_path`.
    pub fn try_start(cfg: ServiceConfig) -> io::Result<Self> {
        let workers = cfg.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let disk = match &cfg.disk_path {
            None => None,
            Some(path) => Some(Mutex::new(DiskTier::open(path)?)),
        };
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            disk,
            counters: Counters::default(),
        });
        let handles = (0..workers)
            .map(|k| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("batsched-worker-{k}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        Ok(Self {
            cfg,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            shared,
        })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> ServiceConfig {
        self.cfg.clone()
    }

    /// Enqueues a request document without blocking.
    ///
    /// # Errors
    ///
    /// When the queue is full (or the service is shutting down) the typed
    /// overload [`Reply`] is returned immediately instead of a receiver.
    pub fn submit(&self, body: String) -> Result<Receiver<Reply>, Box<Reply>> {
        let started = Instant::now();
        let overload = |started: Instant, counters: &Counters| {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            Box::new(Reply {
                body: ErrorResponse::overloaded(self.cfg.queue_capacity).to_json(),
                disposition: Disposition::Overloaded,
                micros: started.elapsed().as_micros() as u64,
            })
        };
        let guard = self.tx.lock().expect("service sender lock");
        let Some(tx) = guard.as_ref() else {
            return Err(overload(started, &self.shared.counters));
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        match tx.try_send(Job {
            body,
            reply: reply_tx,
            submitted: started,
        }) {
            Ok(()) => {
                self.shared
                    .counters
                    .received
                    .fetch_add(1, Ordering::Relaxed);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                Err(overload(started, &self.shared.counters))
            }
        }
    }

    /// Blocking convenience: submit and wait for the answer.
    pub fn call(&self, body: String) -> Reply {
        match self.submit(body) {
            Ok(rx) => rx.recv().unwrap_or_else(|_| Reply {
                body: ErrorResponse::new("internal", "worker terminated before answering")
                    .to_json(),
                disposition: Disposition::Internal,
                micros: 0,
            }),
            Err(reply) => *reply,
        }
    }

    /// A consistent-enough point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.counters;
        let shard_occupancy = self.shared.cache.occupancy();
        let disk_entries = self
            .shared
            .disk
            .as_ref()
            .map_or(0, |d| d.lock().expect("disk tier lock").len());
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mean_us = |nanos: u64, count: u64| {
            if count == 0 {
                0.0
            } else {
                nanos as f64 / count as f64 / 1_000.0
            }
        };
        let solved = load(&c.ok_solved);
        let hits = load(&c.cache_hits);
        let disk_hits = load(&c.disk_hits);
        StatsSnapshot {
            v: WIRE_VERSION,
            workers: self.cfg.workers.max(1),
            queue_capacity: self.cfg.queue_capacity.max(1),
            cache_capacity: self.shared.cache.capacity(),
            cache_len: shard_occupancy.iter().sum(),
            cache_shards: self.shared.cache.shard_count(),
            shard_occupancy,
            disk_enabled: self.shared.disk.is_some(),
            disk_entries,
            received: load(&c.received),
            solved,
            cache_hits: hits,
            disk_hits,
            cache_misses: load(&c.cache_misses),
            client_errors: load(&c.client_errors),
            internal_errors: load(&c.internal_errors),
            rejected: load(&c.rejected),
            solve_mean_us: mean_us(load(&c.solve_nanos), solved),
            hit_mean_us: mean_us(load(&c.hit_nanos), hits),
            disk_hit_mean_us: mean_us(load(&c.disk_hit_nanos), disk_hits),
        }
    }

    /// The stats snapshot as a JSON document.
    pub fn stats_json(&self) -> String {
        serde_json::to_string(&self.stats()).expect("stats serialise")
    }

    /// Graceful shutdown: stop accepting, drain the queue, join the
    /// workers, compact the disk tier. Idempotent; safe to call from any
    /// thread holding the service (frontends call it through their `Arc`).
    pub fn shutdown(&self) {
        // Dropping the sender closes the channel; workers exit after
        // draining whatever was already queued.
        *self.tx.lock().expect("service sender lock") = None;
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker handles lock"));
        let draining = !handles.is_empty();
        for h in handles {
            let _ = h.join();
        }
        // Compact once, on the call that actually drained the workers; a
        // failed compaction leaves the (correct, just sparser) append log.
        if draining {
            if let Some(disk) = &self.shared.disk {
                if let Err(e) = disk.lock().expect("disk tier lock").compact() {
                    eprintln!("batsched-service: disk-cache compaction failed: {e}");
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    // The reusable per-worker state the whole design exists for: solver
    // buffers survive across requests, so steady-state solving does not
    // allocate in the σ hot path.
    let mut ws = SolverWorkspace::new();
    loop {
        let job = {
            let guard = rx.lock().expect("job queue lock");
            guard.recv()
        };
        let Ok(job) = job else {
            return; // channel closed: graceful shutdown
        };
        let reply = answer(&job.body, shared, &mut ws, job.submitted);
        let _ = job.reply.send(reply); // caller may have given up; fine
    }
}

fn answer(body: &str, shared: &Shared, ws: &mut SolverWorkspace, submitted: Instant) -> Reply {
    let c = &shared.counters;
    let finish = |disposition: Disposition, body: String| Reply {
        micros: submitted.elapsed().as_micros() as u64,
        body,
        disposition,
    };
    // Fast path: an exact byte-duplicate of a previously answered request
    // is replayed without parsing anything — the alias index maps the raw
    // document hash to the canonical cache entry, verifying the stored
    // document byte-for-byte (a hash collision is a miss, not a lie).
    let raw_key = wire::fnv1a64(body.as_bytes());
    if let Some(cached) = shared.cache.get_by_alias(raw_key, body) {
        c.cache_hits.fetch_add(1, Ordering::Relaxed);
        c.hit_nanos
            .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return finish(Disposition::Ok { cached: true }, cached);
    }
    let req = match wire::parse_request(body) {
        Ok(req) => req,
        Err(e) => {
            c.client_errors.fetch_add(1, Ordering::Relaxed);
            return finish(
                Disposition::ClientError,
                ErrorResponse::from_wire(&e).to_json(),
            );
        }
    };
    let key = req.content_hash();
    if let Some(cached) = shared.cache.get(key) {
        // Different spelling, same canonical question: remember this
        // spelling so its next occurrence takes the fast path.
        shared.cache.alias(raw_key, body, key);
        c.cache_hits.fetch_add(1, Ordering::Relaxed);
        c.hit_nanos
            .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return finish(Disposition::Ok { cached: true }, cached);
    }
    // Disk tier: a previous process (or an entry the memory tier evicted)
    // may have the answer on disk; promote it so the next probe is a
    // memory hit.
    if let Some(disk) = &shared.disk {
        let persisted = disk.lock().expect("disk tier lock").get(key);
        if let Some(cached) = persisted {
            shared.cache.insert(key, cached.clone());
            shared.cache.alias(raw_key, body, key);
            c.disk_hits.fetch_add(1, Ordering::Relaxed);
            c.disk_hit_nanos
                .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return finish(Disposition::Ok { cached: true }, cached);
        }
    }
    c.cache_misses.fetch_add(1, Ordering::Relaxed);
    match solve(&req, ws) {
        Ok(resp) => {
            let rendered = serde_json::to_string(&resp).expect("responses serialise");
            shared.cache.insert(key, rendered.clone());
            shared.cache.alias(raw_key, body, key);
            if let Some(disk) = &shared.disk {
                // A failed append only costs warmth after the next restart;
                // the in-memory answer is already correct.
                if let Err(e) = disk.lock().expect("disk tier lock").put(key, &rendered) {
                    eprintln!("batsched-service: disk-cache append failed: {e}");
                }
            }
            c.ok_solved.fetch_add(1, Ordering::Relaxed);
            c.solve_nanos
                .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
            finish(Disposition::Ok { cached: false }, rendered)
        }
        Err(err) => {
            let disposition = if err.error == "internal" {
                c.internal_errors.fetch_add(1, Ordering::Relaxed);
                Disposition::Internal
            } else {
                c.client_errors.fetch_add(1, Ordering::Relaxed);
                Disposition::ClientError
            };
            finish(disposition, err.to_json())
        }
    }
}

/// Solves one validated request to a response — shared by the pool workers
/// and direct (in-process, synchronous) callers like tests.
///
/// # Errors
///
/// A typed [`ErrorResponse`] mirroring the scheduler's failure.
pub fn solve(
    req: &ScheduleRequest,
    ws: &mut SolverWorkspace,
) -> Result<ScheduleResponse, ErrorResponse> {
    let config = wire::scheduler_config(req);
    let sol = schedule_in(&req.graph, Minutes::new(req.deadline), &config, ws)
        .map_err(|e| ErrorResponse::from_scheduler(&e))?;
    let spec = req
        .model
        .clone()
        .unwrap_or_else(wire::ModelSpec::default_rv);
    let model = spec.build().map_err(|e| ErrorResponse::from_wire(&e))?;
    let profile = sol.schedule.to_profile(&req.graph);
    let end = profile.end();
    let model_cost = model.apparent_charge(&profile, end);
    let (survives, lifetime) = match req.capacity {
        None => (None, None),
        Some(cap) => match model.lifetime(&profile, MilliAmpMinutes::new(cap)) {
            None => (Some(true), None),
            Some(t) => (Some(false), Some(t.value())),
        },
    };
    Ok(ScheduleResponse {
        v: WIRE_VERSION,
        key: req.key(),
        model: spec.name().to_string(),
        order: sol.schedule.order().iter().map(|t| t.index()).collect(),
        assignment: sol
            .schedule
            .assignment()
            .iter()
            .map(|p| p.index())
            .collect(),
        sigma: sol.cost.value(),
        makespan: sol.makespan.value(),
        deadline: req.deadline,
        direct_charge: sol.schedule.direct_charge(&req.graph).value(),
        model_cost: model_cost.value(),
        survives,
        lifetime,
        iterations: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ScheduleRequest;
    use batsched_taskgraph::paper::g2;

    fn body(deadline: f64) -> String {
        serde_json::to_string(&ScheduleRequest::new(g2(), deadline)).expect("serialises")
    }

    #[test]
    fn solve_produces_a_valid_schedule() {
        let req = wire::parse_request(&body(75.0)).unwrap();
        let resp = solve(&req, &mut SolverWorkspace::new()).unwrap();
        assert_eq!(resp.v, WIRE_VERSION);
        assert_eq!(resp.key, req.key());
        assert!(resp.makespan <= 75.0 + 1e-9);
        assert!(resp.sigma > 0.0);
        assert_eq!(resp.order.len(), 9);
        assert_eq!(resp.assignment.len(), 9);
        assert_eq!(resp.survives, None);
    }

    #[test]
    fn lifetime_report_under_each_model() {
        for (model, expect_survive) in [
            (Some(crate::wire::ModelSpec::Ideal), true),
            (
                Some(crate::wire::ModelSpec::Kibam {
                    c: 0.5,
                    k: 0.05,
                    alpha: 60_000.0,
                }),
                true,
            ),
            (None, true),
        ] {
            let mut req = wire::parse_request(&body(75.0)).unwrap();
            req.model = model;
            req.capacity = Some(60_000.0);
            let resp = solve(&req, &mut SolverWorkspace::new()).unwrap();
            assert_eq!(resp.survives, Some(expect_survive), "{}", resp.model);
        }
        // A tiny battery dies mid-schedule.
        let mut req = wire::parse_request(&body(75.0)).unwrap();
        req.capacity = Some(2_000.0);
        let resp = solve(&req, &mut SolverWorkspace::new()).unwrap();
        assert_eq!(resp.survives, Some(false));
        let t = resp.lifetime.expect("death instant reported");
        assert!(t > 0.0 && t < resp.makespan);
    }

    #[test]
    fn service_round_trip_and_stats() {
        let svc = Service::start(ServiceConfig::default());
        let cold = svc.call(body(75.0));
        assert_eq!(cold.disposition, Disposition::Ok { cached: false });
        let warm = svc.call(body(75.0));
        assert_eq!(warm.disposition, Disposition::Ok { cached: true });
        assert_eq!(cold.body, warm.body, "hit must be bit-identical");
        let bad = svc.call("{ nope".into());
        assert_eq!(bad.disposition, Disposition::ClientError);
        let infeasible = svc.call(body(10.0));
        assert_eq!(infeasible.disposition, Disposition::ClientError);
        assert!(infeasible.body.contains("infeasible"));

        let stats = svc.stats();
        assert_eq!(stats.received, 4);
        assert_eq!(stats.solved, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2); // the infeasible request also missed
        assert_eq!(stats.client_errors, 2);
        assert_eq!(stats.cache_len, 1);
        let rendered = svc.stats_json();
        assert!(rendered.contains("\"cache_hits\":1"), "{rendered}");
        svc.shutdown();
        // Submissions after shutdown are refused, not hung.
        let refused = svc.call(body(75.0));
        assert_eq!(refused.disposition, Disposition::Overloaded);
    }

    #[test]
    fn disk_tier_serves_warm_after_restart() {
        let dir = std::env::temp_dir().join("batsched_service_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("warm_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = ServiceConfig {
            disk_path: Some(path.clone()),
            ..ServiceConfig::default()
        };

        let svc = Service::try_start(cfg.clone()).unwrap();
        let cold = svc.call(body(75.0));
        assert_eq!(cold.disposition, Disposition::Ok { cached: false });
        svc.shutdown(); // compacts the disk tier

        // A fresh process: memory cache empty, disk tier warm.
        let svc = Service::try_start(cfg).unwrap();
        let warm = svc.call(body(75.0));
        assert_eq!(warm.disposition, Disposition::Ok { cached: true });
        assert_eq!(warm.body, cold.body, "disk hit must be bit-identical");
        let stats = svc.stats();
        assert!(stats.disk_enabled);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.cache_hits, 0, "first probe came from disk");
        assert_eq!(stats.disk_entries, 1);
        // The promoted entry now answers from memory (alias fast path).
        let memory = svc.call(body(75.0));
        assert_eq!(memory.disposition, Disposition::Ok { cached: true });
        assert_eq!(svc.stats().cache_hits, 1);
        svc.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_runs_on_drop() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        svc.shutdown();
        svc.shutdown();
        drop(svc);
    }
}
