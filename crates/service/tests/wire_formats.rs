//! Cross-format wire contract tests: a request must mean the same thing —
//! and hash to the same cache key — whether it arrives as JSON or as the
//! binary wire format, the binary decoder must be unpanickable under
//! mutation, and a disk tier written by either format (or an old v1-only
//! daemon) must answer the other format bit-identically after a restart.

use batsched_service::disk::{DiskFormat, DiskTier};
use batsched_service::wire::{parse_request, ModelSpec, ScheduleRequest, ScheduleResponse};
use batsched_service::{
    decode_request, decode_response, encode_request, Disposition, FaultPlane, FsyncPolicy, Service,
    ServiceConfig, WireFormat,
};
use batsched_taskgraph::paper::{g2, g3};
use batsched_taskgraph::{DesignPoint, TaskGraph};
use proptest::prelude::*;

/// Deterministic xorshift so one drawn seed expands into a whole graph.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 29;
        self.0 = x;
        x
    }

    /// A finite float in `(0, hi]` with a non-trivial decimal expansion.
    fn pos(&mut self, hi: u64) -> f64 {
        (self.next() % (hi * 100) + 1) as f64 / 100.0
    }
}

/// Builds a structurally valid request from one seed: uniform point
/// counts, ascending durations with non-increasing currents (the builder's
/// invariants), edges only from lower to higher ids (guaranteed acyclic).
fn request_from_seed(
    seed: u64,
    n_tasks: usize,
    n_points: usize,
    model_kind: u8,
) -> ScheduleRequest {
    let mut rng = Rng(seed);
    let mut b = TaskGraph::builder();
    let mut ids = Vec::new();
    for t in 0..n_tasks {
        let mut duration = rng.pos(5);
        let mut current = 200.0 + rng.pos(400);
        let mut points = Vec::new();
        for _ in 0..n_points {
            points.push(DesignPoint::with_voltage(
                batsched_battery::units::MilliAmps::new(current),
                batsched_battery::units::Minutes::new(duration),
                batsched_battery::units::Volts::new(0.5 + rng.pos(2)),
            ));
            duration += rng.pos(5);
            current = (current - rng.pos(50)).max(1.0);
        }
        ids.push(b.task(format!("t{t}-\"esc\\{}\"", rng.next() % 10), points));
    }
    for i in 0..n_tasks {
        for j in (i + 1)..n_tasks {
            if rng.next().is_multiple_of(3) {
                b.edge(ids[i], ids[j]);
            }
        }
    }
    let graph = b.build().expect("generated graphs are valid");
    let mut req = ScheduleRequest::new(graph, 10.0 + rng.pos(500));
    req.model = match model_kind {
        0 => None,
        1 => Some(ModelSpec::Rv {
            beta: 0.05 + rng.pos(1) / 2.0,
            terms: 1 + (rng.next() % 20) as usize,
        }),
        2 => Some(ModelSpec::Kibam {
            c: 0.1 + rng.pos(1) / 2.0,
            k: rng.pos(3),
            alpha: 100.0 + rng.pos(10_000),
        }),
        3 => Some(ModelSpec::Peukert {
            exponent: 1.0 + rng.pos(1) / 4.0,
            reference: 1.0 + rng.pos(500),
        }),
        _ => Some(ModelSpec::Ideal),
    };
    req.capacity = (rng.next().is_multiple_of(2)).then(|| 1_000.0 + rng.pos(100_000));
    req.max_iterations = (rng.next().is_multiple_of(2)).then(|| 1 + (rng.next() % 200) as usize);
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole contract: for arbitrary requests, the binary encoding
    /// round-trips exactly, its fused single-pass hash equals the
    /// streaming JSON hash, and both admission paths (serde JSON parse,
    /// binary decode) agree on the cache key byte-for-byte.
    #[test]
    fn json_and_binary_admissions_agree_on_request_and_key(
        seed in 0u64..u64::MAX / 2,
        n_tasks in 1usize..6,
        n_points in 1usize..4,
        model_kind in 0u8..5,
    ) {
        let req = request_from_seed(seed, n_tasks, n_points, model_kind);

        // JSON path: serde round trip and the streaming content hash.
        let json = serde_json::to_string(&req).expect("serialises");
        let parsed = parse_request(&json).expect("own JSON parses");
        prop_assert_eq!(&parsed, &req);

        // Binary path: exact round trip, hash fused into the decode.
        let bin = encode_request(&req);
        let (decoded, fused_hash) = decode_request(&bin).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(fused_hash, req.content_hash(), "fused hash != streamed hash");
        prop_assert_eq!(decoded.key(), parsed.key(), "cache keys diverge across formats");

        // And the canonical rendering oracle agrees with the streamed hash.
        let oracle = req.canonical_json();
        let mut h = batsched_service::wire::Fnv::new();
        h.update(oracle.as_bytes());
        prop_assert_eq!(h.finish(), fused_hash, "canonical JSON oracle diverged");
    }

    /// Unpanickable decoder: flipping any single byte of a valid encoding
    /// (or truncating it anywhere) yields `Ok` or a typed error — never a
    /// panic, never an absurd allocation.
    #[test]
    fn mutated_binary_requests_never_panic(
        seed in 0u64..u64::MAX / 2,
        flip in 0usize..4096,
        xor in 1u8..255,
    ) {
        let req = request_from_seed(seed, 3, 2, (seed % 5) as u8);
        let mut bin = encode_request(&req);
        let idx = flip % bin.len();
        bin[idx] ^= xor;
        let _ = decode_request(&bin); // must return, not panic
        let cut = flip % (bin.len() + 1);
        let _ = decode_request(&bin[..cut]);
    }
}

/// A hostile RV `terms` count sizes a per-request allocation; both wire
/// formats must reject it as a typed `invalid_model` before allocating.
#[test]
fn absurd_model_terms_are_rejected_in_both_formats() {
    let mut req = ScheduleRequest::new(g2(), 75.0);
    req.model = Some(ModelSpec::Rv {
        beta: 0.273,
        terms: usize::MAX / 8,
    });
    let e = decode_request(&encode_request(&req)).expect_err("binary must reject");
    assert_eq!(e.code(), "invalid_model");
    let e = parse_request(&serde_json::to_string(&req).unwrap()).expect_err("JSON must reject");
    assert_eq!(e.code(), "invalid_model");
}

#[test]
fn binary_and_json_requests_share_one_cache_entry() {
    let svc = Service::start(ServiceConfig::default());
    let req = ScheduleRequest::new(g2(), 75.0);
    let json = serde_json::to_string(&req).expect("serialises");

    let cold = svc.call(json.clone());
    assert!(
        matches!(cold.disposition, Disposition::Ok { cached: false }),
        "{}",
        cold.body
    );

    // The SAME request in binary hits the canonical cache entry and
    // replays the identical body.
    let warm = svc.call_bytes(encode_request(&req), WireFormat::Binary);
    assert!(
        matches!(warm.disposition, Disposition::Ok { cached: true }),
        "{}",
        warm.body
    );
    assert_eq!(
        warm.body, cold.body,
        "cross-format hit must be bit-identical"
    );

    // Binary admissions are visible in stats and traces.
    let stats = svc.stats();
    assert_eq!(stats.received, 2);
    assert_eq!(stats.binary_requests, 1);
    assert_eq!(warm.trace.format, WireFormat::Binary);
    assert_eq!(cold.trace.format, WireFormat::Json);
    svc.shutdown();
}

#[test]
fn binary_decode_errors_are_typed_through_the_service() {
    let svc = Service::start(ServiceConfig::default());
    let reply = svc.call_bytes(b"BSCH\x01\x09garbage".to_vec(), WireFormat::Binary);
    assert!(matches!(reply.disposition, Disposition::ClientError));
    assert!(reply.body.contains("unsupported_version"), "{}", reply.body);
    let reply = svc.call_bytes(vec![0xde, 0xad], WireFormat::Binary);
    assert!(reply.body.contains("bad_binary"), "{}", reply.body);
    // A JSON-format submission that is not UTF-8 is bad_json, not a panic.
    let reply = svc.call_bytes(vec![0xff, 0xfe], WireFormat::Json);
    assert!(reply.body.contains("bad_json"), "{}", reply.body);
    assert_eq!(svc.stats().client_errors, 3);
    svc.shutdown();
}

fn disk_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("batsched_wire_formats");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = dir.join(format!("{name}_{}.records", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The acceptance-criteria warm restart: a disk tier populated through
/// JSON requests answers the binary spelling of the same requests
/// bit-identically after a restart — and vice versa — in both disk
/// formats.
#[test]
fn warm_restart_answers_the_other_wire_format_bit_identically() {
    for fmt in [DiskFormat::V1, DiskFormat::V2] {
        let path = disk_path(&format!("warm_restart_{fmt:?}"));
        let reqs = [
            ScheduleRequest::new(g2(), 75.0),
            ScheduleRequest::new(g3(), 230.0),
        ];
        let cfg = || ServiceConfig {
            disk_path: Some(path.clone()),
            disk_format: fmt,
            ..ServiceConfig::default()
        };

        // Populate via JSON, remember the cold bodies.
        let svc = Service::try_start(cfg()).expect("start");
        let cold: Vec<String> = reqs
            .iter()
            .map(|r| {
                let reply = svc.call(serde_json::to_string(r).expect("serialises"));
                assert!(
                    matches!(reply.disposition, Disposition::Ok { cached: false }),
                    "{fmt:?}: {}",
                    reply.body
                );
                reply.body
            })
            .collect();
        svc.shutdown(); // compacts the tier on the way out

        // Restart: binary requests must be disk-warm hits with identical
        // bodies (solved == 0 proves nothing was recomputed).
        let svc = Service::try_start(cfg()).expect("restart");
        for (r, expect) in reqs.iter().zip(&cold) {
            let reply = svc.call_bytes(encode_request(r), WireFormat::Binary);
            assert!(
                matches!(reply.disposition, Disposition::Ok { cached: true }),
                "{fmt:?}: {}",
                reply.body
            );
            assert_eq!(&reply.body, expect, "{fmt:?}: warm body diverged");
        }
        assert_eq!(svc.stats().solved, 0, "{fmt:?}: restart must not re-solve");
        svc.shutdown();

        // And the reverse direction: a binary-populated tier serving JSON.
        std::fs::remove_file(&path).expect("reset");
        let svc = Service::try_start(cfg()).expect("start binary-first");
        for (r, expect) in reqs.iter().zip(&cold) {
            let reply = svc.call_bytes(encode_request(r), WireFormat::Binary);
            assert!(matches!(
                reply.disposition,
                Disposition::Ok { cached: false }
            ));
            assert_eq!(&reply.body, expect, "{fmt:?}: binary cold body diverged");
        }
        svc.shutdown();
        let svc = Service::try_start(cfg()).expect("restart json");
        for (r, expect) in reqs.iter().zip(&cold) {
            let reply = svc.call(serde_json::to_string(r).expect("serialises"));
            assert!(matches!(
                reply.disposition,
                Disposition::Ok { cached: true }
            ));
            assert_eq!(&reply.body, expect, "{fmt:?}: warm JSON body diverged");
        }
        svc.shutdown();
        std::fs::remove_file(&path).expect("cleanup");
    }
}

/// A cache file written record-by-record by an old JSONL-only daemon loads
/// in a v2-default tier, serves every body bit-identically, and one
/// compaction upgrades the response records to binary without changing a
/// single replayed byte.
#[test]
fn legacy_v1_file_upgrades_through_compaction_bit_identically() {
    let path = disk_path("legacy_upgrade");
    let svc = Service::start(ServiceConfig::default());
    let bodies: Vec<(u64, String)> = [(g2(), 75.0), (g3(), 230.0)]
        .into_iter()
        .enumerate()
        .map(|(i, (g, d))| {
            let reply = svc.call(serde_json::to_string(&ScheduleRequest::new(g, d)).unwrap());
            assert!(matches!(reply.disposition, Disposition::Ok { .. }));
            (i as u64 + 1, reply.body)
        })
        .collect();
    svc.shutdown();

    // Write the file the way the previous release did: v1 lines only.
    {
        let mut tier = DiskTier::open_with_format(
            &path,
            FsyncPolicy::default(),
            FaultPlane::disarmed(),
            DiskFormat::V1,
        )
        .expect("open v1");
        for (k, body) in &bodies {
            tier.put(*k, body).expect("put");
        }
    }
    let v1_len = std::fs::metadata(&path).expect("meta").len();

    // A default (v2) tier loads it, replays bit-identically, and its
    // compaction shrinks the file by re-encoding responses as binary.
    let mut tier = DiskTier::open(&path).expect("open v2");
    assert_eq!(tier.len(), bodies.len());
    for (k, body) in &bodies {
        assert_eq!(tier.get(*k).expect("get").as_deref(), Some(body.as_str()));
    }
    tier.compact().expect("compact");
    assert!(
        std::fs::metadata(&path).expect("meta").len() < v1_len,
        "v2 compaction should shrink a v1 response file"
    );
    for (k, body) in &bodies {
        assert_eq!(
            tier.get(*k).expect("get").as_deref(),
            Some(body.as_str()),
            "post-upgrade replay diverged"
        );
    }
    drop(tier);
    let mut tier = DiskTier::open(&path).expect("reopen upgraded");
    for (k, body) in &bodies {
        assert_eq!(tier.get(*k).expect("get").as_deref(), Some(body.as_str()));
    }
    std::fs::remove_file(&path).expect("cleanup");
}

/// Responses survive the binary codec bit-identically — the property the
/// HTTP `Accept` transcoding and the v2 disk records both lean on.
#[test]
fn response_transcoding_is_lossless_for_real_solver_output() {
    let svc = Service::start(ServiceConfig::default());
    for (g, d) in [(g2(), 75.0), (g3(), 230.0)] {
        let reply = svc.call(serde_json::to_string(&ScheduleRequest::new(g, d)).unwrap());
        let resp: ScheduleResponse = serde_json::from_str(&reply.body).expect("parses");
        let bin = batsched_service::encode_response(&resp);
        let back = decode_response(&bin).expect("decodes");
        assert_eq!(serde_json::to_string(&back).unwrap(), reply.body);
        assert!(bin.len() < reply.body.len(), "binary response not smaller");
    }
    svc.shutdown();
}
