//! crate-hygiene fixture: a crate root missing its forbid attribute.

fn unfinished() {
    todo!();
}

fn noisy(x: u32) -> u32 {
    dbg!(x)
}

fn hard_exit() {
    std::process::exit(2);
}
