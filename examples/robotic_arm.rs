//! The paper's §5 case study: a robotic-arm controller (task graph G2) on a
//! voltage-scalable processor, scheduled at the three published deadlines
//! and then executed against a finite battery.
//!
//! Run with: `cargo run --example robotic_arm`

use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::sim::Simulator;
use batsched::taskgraph::paper::{g2, G2_TABLE4_DEADLINES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = g2();
    let model = RvModel::date05();
    println!(
        "robotic arm controller: {} tasks, {} design points each\n",
        graph.task_count(),
        graph.point_count()
    );

    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "deadline", "sigma mA·min", "makespan", "iterations"
    );
    let mut plans = Vec::new();
    for d in G2_TABLE4_DEADLINES {
        let sol = schedule(&graph, Minutes::new(d), &SchedulerConfig::paper())?;
        println!(
            "{:>10.0} {:>12.0} {:>12.1} {:>10}",
            d,
            sol.cost.value(),
            sol.makespan.value(),
            sol.iterations
        );
        plans.push((d, sol));
    }
    println!("\n(the looser the deadline, the leaner the design points, the less charge used)");

    // Execute the 75-minute plan on a battery that comfortably fits …
    let (_, sol75) = &plans[1];
    let sim = Simulator::paper(MilliAmpMinutes::new(20_000.0), Some(Minutes::new(75.0)));
    let report = sim.run(&graph, &sol75.schedule, &model);
    println!("\nmission on a 20,000 mA·min battery: {report}");

    // … and on one that does not.
    let starved = Simulator::paper(MilliAmpMinutes::new(9_000.0), Some(Minutes::new(75.0)));
    let report = starved.run(&graph, &sol75.schedule, &model);
    println!("mission on a  9,000 mA·min battery: {report}");
    if let Some(at) = report.depleted_at {
        let done = report
            .events
            .iter()
            .filter(|e| matches!(e, batsched::sim::SimEvent::TaskCompleted { .. }))
            .count();
        println!(
            "  -> {done}/{} tasks completed before depletion at {at:.1}",
            graph.task_count()
        );
    }
    Ok(())
}
