//! Strongly-typed scalar quantities used throughout the workspace.
//!
//! The paper works in an unusual but convenient unit system: time in
//! **minutes**, current in **milliamperes**, and charge in
//! **milliampere-minutes** (mA·min). Mixing these up is the classic bug in
//! battery-model code, so each quantity gets a newtype (C-NEWTYPE) with only
//! the physically meaningful arithmetic defined:
//!
//! ```
//! use batsched_battery::units::{Minutes, MilliAmps};
//!
//! let charge = MilliAmps::new(120.0) * Minutes::new(5.0);
//! assert_eq!(charge.value(), 600.0); // mA·min
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// A zero-valued quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in this quantity's unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw numeric value in this quantity's unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` when the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` when the value is `>= 0` (NaN is not).
            #[inline]
            pub fn is_non_negative(self) -> bool {
                self.0 >= 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }
    };
}

quantity!(
    /// A duration or instant measured in minutes.
    Minutes,
    "min"
);
quantity!(
    /// An electrical current in milliamperes (mA).
    MilliAmps,
    "mA"
);
quantity!(
    /// A charge in milliampere-minutes (mA·min), the paper's capacity unit.
    ///
    /// 1 mAh = 60 mA·min.
    MilliAmpMinutes,
    "mA·min"
);
quantity!(
    /// An electrical potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Energy-like quantity used for task weights. When the configured
    /// metric is charge-based this is mA·min; with the true-energy metric it
    /// is mA·V·min. Ordering, not the absolute unit, is what the algorithms
    /// consume.
    Energy,
    "energy"
);

impl Mul<Minutes> for MilliAmps {
    type Output = MilliAmpMinutes;
    /// Current sustained for a duration yields charge.
    #[inline]
    fn mul(self, rhs: Minutes) -> MilliAmpMinutes {
        MilliAmpMinutes::new(self.value() * rhs.value())
    }
}

impl Mul<MilliAmps> for Minutes {
    type Output = MilliAmpMinutes;
    #[inline]
    fn mul(self, rhs: MilliAmps) -> MilliAmpMinutes {
        rhs * self
    }
}

impl Div<Minutes> for MilliAmpMinutes {
    type Output = MilliAmps;
    /// Charge spread over a duration yields the mean current.
    #[inline]
    fn div(self, rhs: Minutes) -> MilliAmps {
        MilliAmps::new(self.value() / rhs.value())
    }
}

impl MilliAmpMinutes {
    /// Converts to milliampere-hours (the unit battery vendors quote).
    #[inline]
    pub fn to_milliamp_hours(self) -> f64 {
        self.value() / 60.0
    }

    /// Builds a charge from a milliampere-hour rating.
    #[inline]
    pub fn from_milliamp_hours(mah: f64) -> Self {
        Self::new(mah * 60.0)
    }
}

/// Total order helper for sorting slices of quantities that are known to be
/// finite. Panics on NaN, which the crate's validated types never produce.
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("quantity comparison saw NaN")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_is_current_times_time() {
        let q = MilliAmps::new(250.0) * Minutes::new(4.0);
        assert_eq!(q, MilliAmpMinutes::new(1000.0));
        let q2 = Minutes::new(4.0) * MilliAmps::new(250.0);
        assert_eq!(q, q2);
    }

    #[test]
    fn mean_current_is_charge_over_time() {
        let i = MilliAmpMinutes::new(1000.0) / Minutes::new(4.0);
        assert_eq!(i, MilliAmps::new(250.0));
    }

    #[test]
    fn ratio_is_dimensionless() {
        let r = Minutes::new(30.0) / Minutes::new(60.0);
        assert_eq!(r, 0.5);
    }

    #[test]
    fn mah_round_trip() {
        let q = MilliAmpMinutes::from_milliamp_hours(100.0);
        assert_eq!(q.value(), 6000.0);
        assert_eq!(q.to_milliamp_hours(), 100.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Minutes::new(2.5)), "2.5 min");
        assert_eq!(format!("{:.1}", MilliAmps::new(3.25)), "3.2 mA");
    }

    #[test]
    fn arithmetic_identities() {
        let t = Minutes::new(10.0);
        assert_eq!(t + Minutes::ZERO, t);
        assert_eq!(t - t, Minutes::ZERO);
        assert_eq!(-t, Minutes::new(-10.0));
        assert_eq!(t * 2.0, Minutes::new(20.0));
        assert_eq!(2.0 * t, Minutes::new(20.0));
        assert_eq!(t / 2.0, Minutes::new(5.0));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Minutes = [1.0, 2.0, 3.5].iter().map(|&v| Minutes::new(v)).sum();
        assert_eq!(total, Minutes::new(6.5));
    }

    #[test]
    fn min_max_abs() {
        let a = Minutes::new(-3.0);
        assert_eq!(a.abs(), Minutes::new(3.0));
        assert_eq!(a.max(Minutes::ZERO), Minutes::ZERO);
        assert_eq!(a.min(Minutes::ZERO), a);
    }

    #[test]
    fn serde_is_transparent() {
        let t = Minutes::new(12.5);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "12.5");
        let back: Minutes = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
