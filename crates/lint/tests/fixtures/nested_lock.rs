//! nested-lock fixture: the rule applies to every classification.
use std::sync::Mutex;

fn bad_nested(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g1 = a.lock().unwrap();
    let g2 = b.lock().unwrap();
    *g1 + *g2
}

fn ok_sequential(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = {
        let g = a.lock().unwrap();
        *g
    };
    let y = {
        let g = b.lock().unwrap();
        *g
    };
    x + y
}

fn ok_drop_release(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g1 = a.lock().unwrap();
    let x = *g1;
    drop(g1);
    let g2 = b.lock().unwrap();
    x + *g2
}

fn ok_temporary_dies_at_semi(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = *a.lock().unwrap();
    let y = *b.lock().unwrap();
    x + y
}

fn ok_stdio_is_not_a_mutex(counts: &Mutex<u32>) -> u32 {
    use std::io::Write;
    let n = *counts.lock().unwrap();
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{n}");
    n
}
