//! The service core: a bounded job queue feeding a pool of worker threads,
//! each holding reusable solver buffers, in front of the tiered result
//! cache (sharded in-memory LRU over an optional disk tier) and the stats
//! counters.
//!
//! Backpressure is explicit: [`Service::submit`] never blocks — when the
//! queue is full the caller gets a typed `overloaded` response immediately
//! instead of an unbounded pile-up. Shutdown is graceful: queued jobs are
//! drained, workers exit, and the disk tier is compacted so the next boot
//! loads a dense file.
//!
//! Failure is a first-class citizen:
//!
//! * a panicking solve is caught ([`std::panic::catch_unwind`]), answered
//!   with a typed `internal` error, and the worker is respawned by a
//!   supervisor thread so the pool never shrinks;
//! * [`ServiceConfig::request_timeout`] bounds queue-to-reply latency —
//!   an expired request answers a typed `timeout` error instead of
//!   holding its connection, and workers shed jobs that expired while
//!   queued without wasting a solve on them;
//! * disk-tier I/O errors feed a circuit breaker: after
//!   [`ServiceConfig::disk_breaker_threshold`] consecutive errors the
//!   tier is bypassed (`disk_degraded` in stats) and re-probed every
//!   [`ServiceConfig::disk_probe_interval`] until it heals. A disk
//!   failure never fails a request that can be answered from memory or a
//!   cold solve.

use crate::cache::ShardedCache;
use crate::disk::{DiskFormat, DiskTier, FsyncPolicy};
use crate::faults::FaultPlane;
use crate::logfmt::{Level, LogTarget, SpanLog};
use crate::metrics::{render_histogram, render_sample, render_type, Histogram};
use crate::trace::{RequestTrace, Span};
use crate::wire::{self, ErrorResponse, ScheduleRequest, ScheduleResponse, WIRE_VERSION};
use crate::wire_bin::{self, WireFormat};
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_core::{schedule_in, Prof, SolverWorkspace};
use serde::Serialize;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and robustness knobs for a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads solving requests (must be ≥ 1).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected (≥ 1).
    pub queue_capacity: usize,
    /// Aggregate result-cache entries across shards (≥ 1).
    pub cache_capacity: usize,
    /// Independently locked cache shards (rounded up to a power of two,
    /// must be ≥ 1).
    pub cache_shards: usize,
    /// Append-only record file backing the disk cache tier; `None` keeps
    /// the cache memory-only (cold after every restart).
    pub disk_path: Option<PathBuf>,
    /// Record format the disk tier writes (both formats always load).
    pub disk_format: DiskFormat,
    /// Queue-to-reply deadline; an expired request answers a typed
    /// `timeout` error. `None` (the default) never expires requests.
    pub request_timeout: Option<Duration>,
    /// When disk-tier appends are fsynced.
    pub fsync_policy: FsyncPolicy,
    /// Consecutive disk-tier I/O errors that trip the degraded-mode
    /// breaker (must be ≥ 1).
    pub disk_breaker_threshold: u32,
    /// How often a tripped breaker lets one probe operation through to
    /// test whether the disk healed (must be non-zero).
    pub disk_probe_interval: Duration,
    /// Structured span-log destination (one JSON line per completed
    /// request); `None` disables span logging entirely.
    pub log_json: Option<LogTarget>,
    /// Minimum severity written to the span log.
    pub log_level: Level,
    /// Maximum span lines written per second (must be ≥ 1); lines beyond
    /// the budget are counted and reported, not written.
    pub log_rate_limit: u32,
    /// How long an HTTP keep-alive connection may sit idle between
    /// requests before the frontend closes it (must be > 0).
    pub idle_timeout: Duration,
    /// Requests served on one HTTP connection before the frontend closes
    /// it (must be ≥ 1).
    pub max_requests_per_conn: usize,
    /// This process's slot in a fleet (stamped on spans as `fleet_worker`
    /// and exported as the `batsched_fleet_worker_id` gauge); `None` for a
    /// standalone daemon.
    pub fleet_worker: Option<u32>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            disk_path: None,
            disk_format: DiskFormat::default(),
            request_timeout: None,
            fsync_policy: FsyncPolicy::default(),
            disk_breaker_threshold: 3,
            disk_probe_interval: Duration::from_secs(2),
            log_json: None,
            log_level: Level::Info,
            log_rate_limit: 5_000,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1024,
            fleet_worker: None,
        }
    }
}

/// A [`ServiceConfig`] that cannot produce a working service, rejected by
/// [`Service::try_start`] before any thread or file is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: nothing would ever answer.
    ZeroWorkers,
    /// `queue_capacity == 0`: every submission would be rejected.
    ZeroQueueCapacity,
    /// `cache_capacity == 0`: the result cache cannot hold a single entry.
    ZeroCacheCapacity,
    /// `cache_shards == 0`: the cache cannot be sharded zero ways.
    ZeroCacheShards,
    /// `request_timeout == Some(0)`: every request would expire on arrival.
    ZeroRequestTimeout,
    /// `fsync_policy == EveryN(0)`: the fsync cadence is meaningless.
    ZeroFsyncInterval,
    /// `disk_breaker_threshold == 0`: the breaker would trip before the
    /// first error.
    ZeroBreakerThreshold,
    /// `disk_probe_interval == 0`: a tripped breaker would never throttle.
    ZeroProbeInterval,
    /// `log_rate_limit == 0`: every span line would be dropped.
    ZeroLogRateLimit,
    /// `idle_timeout == 0`: every keep-alive connection would be closed
    /// at the first request boundary.
    ZeroIdleTimeout,
    /// `max_requests_per_conn == 0`: no connection could serve a request.
    ZeroMaxRequestsPerConn,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ConfigError::ZeroWorkers => "workers must be >= 1",
            ConfigError::ZeroQueueCapacity => "queue_capacity must be >= 1",
            ConfigError::ZeroCacheCapacity => "cache_capacity must be >= 1",
            ConfigError::ZeroCacheShards => "cache_shards must be >= 1",
            ConfigError::ZeroRequestTimeout => "request_timeout must be > 0 when set",
            ConfigError::ZeroFsyncInterval => "fsync_policy every-N interval must be >= 1",
            ConfigError::ZeroBreakerThreshold => "disk_breaker_threshold must be >= 1",
            ConfigError::ZeroProbeInterval => "disk_probe_interval must be > 0",
            ConfigError::ZeroLogRateLimit => "log_rate_limit must be >= 1",
            ConfigError::ZeroIdleTimeout => "idle_timeout must be > 0",
            ConfigError::ZeroMaxRequestsPerConn => "max_requests_per_conn must be >= 1",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Why [`Service::try_start`] failed: a rejected configuration or a
/// file-system error opening the disk tier.
#[derive(Debug)]
pub enum StartError {
    /// The configuration was rejected before anything was started.
    Config(ConfigError),
    /// The disk cache tier could not be opened.
    Io(io::Error),
    /// The span log sink could not be opened.
    Log(io::Error),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Config(e) => write!(f, "invalid service config: {e}"),
            StartError::Io(e) => write!(f, "cannot open disk cache tier: {e}"),
            StartError::Log(e) => write!(f, "cannot open span log: {e}"),
        }
    }
}

impl std::error::Error for StartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StartError::Config(e) => Some(e),
            StartError::Io(e) => Some(e),
            StartError::Log(e) => Some(e),
        }
    }
}

impl From<ConfigError> for StartError {
    fn from(e: ConfigError) -> Self {
        StartError::Config(e)
    }
}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

/// How a request was answered — transport metadata that deliberately never
/// enters the response body (a cache hit must be bit-identical to the
/// recomputed answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// A schedule was returned; `cached` says whether it came from the LRU.
    Ok {
        /// `true` when served from the result cache.
        cached: bool,
    },
    /// The request itself was at fault (parse error, invalid graph,
    /// infeasible deadline, …).
    ClientError,
    /// The queue was full; the request was never enqueued.
    Overloaded,
    /// The request exceeded [`ServiceConfig::request_timeout`] before an
    /// answer was produced; it may be retried.
    Timeout,
    /// The service failed internally (search invariant violation, worker
    /// panic); the request may be retried.
    Internal,
}

/// One answered request: the response body plus transport metadata.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Serialised response document (schedule or typed error).
    pub body: String,
    /// Transport classification (HTTP status / `X-Cache` derive from it).
    pub disposition: Disposition,
    /// Wall-clock service time in microseconds (enqueue to answer).
    pub micros: u64,
    /// Stage timings and solver attribution for this request.
    pub trace: RequestTrace,
}

struct Job {
    /// Raw request document bytes — UTF-8 JSON or the binary wire format,
    /// as declared by `format`. Validation happens on the worker.
    body: Vec<u8>,
    format: WireFormat,
    reply: Sender<Reply>,
    submitted: Instant,
}

#[derive(Debug, Default)]
struct Counters {
    received: AtomicU64,
    binary_requests: AtomicU64,
    ok_solved: AtomicU64,
    cache_hits: AtomicU64,
    disk_hits: AtomicU64,
    cache_misses: AtomicU64,
    client_errors: AtomicU64,
    internal_errors: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    disk_errors: AtomicU64,
    disk_breaker_trips: AtomicU64,
    disk_rearms: AtomicU64,
    solve_nanos: AtomicU64,
    hit_nanos: AtomicU64,
    disk_hit_nanos: AtomicU64,
}

/// Aggregated solver phase counters across all requests (the sum of every
/// per-request [`Prof`] delta), readable without stopping the world.
#[derive(Debug, Default)]
struct ProfTotals {
    windows: AtomicU64,
    carry_hits: AtomicU64,
    carry_misses: AtomicU64,
    rows_full: AtomicU64,
    rows_carried: AtomicU64,
    journal_promotions: AtomicU64,
    journal_rollbacks: AtomicU64,
    sigma_evals: AtomicU64,
    sigma_reused: AtomicU64,
    sigma_fresh: AtomicU64,
}

impl ProfTotals {
    fn add(&self, p: &Prof) {
        self.windows.fetch_add(p.windows, Ordering::Relaxed);
        self.carry_hits.fetch_add(p.carry_hits, Ordering::Relaxed);
        self.carry_misses
            .fetch_add(p.carry_misses, Ordering::Relaxed);
        self.rows_full.fetch_add(p.rows_full, Ordering::Relaxed);
        self.rows_carried
            .fetch_add(p.rows_carried, Ordering::Relaxed);
        self.journal_promotions
            .fetch_add(p.journal_promotions, Ordering::Relaxed);
        self.journal_rollbacks
            .fetch_add(p.journal_rollbacks, Ordering::Relaxed);
        self.sigma_evals.fetch_add(p.sigma_evals, Ordering::Relaxed);
        self.sigma_reused
            .fetch_add(p.sigma_reused, Ordering::Relaxed);
        self.sigma_fresh.fetch_add(p.sigma_fresh, Ordering::Relaxed);
    }

    fn load(&self) -> Prof {
        let l = |a: &AtomicU64| a.load(Ordering::Relaxed);
        Prof {
            windows: l(&self.windows),
            carry_hits: l(&self.carry_hits),
            carry_misses: l(&self.carry_misses),
            rows_full: l(&self.rows_full),
            rows_carried: l(&self.rows_carried),
            journal_promotions: l(&self.journal_promotions),
            journal_rollbacks: l(&self.journal_rollbacks),
            sigma_evals: l(&self.sigma_evals),
            sigma_reused: l(&self.sigma_reused),
            sigma_fresh: l(&self.sigma_fresh),
        }
    }
}

/// The service's latency histograms plus solver phase totals.
///
/// Stage histograms are observed once per worker-handled request, for
/// every stage — a stage that did not run observes 0 µs — so all stage
/// `_count` series agree with each other and with the number of requests
/// the workers handled. `total` is observed once per [`Service::call`];
/// `read`/`write` once per HTTP-served request; `solve_cold` only on cold
/// solves (it feeds the solve percentiles in stats).
#[derive(Debug, Default)]
struct Metrics {
    total: Histogram,
    read: Histogram,
    write: Histogram,
    queue: Histogram,
    parse: Histogram,
    hash: Histogram,
    cache: Histogram,
    disk: Histogram,
    solve: Histogram,
    serialize: Histogram,
    solve_cold: Histogram,
    prof: ProfTotals,
}

impl Metrics {
    /// One uniform observation of every worker-side stage for a handled
    /// request.
    fn observe_stages(&self, t: &RequestTrace) {
        self.queue.observe(t.queue_us);
        self.parse.observe(t.parse_us);
        self.hash.observe(t.hash_us);
        self.cache.observe(t.cache_us);
        self.disk.observe(t.disk_us);
        self.solve.observe(t.solve_us);
        self.serialize.observe(t.serialize_us);
    }
}

/// Consecutive-error circuit breaker guarding the disk tier. Closed: every
/// operation is allowed. After `threshold` consecutive errors it opens:
/// operations are skipped (the service answers from memory and cold
/// solves) except one probe per `probe_interval`; a successful probe
/// closes it again.
struct Breaker {
    threshold: u32,
    probe_interval: Duration,
    state: Mutex<BreakerState>,
    /// Mirrors "open" for lock-free stats reads.
    degraded: AtomicBool,
}

/// Locks a service mutex, recovering from poisoning rather than
/// propagating a dead holder's panic to every later caller. Each
/// protected value stays usable after a panic: breaker state and the
/// sender/supervisor options are plain data, the job-queue receiver is
/// just a channel endpoint, and the disk tier validates every record on
/// read, so a torn append from a mid-`put` panic is skipped at reindex
/// time instead of corrupting lookups.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Default)]
struct BreakerState {
    consecutive: u32,
    open_since: Option<Instant>,
}

impl Breaker {
    fn new(threshold: u32, probe_interval: Duration) -> Self {
        Self {
            threshold,
            probe_interval,
            state: Mutex::new(BreakerState::default()),
            degraded: AtomicBool::new(false),
        }
    }

    /// Whether the next disk operation may run. While open, returns `true`
    /// once per probe interval (and restarts the interval, so concurrent
    /// callers get exactly one probe).
    fn allow(&self) -> bool {
        let mut s = lock_recover(&self.state);
        match s.open_since {
            None => true,
            Some(opened) if opened.elapsed() >= self.probe_interval => {
                s.open_since = Some(Instant::now());
                true
            }
            Some(_) => false,
        }
    }

    /// Records a successful disk operation: resets the error run and, if
    /// the breaker was open, re-arms the tier.
    fn record_ok(&self, c: &Counters) {
        let mut s = lock_recover(&self.state);
        s.consecutive = 0;
        if s.open_since.take().is_some() {
            self.degraded.store(false, Ordering::Relaxed);
            c.disk_rearms.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a failed disk operation; trips the breaker on the
    /// `threshold`-th consecutive error.
    fn record_err(&self, c: &Counters) {
        c.disk_errors.fetch_add(1, Ordering::Relaxed);
        let mut s = lock_recover(&self.state);
        s.consecutive = s.consecutive.saturating_add(1);
        if s.open_since.is_none() && s.consecutive >= self.threshold {
            s.open_since = Some(Instant::now());
            self.degraded.store(true, Ordering::Relaxed);
            c.disk_breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn is_open(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

struct Shared {
    cache: ShardedCache,
    disk: Option<Mutex<DiskTier>>,
    counters: Counters,
    metrics: Metrics,
    logger: Option<SpanLog>,
    breaker: Breaker,
    faults: FaultPlane,
    request_timeout: Option<Duration>,
    shutting_down: AtomicBool,
    /// Monotonic sequence feeding generated trace ids.
    trace_seq: AtomicU64,
    /// Jobs accepted into the queue and not yet picked up by a worker.
    in_queue: AtomicU64,
    /// Worker threads currently alive (target is `ServiceConfig::workers`).
    workers_live: AtomicU64,
}

/// Point-in-time statistics, served by the `stats` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Wire version.
    pub v: u32,
    /// Worker threads.
    pub workers: usize,
    /// Queue depth limit.
    pub queue_capacity: usize,
    /// Aggregate memory-cache capacity across shards.
    pub cache_capacity: usize,
    /// Live memory-cache entries across shards.
    pub cache_len: usize,
    /// Number of memory-cache shards.
    pub cache_shards: usize,
    /// Live entries per shard, in shard order.
    pub shard_occupancy: Vec<usize>,
    /// `true` when a disk tier is configured.
    pub disk_enabled: bool,
    /// `true` while the disk-tier breaker is open (tier bypassed).
    pub disk_degraded: bool,
    /// Distinct keys persisted on the disk tier (0 without one).
    pub disk_entries: usize,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that arrived in the binary wire format (the remainder of
    /// `received` arrived as JSON).
    pub binary_requests: u64,
    /// Requests answered from a cold solve.
    pub solved: u64,
    /// Requests answered from the in-memory cache tier.
    pub cache_hits: u64,
    /// Requests answered from the disk tier (after a memory miss).
    pub disk_hits: u64,
    /// Requests that missed every cache tier.
    pub cache_misses: u64,
    /// Requests rejected as the caller's fault.
    pub client_errors: u64,
    /// Internal failures (including caught worker panics).
    pub internal_errors: u64,
    /// Requests refused because the queue was full.
    pub rejected: u64,
    /// Requests that exceeded the configured deadline.
    pub timeouts: u64,
    /// Solver panics caught and answered as typed errors.
    pub worker_panics: u64,
    /// Workers respawned after a panic (pool back at full strength).
    pub worker_respawns: u64,
    /// Disk-tier I/O errors observed (reads and writes).
    pub disk_errors: u64,
    /// Times the disk breaker tripped into degraded mode.
    pub disk_breaker_trips: u64,
    /// Times a probe re-armed the disk tier.
    pub disk_rearms: u64,
    /// Mean cold-solve latency (µs) including parse and serialisation.
    pub solve_mean_us: f64,
    /// Mean memory-tier cache-hit latency (µs).
    pub hit_mean_us: f64,
    /// Mean disk-tier cache-hit latency (µs).
    pub disk_hit_mean_us: f64,
    /// Jobs queued and not yet picked up by a worker.
    pub queue_depth: u64,
    /// Worker threads currently alive.
    pub workers_live: u64,
    /// Fault-injection rules fired since startup (0 when disarmed).
    pub faults_injected: u64,
    /// Span log lines suppressed by the rate limiter.
    pub spans_dropped: u64,
    /// End-to-end latency p50 (µs), from the request-duration histogram.
    pub e2e_p50_us: f64,
    /// End-to-end latency p95 (µs).
    pub e2e_p95_us: f64,
    /// End-to-end latency p99 (µs).
    pub e2e_p99_us: f64,
    /// Cold-solve latency p50 (µs), from the cold-solve histogram.
    pub solve_p50_us: f64,
    /// Cold-solve latency p95 (µs).
    pub solve_p95_us: f64,
    /// Cold-solve latency p99 (µs).
    pub solve_p99_us: f64,
}

/// A running scheduling service. Cheap to share behind an [`Arc`];
/// [`Service::shutdown`] takes `&self` so any frontend can trigger it.
pub struct Service {
    cfg: ServiceConfig,
    tx: Mutex<Option<SyncSender<Job>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    shared: Arc<Shared>,
}

/// One lifecycle event per worker thread, delivered to the supervisor.
enum WorkerEvent {
    /// The worker drained the queue and exited (graceful shutdown).
    Clean,
    /// The worker died after catching a solver panic (or panicked
    /// unexpectedly); its workspace is suspect and it must be replaced.
    Panicked,
}

/// Guarantees the supervisor hears about every worker exit, even one the
/// worker's own code never anticipated: the event is sent from `Drop`, so
/// an unwinding thread still reports in.
struct ExitGuard {
    events: Sender<WorkerEvent>,
    clean: bool,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        let event = if self.clean {
            WorkerEvent::Clean
        } else {
            WorkerEvent::Panicked
        };
        let _ = self.events.send(event);
    }
}

fn validate(cfg: &ServiceConfig) -> Result<(), ConfigError> {
    if cfg.workers == 0 {
        return Err(ConfigError::ZeroWorkers);
    }
    if cfg.queue_capacity == 0 {
        return Err(ConfigError::ZeroQueueCapacity);
    }
    if cfg.cache_capacity == 0 {
        return Err(ConfigError::ZeroCacheCapacity);
    }
    if cfg.cache_shards == 0 {
        return Err(ConfigError::ZeroCacheShards);
    }
    if cfg.request_timeout == Some(Duration::ZERO) {
        return Err(ConfigError::ZeroRequestTimeout);
    }
    if cfg.fsync_policy == FsyncPolicy::EveryN(0) {
        return Err(ConfigError::ZeroFsyncInterval);
    }
    if cfg.disk_breaker_threshold == 0 {
        return Err(ConfigError::ZeroBreakerThreshold);
    }
    if cfg.disk_probe_interval == Duration::ZERO {
        return Err(ConfigError::ZeroProbeInterval);
    }
    if cfg.log_rate_limit == 0 {
        return Err(ConfigError::ZeroLogRateLimit);
    }
    if cfg.idle_timeout == Duration::ZERO {
        return Err(ConfigError::ZeroIdleTimeout);
    }
    if cfg.max_requests_per_conn == 0 {
        return Err(ConfigError::ZeroMaxRequestsPerConn);
    }
    Ok(())
}

fn spawn_worker(
    id: usize,
    rx: &Arc<Mutex<Receiver<Job>>>,
    shared: &Arc<Shared>,
    events: &Sender<WorkerEvent>,
) -> JoinHandle<()> {
    let rx = Arc::clone(rx);
    let shared = Arc::clone(shared);
    let events = events.clone();
    std::thread::Builder::new()
        .name(format!("batsched-worker-{id}"))
        .spawn(move || {
            let mut guard = ExitGuard {
                events,
                clean: false,
            };
            guard.clean = worker_loop(id, &rx, &shared);
        })
        // lint:allow(panic-path): thread spawn fails only on OS thread
        // exhaustion, at which point the pool cannot run at all; the
        // supervisor treats a vanished worker as a panic and retires it.
        .expect("spawning a worker thread")
}

impl Service {
    /// Spawns the worker pool and returns the running service.
    ///
    /// # Panics
    ///
    /// On an invalid configuration or an unopenable disk tier; use
    /// [`Service::try_start`] to handle those as errors.
    pub fn start(cfg: ServiceConfig) -> Self {
        // lint:allow(panic-path): documented panicking constructor; the
        // fallible API is `try_start`, and this forwards to it.
        Self::try_start(cfg).expect("starting the service")
    }

    /// Validates the configuration, then spawns the worker pool (plus its
    /// supervisor), opening and indexing the disk cache tier when one is
    /// configured.
    ///
    /// # Errors
    ///
    /// [`StartError::Config`] for a configuration that cannot work;
    /// [`StartError::Io`] for file-system failures opening
    /// `cfg.disk_path`.
    pub fn try_start(cfg: ServiceConfig) -> Result<Self, StartError> {
        Self::try_start_with_faults(cfg, FaultPlane::disarmed())
    }

    /// [`Service::try_start`] with an armed fault-injection plane; the
    /// plane is shared with the disk tier and the worker pool. Production
    /// paths pass [`FaultPlane::disarmed`].
    ///
    /// # Errors
    ///
    /// As [`Service::try_start`].
    pub fn try_start_with_faults(
        cfg: ServiceConfig,
        faults: FaultPlane,
    ) -> Result<Self, StartError> {
        validate(&cfg)?;
        let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let disk = match &cfg.disk_path {
            None => None,
            Some(path) => Some(Mutex::new(DiskTier::open_with_format(
                path,
                cfg.fsync_policy,
                faults.clone(),
                cfg.disk_format,
            )?)),
        };
        let logger = match &cfg.log_json {
            None => None,
            Some(target) => Some(
                SpanLog::open(target, cfg.log_level, cfg.log_rate_limit)
                    .map_err(StartError::Log)?,
            ),
        };
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            disk,
            counters: Counters::default(),
            metrics: Metrics::default(),
            logger,
            breaker: Breaker::new(cfg.disk_breaker_threshold, cfg.disk_probe_interval),
            faults,
            request_timeout: cfg.request_timeout,
            shutting_down: AtomicBool::new(false),
            trace_seq: AtomicU64::new(0),
            in_queue: AtomicU64::new(0),
            workers_live: AtomicU64::new(cfg.workers as u64),
        });
        let (ev_tx, ev_rx) = std::sync::mpsc::channel::<WorkerEvent>();
        let workers = cfg.workers;
        let mut handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|k| spawn_worker(k, &rx, &shared, &ev_tx))
            .collect();
        // The supervisor owns the worker handles and the spawn loop: a
        // panicked worker is replaced (fresh thread, fresh workspace)
        // unless the service is shutting down. It keeps its own event
        // sender clone, so the loop terminates on the live count, not on
        // channel closure.
        let supervisor = {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("batsched-supervisor".into())
                .spawn(move || {
                    let mut live = workers;
                    let mut next_id = workers;
                    while live > 0 {
                        match ev_rx.recv() {
                            Ok(WorkerEvent::Clean) => {
                                live -= 1;
                                shared.workers_live.fetch_sub(1, Ordering::Relaxed);
                            }
                            Ok(WorkerEvent::Panicked) => {
                                if shared.shutting_down.load(Ordering::SeqCst) {
                                    live -= 1;
                                    shared.workers_live.fetch_sub(1, Ordering::Relaxed);
                                } else {
                                    shared
                                        .counters
                                        .worker_respawns
                                        .fetch_add(1, Ordering::Relaxed);
                                    handles.push(spawn_worker(next_id, &rx, &shared, &ev_tx));
                                    next_id += 1;
                                }
                            }
                            Err(_) => break, // unreachable: we hold ev_tx
                        }
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                })
                // lint:allow(panic-path): one spawn at service start, before
                // any request is accepted; failure means the service cannot
                // exist and surfaces to the caller as the documented panic.
                .expect("spawning the supervisor thread")
        };
        Ok(Self {
            cfg,
            tx: Mutex::new(Some(tx)),
            supervisor: Mutex::new(Some(supervisor)),
            shared,
        })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> ServiceConfig {
        self.cfg.clone()
    }

    /// The HTTP frontend's per-connection limits: idle timeout between
    /// requests and requests served before the connection is closed.
    pub(crate) fn http_limits(&self) -> (Duration, usize) {
        (self.cfg.idle_timeout, self.cfg.max_requests_per_conn)
    }

    /// This process's fleet slot, when running as a fleet worker.
    pub fn fleet_worker(&self) -> Option<u32> {
        self.cfg.fleet_worker
    }

    /// The fault-injection plane the service was started with (disarmed in
    /// production); frontends probe it for connection-level fault sites.
    pub(crate) fn faults(&self) -> &FaultPlane {
        &self.shared.faults
    }

    /// Enqueues a JSON request document without blocking.
    ///
    /// # Errors
    ///
    /// When the queue is full (or the service is shutting down) the typed
    /// overload [`Reply`] is returned immediately instead of a receiver.
    pub fn submit(&self, body: String) -> Result<Receiver<Reply>, Box<Reply>> {
        self.submit_bytes(body.into_bytes(), WireFormat::Json)
    }

    /// Enqueues a raw request document in the declared wire format without
    /// blocking. The response body is always canonical JSON; frontends
    /// that negotiated a binary response transcode it at the edge.
    ///
    /// # Errors
    ///
    /// As [`Service::submit`].
    pub fn submit_bytes(
        &self,
        body: Vec<u8>,
        format: WireFormat,
    ) -> Result<Receiver<Reply>, Box<Reply>> {
        let started = Instant::now();
        let overload = |started: Instant, counters: &Counters| {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            Box::new(Reply {
                body: ErrorResponse::overloaded(self.cfg.queue_capacity).to_json(),
                disposition: Disposition::Overloaded,
                micros: started.elapsed().as_micros() as u64,
                trace: RequestTrace::default(),
            })
        };
        let guard = lock_recover(&self.tx);
        let Some(tx) = guard.as_ref() else {
            return Err(overload(started, &self.shared.counters));
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        match tx.try_send(Job {
            body,
            format,
            reply: reply_tx,
            submitted: started,
        }) {
            Ok(()) => {
                self.shared
                    .counters
                    .received
                    .fetch_add(1, Ordering::Relaxed);
                if format == WireFormat::Binary {
                    self.shared
                        .counters
                        .binary_requests
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.shared.in_queue.fetch_add(1, Ordering::Relaxed);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                Err(overload(started, &self.shared.counters))
            }
        }
    }

    /// Blocking convenience: submit and wait for the answer. With a
    /// configured [`ServiceConfig::request_timeout`] the wait is bounded —
    /// an expired request answers a typed `timeout` error (the worker's
    /// late reply, if any, is discarded). A worker that dies without
    /// answering yields a typed `internal` error, never a hang.
    pub fn call(&self, body: String) -> Reply {
        self.call_bytes(body.into_bytes(), WireFormat::Json)
    }

    /// [`Service::call`] for a raw document in the declared wire format.
    /// The reply body is always canonical JSON regardless of `format`.
    pub fn call_bytes(&self, body: Vec<u8>, format: WireFormat) -> Reply {
        let started = Instant::now();
        let reply = self.call_inner(body, format, started);
        // The end-to-end histogram is observed here — once per answered
        // request, whatever the outcome — so its `_count` is exactly the
        // number of requests served through this entry point.
        self.shared
            .metrics
            .total
            .observe(started.elapsed().as_micros() as u64);
        reply
    }

    fn call_inner(&self, body: Vec<u8>, format: WireFormat, started: Instant) -> Reply {
        let rx = match self.submit_bytes(body, format) {
            Ok(rx) => rx,
            Err(reply) => return *reply,
        };
        let received = match self.cfg.request_timeout {
            None => rx.recv().ok(),
            Some(budget) => {
                let remaining = budget.saturating_sub(started.elapsed());
                match rx.recv_timeout(remaining) {
                    Ok(reply) => Some(reply),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        self.shared
                            .counters
                            .timeouts
                            .fetch_add(1, Ordering::Relaxed);
                        return Reply {
                            body: ErrorResponse::timeout(budget).to_json(),
                            disposition: Disposition::Timeout,
                            micros: started.elapsed().as_micros() as u64,
                            trace: RequestTrace::default(),
                        };
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => None,
                }
            }
        };
        received.unwrap_or_else(|| Reply {
            body: ErrorResponse::new("internal", "worker terminated before answering").to_json(),
            disposition: Disposition::Internal,
            micros: started.elapsed().as_micros() as u64,
            trace: RequestTrace::default(),
        })
    }

    /// Allocates the next trace-id sequence number (process-monotonic).
    pub(crate) fn next_trace_seq(&self) -> u64 {
        self.shared.trace_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Writes one span line to the configured log sink (no-op when span
    /// logging is disabled).
    pub(crate) fn log_span(&self, span: &Span) {
        if let Some(logger) = &self.shared.logger {
            logger.log(span.severity(), &span.to_json());
        }
    }

    /// Records the HTTP frontend's connection I/O timings for one request.
    pub(crate) fn observe_http(&self, read_us: u64, write_us: u64) {
        self.shared.metrics.read.observe(read_us);
        self.shared.metrics.write.observe(write_us);
    }

    /// Readiness for traffic: `Ok(())` when the service can serve at full
    /// capability, otherwise the reasons it cannot (shutdown begun, disk
    /// breaker open, worker pool below target).
    pub fn readiness(&self) -> Result<(), Vec<&'static str>> {
        let mut reasons = Vec::new();
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            reasons.push("shutting_down");
        }
        if self.shared.breaker.is_open() {
            reasons.push("disk_degraded");
        }
        if self.shared.workers_live.load(Ordering::Relaxed) < self.cfg.workers as u64 {
            reasons.push("workers_below_target");
        }
        if reasons.is_empty() {
            Ok(())
        } else {
            Err(reasons)
        }
    }

    /// The full metrics surface in Prometheus text exposition format:
    /// request counters, queue/worker/breaker gauges, solver phase totals
    /// and the per-stage latency histograms.
    pub fn metrics_text(&self) -> String {
        let c = &self.shared.counters;
        let m = &self.shared.metrics;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(8 * 1024);

        let counters: [(&str, u64); 16] = [
            ("batsched_received_total", load(&c.received)),
            ("batsched_solved_total", load(&c.ok_solved)),
            ("batsched_cache_hits_total", load(&c.cache_hits)),
            ("batsched_disk_hits_total", load(&c.disk_hits)),
            ("batsched_cache_misses_total", load(&c.cache_misses)),
            ("batsched_client_errors_total", load(&c.client_errors)),
            ("batsched_internal_errors_total", load(&c.internal_errors)),
            ("batsched_rejected_total", load(&c.rejected)),
            ("batsched_timeouts_total", load(&c.timeouts)),
            ("batsched_worker_panics_total", load(&c.worker_panics)),
            ("batsched_worker_respawns_total", load(&c.worker_respawns)),
            ("batsched_disk_errors_total", load(&c.disk_errors)),
            (
                "batsched_disk_breaker_trips_total",
                load(&c.disk_breaker_trips),
            ),
            ("batsched_disk_rearms_total", load(&c.disk_rearms)),
            (
                "batsched_fault_injected_total",
                self.shared.faults.injected_total(),
            ),
            (
                "batsched_spans_dropped_total",
                self.shared.logger.as_ref().map_or(0, SpanLog::dropped),
            ),
        ];
        for (name, value) in counters {
            render_type(&mut out, name, "counter");
            render_sample(&mut out, name, "", value);
        }

        // Requests by wire format: `binary` is counted directly, `json` is
        // the remainder of `received` (the formats partition admissions).
        let received = load(&c.received);
        let binary = load(&c.binary_requests);
        render_type(&mut out, "batsched_requests_by_format", "counter");
        render_sample(
            &mut out,
            "batsched_requests_by_format",
            "format=\"json\"",
            received.saturating_sub(binary),
        );
        render_sample(
            &mut out,
            "batsched_requests_by_format",
            "format=\"binary\"",
            binary,
        );

        let disk_entries = self
            .shared
            .disk
            .as_ref()
            .map_or(0, |d| lock_recover(d).len());
        let gauges: [(&str, u64); 8] = [
            (
                "batsched_queue_depth",
                self.shared.in_queue.load(Ordering::Relaxed),
            ),
            (
                "batsched_workers_live",
                self.shared.workers_live.load(Ordering::Relaxed),
            ),
            ("batsched_workers_target", self.cfg.workers as u64),
            (
                "batsched_disk_breaker_open",
                u64::from(self.shared.breaker.is_open()),
            ),
            ("batsched_cache_entries", self.shared.cache.len() as u64),
            (
                "batsched_cache_capacity",
                self.shared.cache.capacity() as u64,
            ),
            ("batsched_disk_entries", disk_entries as u64),
            ("batsched_ready", u64::from(self.readiness().is_ok())),
        ];
        for (name, value) in gauges {
            render_type(&mut out, name, "gauge");
            render_sample(&mut out, name, "", value);
        }
        // Only fleet workers export their slot: a standalone daemon has no
        // meaningful value to report, and an absent series is clearer than
        // a sentinel.
        if let Some(id) = self.cfg.fleet_worker {
            render_type(&mut out, "batsched_fleet_worker_id", "gauge");
            render_sample(&mut out, "batsched_fleet_worker_id", "", u64::from(id));
        }

        let prof = m.prof.load();
        let solver: [(&str, u64); 10] = [
            ("batsched_solver_windows_total", prof.windows),
            ("batsched_solver_carry_hits_total", prof.carry_hits),
            ("batsched_solver_carry_misses_total", prof.carry_misses),
            ("batsched_solver_rows_full_total", prof.rows_full),
            ("batsched_solver_rows_carried_total", prof.rows_carried),
            (
                "batsched_solver_journal_promotions_total",
                prof.journal_promotions,
            ),
            (
                "batsched_solver_journal_rollbacks_total",
                prof.journal_rollbacks,
            ),
            ("batsched_solver_sigma_evals_total", prof.sigma_evals),
            ("batsched_solver_sigma_reused_total", prof.sigma_reused),
            ("batsched_solver_sigma_fresh_total", prof.sigma_fresh),
        ];
        for (name, value) in solver {
            render_type(&mut out, name, "counter");
            render_sample(&mut out, name, "", value);
        }

        render_type(&mut out, "batsched_request_duration_us", "histogram");
        render_histogram(
            &mut out,
            "batsched_request_duration_us",
            "",
            &m.total.snapshot(),
        );
        render_type(&mut out, "batsched_stage_duration_us", "histogram");
        let stages: [(&str, &Histogram); 9] = [
            ("read", &m.read),
            ("queue", &m.queue),
            ("parse", &m.parse),
            ("hash", &m.hash),
            ("cache", &m.cache),
            ("disk", &m.disk),
            ("solve", &m.solve),
            ("serialize", &m.serialize),
            ("write", &m.write),
        ];
        for (stage, hist) in stages {
            render_histogram(
                &mut out,
                "batsched_stage_duration_us",
                &format!("stage=\"{stage}\""),
                &hist.snapshot(),
            );
        }
        render_type(&mut out, "batsched_solve_cold_duration_us", "histogram");
        render_histogram(
            &mut out,
            "batsched_solve_cold_duration_us",
            "",
            &m.solve_cold.snapshot(),
        );
        out
    }

    /// A consistent-enough point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.counters;
        let shard_occupancy = self.shared.cache.occupancy();
        let disk_entries = self
            .shared
            .disk
            .as_ref()
            .map_or(0, |d| lock_recover(d).len());
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mean_us = |nanos: u64, count: u64| {
            if count == 0 {
                0.0
            } else {
                nanos as f64 / count as f64 / 1_000.0
            }
        };
        let solved = load(&c.ok_solved);
        let hits = load(&c.cache_hits);
        let disk_hits = load(&c.disk_hits);
        let e2e = self.shared.metrics.total.snapshot();
        let solve_cold = self.shared.metrics.solve_cold.snapshot();
        StatsSnapshot {
            v: WIRE_VERSION,
            workers: self.cfg.workers,
            queue_capacity: self.cfg.queue_capacity,
            cache_capacity: self.shared.cache.capacity(),
            cache_len: shard_occupancy.iter().sum(),
            cache_shards: self.shared.cache.shard_count(),
            shard_occupancy,
            disk_enabled: self.shared.disk.is_some(),
            disk_degraded: self.shared.breaker.is_open(),
            disk_entries,
            received: load(&c.received),
            binary_requests: load(&c.binary_requests),
            solved,
            cache_hits: hits,
            disk_hits,
            cache_misses: load(&c.cache_misses),
            client_errors: load(&c.client_errors),
            internal_errors: load(&c.internal_errors),
            rejected: load(&c.rejected),
            timeouts: load(&c.timeouts),
            worker_panics: load(&c.worker_panics),
            worker_respawns: load(&c.worker_respawns),
            disk_errors: load(&c.disk_errors),
            disk_breaker_trips: load(&c.disk_breaker_trips),
            disk_rearms: load(&c.disk_rearms),
            solve_mean_us: mean_us(load(&c.solve_nanos), solved),
            hit_mean_us: mean_us(load(&c.hit_nanos), hits),
            disk_hit_mean_us: mean_us(load(&c.disk_hit_nanos), disk_hits),
            queue_depth: self.shared.in_queue.load(Ordering::Relaxed),
            workers_live: self.shared.workers_live.load(Ordering::Relaxed),
            faults_injected: self.shared.faults.injected_total(),
            spans_dropped: self.shared.logger.as_ref().map_or(0, SpanLog::dropped),
            e2e_p50_us: e2e.quantile(0.50),
            e2e_p95_us: e2e.quantile(0.95),
            e2e_p99_us: e2e.quantile(0.99),
            solve_p50_us: solve_cold.quantile(0.50),
            solve_p95_us: solve_cold.quantile(0.95),
            solve_p99_us: solve_cold.quantile(0.99),
        }
    }

    /// The stats snapshot as a JSON document.
    pub fn stats_json(&self) -> String {
        // lint:allow(panic-path): StatsSnapshot is an owned struct of
        // numbers with derived Serialize; serialisation cannot fail.
        serde_json::to_string(&self.stats()).expect("stats serialise")
    }

    /// Graceful shutdown: stop accepting, drain the queue, join the
    /// workers (via the supervisor), compact the disk tier. Idempotent;
    /// safe to call from any thread holding the service (frontends call it
    /// through their `Arc`).
    pub fn shutdown(&self) {
        // The flag first: a worker panicking mid-drain must not be
        // respawned into a closing pool.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the sender closes the channel; workers exit after
        // draining whatever was already queued.
        *lock_recover(&self.tx) = None;
        let supervisor = lock_recover(&self.supervisor).take();
        let draining = supervisor.is_some();
        if let Some(h) = supervisor {
            let _ = h.join();
        }
        // Compact once, on the call that actually drained the workers; a
        // failed compaction leaves the (correct, just sparser) append log.
        if draining {
            if let Some(disk) = &self.shared.disk {
                if let Err(e) = lock_recover(disk).compact() {
                    eprintln!("batsched-service: disk-cache compaction failed: {e}");
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Runs one worker to completion. Returns `true` on a clean exit (queue
/// drained for shutdown) and `false` when a caught panic ends this worker
/// — the workspace may hold arbitrary intermediate state, so the thread
/// retires and the supervisor replaces it with a fresh one.
fn worker_loop(id: usize, rx: &Mutex<Receiver<Job>>, shared: &Shared) -> bool {
    // The reusable per-worker state the whole design exists for: solver
    // buffers survive across requests, so steady-state solving does not
    // allocate in the σ hot path.
    let mut ws = SolverWorkspace::new();
    let worker = Some(id as u32);
    loop {
        let job = {
            let guard = lock_recover(rx);
            guard.recv()
        };
        let Ok(job) = job else {
            return true; // channel closed: graceful shutdown
        };
        shared.in_queue.fetch_sub(1, Ordering::Relaxed);
        let queue_us = job.submitted.elapsed().as_micros() as u64;
        // Shed jobs that expired while queued: the caller has already
        // answered `timeout`, so a solve here would be wasted work that
        // delays every request still inside its deadline.
        if let Some(budget) = shared.request_timeout {
            if job.submitted.elapsed() >= budget {
                let trace = RequestTrace {
                    queue_us,
                    worker,
                    ..RequestTrace::default()
                };
                shared.metrics.observe_stages(&trace);
                let _ = job.reply.send(Reply {
                    body: ErrorResponse::timeout(budget).to_json(),
                    disposition: Disposition::Timeout,
                    micros: job.submitted.elapsed().as_micros() as u64,
                    trace,
                });
                continue;
            }
        }
        // The workspace's phase counters are cumulative across requests;
        // the delta around `answer` is what this request cost.
        let prof_before = ws.prof();
        match catch_unwind(AssertUnwindSafe(|| {
            answer(&job.body, job.format, shared, &mut ws, job.submitted)
        })) {
            Ok(mut reply) => {
                reply.trace.queue_us = queue_us;
                reply.trace.worker = worker;
                reply.trace.prof = ws.prof().since(&prof_before);
                shared.metrics.prof.add(&reply.trace.prof);
                shared.metrics.observe_stages(&reply.trace);
                if reply.disposition == (Disposition::Ok { cached: false }) {
                    shared.metrics.solve_cold.observe(reply.trace.solve_us);
                }
                let _ = job.reply.send(reply); // caller may have given up; fine
            }
            Err(payload) => {
                let c = &shared.counters;
                c.worker_panics.fetch_add(1, Ordering::Relaxed);
                c.internal_errors.fetch_add(1, Ordering::Relaxed);
                let body = ErrorResponse::new(
                    "internal",
                    format!(
                        "solver worker panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                )
                .to_json();
                // The in-flight trace died with the unwound stack; report
                // what the worker still knows. `injected` approximates
                // fault-plane involvement: an armed plane is by far the
                // most likely panic source in this codebase.
                let trace = RequestTrace {
                    queue_us,
                    worker,
                    injected: shared.faults.is_armed(),
                    ..RequestTrace::default()
                };
                shared.metrics.observe_stages(&trace);
                let _ = job.reply.send(Reply {
                    body,
                    disposition: Disposition::Internal,
                    micros: job.submitted.elapsed().as_micros() as u64,
                    trace,
                });
                return false;
            }
        }
    }
}

fn answer(
    body: &[u8],
    format: WireFormat,
    shared: &Shared,
    ws: &mut SolverWorkspace,
    submitted: Instant,
) -> Reply {
    let c = &shared.counters;
    let finish = |disposition: Disposition, body: String, trace: RequestTrace| Reply {
        micros: submitted.elapsed().as_micros() as u64,
        body,
        disposition,
        trace,
    };
    let us = |t: Instant| t.elapsed().as_micros() as u64;
    let mut trace = RequestTrace {
        format,
        ..RequestTrace::default()
    };
    // Injected solver latency models a slow solve (chaos tests drive the
    // deadline machinery with it); it sits inside `catch_unwind` like the
    // real work it stands in for. The sleep is deliberately attributed to
    // the solve stage — that is what it impersonates. Fault patterns match
    // on text, so a non-UTF-8 binary body simply matches nothing.
    let body_text_for_faults = || std::str::from_utf8(body).unwrap_or("");
    if shared.faults.is_armed() {
        if let Some(delay) = shared.faults.solver_latency(body_text_for_faults()) {
            std::thread::sleep(delay);
            trace.injected = true;
            trace.solve_us += delay.as_micros() as u64;
        }
    }
    // Fast path: an exact byte-duplicate of a previously answered request
    // is replayed without parsing anything — the alias index maps the raw
    // document hash to the canonical cache entry, verifying the stored
    // document byte-for-byte (a hash collision is a miss, not a lie).
    // Works identically for JSON and binary spellings.
    let t = Instant::now();
    let raw_key = wire::fnv1a64(body);
    let alias_hit = shared.cache.get_by_alias(raw_key, body);
    trace.cache_us += us(t);
    if let Some(cached) = alias_hit {
        c.cache_hits.fetch_add(1, Ordering::Relaxed);
        c.hit_nanos
            .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return finish(Disposition::Ok { cached: true }, cached, trace);
    }
    // Admission: JSON parses then hashes in a separate (streaming) pass;
    // the binary decoder folds the canonical hash into its single byte
    // walk, so `hash_us` stays 0 — the hash came for free.
    let (req, key) = match format {
        WireFormat::Json => {
            let t = Instant::now();
            let parsed = std::str::from_utf8(body)
                .map_err(|_| wire::WireError::Syntax {
                    message: "body is not UTF-8".into(),
                })
                .and_then(wire::parse_request);
            trace.parse_us += us(t);
            let req = match parsed {
                Ok(req) => req,
                Err(e) => {
                    c.client_errors.fetch_add(1, Ordering::Relaxed);
                    return finish(
                        Disposition::ClientError,
                        ErrorResponse::from_wire(&e).to_json(),
                        trace,
                    );
                }
            };
            let t = Instant::now();
            let key = req.content_hash();
            trace.hash_us += us(t);
            (req, key)
        }
        WireFormat::Binary => {
            let t = Instant::now();
            let decoded = wire_bin::decode_request(body);
            trace.parse_us += us(t);
            match decoded {
                Ok(pair) => pair,
                Err(e) => {
                    c.client_errors.fetch_add(1, Ordering::Relaxed);
                    return finish(
                        Disposition::ClientError,
                        ErrorResponse::from_wire(&e).to_json(),
                        trace,
                    );
                }
            }
        }
    };
    let t = Instant::now();
    let canonical_hit = shared.cache.get(key);
    trace.cache_us += us(t);
    if let Some(cached) = canonical_hit {
        // Different spelling, same canonical question: remember this
        // spelling so its next occurrence takes the fast path.
        shared.cache.alias(raw_key, body, key);
        c.cache_hits.fetch_add(1, Ordering::Relaxed);
        c.hit_nanos
            .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return finish(Disposition::Ok { cached: true }, cached, trace);
    }
    // One breaker decision covers this request's disk read and (on a cold
    // solve) its disk append: while the tier is degraded both are skipped,
    // and the periodic probe request exercises the full read+write path.
    let disk_allowed = shared.disk.is_some() && shared.breaker.allow();
    // Disk tier: a previous process (or an entry the memory tier evicted)
    // may have the answer on disk; promote it so the next probe is a
    // memory hit. An I/O error here feeds the breaker and falls through
    // to a cold solve — the disk never fails a solvable request.
    if let Some(disk) = shared.disk.as_ref().filter(|_| disk_allowed) {
        let t = Instant::now();
        let persisted = lock_recover(disk).get(key);
        trace.disk_us += us(t);
        match persisted {
            Ok(Some(cached)) => {
                shared.breaker.record_ok(c);
                shared.cache.insert(key, cached.clone());
                shared.cache.alias(raw_key, body, key);
                c.disk_hits.fetch_add(1, Ordering::Relaxed);
                c.disk_hit_nanos
                    .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
                trace.served_from_disk = true;
                return finish(Disposition::Ok { cached: true }, cached, trace);
            }
            // An index miss does no I/O, so it proves nothing about the
            // disk's health: neutral for the breaker.
            Ok(None) => {}
            Err(e) => {
                shared.breaker.record_err(c);
                // The error may be organic or injected; with an armed
                // plane, flag the request as fault-involved.
                trace.injected |= shared.faults.is_armed();
                eprintln!("batsched-service: disk-cache read failed: {e}");
            }
        }
    }
    c.cache_misses.fetch_add(1, Ordering::Relaxed);
    if shared.faults.is_armed() && shared.faults.solver_panic(body_text_for_faults()) {
        // lint:allow(panic-path): fault injection by design — this panic is
        // the test stimulus for the catch_unwind isolation boundary below.
        panic!("injected solver panic");
    }
    let t = Instant::now();
    let solved = solve(&req, ws);
    trace.solve_us += us(t);
    match solved {
        Ok(resp) => {
            let t = Instant::now();
            // lint:allow(panic-path): ScheduleResponse is owned plain data
            // with derived Serialize; serialisation cannot fail.
            let rendered = serde_json::to_string(&resp).expect("responses serialise");
            shared.cache.insert(key, rendered.clone());
            shared.cache.alias(raw_key, body, key);
            trace.serialize_us += us(t);
            if let Some(disk) = shared.disk.as_ref().filter(|_| disk_allowed) {
                // A failed append only costs warmth after the next restart;
                // the in-memory answer is already correct.
                let t = Instant::now();
                let appended = lock_recover(disk).put(key, &rendered);
                trace.disk_us += us(t);
                match appended {
                    Ok(()) => shared.breaker.record_ok(c),
                    Err(e) => {
                        shared.breaker.record_err(c);
                        trace.injected |= shared.faults.is_armed();
                        eprintln!("batsched-service: disk-cache append failed: {e}");
                    }
                }
            }
            c.ok_solved.fetch_add(1, Ordering::Relaxed);
            c.solve_nanos
                .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
            finish(Disposition::Ok { cached: false }, rendered, trace)
        }
        Err(err) => {
            let disposition = if err.error == "internal" {
                c.internal_errors.fetch_add(1, Ordering::Relaxed);
                Disposition::Internal
            } else {
                c.client_errors.fetch_add(1, Ordering::Relaxed);
                Disposition::ClientError
            };
            finish(disposition, err.to_json(), trace)
        }
    }
}

/// Solves one validated request to a response — shared by the pool workers
/// and direct (in-process, synchronous) callers like tests.
///
/// # Errors
///
/// A typed [`ErrorResponse`] mirroring the scheduler's failure.
pub fn solve(
    req: &ScheduleRequest,
    ws: &mut SolverWorkspace,
) -> Result<ScheduleResponse, ErrorResponse> {
    let config = wire::scheduler_config(req);
    let sol = schedule_in(&req.graph, Minutes::new(req.deadline), &config, ws)
        .map_err(|e| ErrorResponse::from_scheduler(&e))?;
    let spec = req
        .model
        .clone()
        .unwrap_or_else(wire::ModelSpec::default_rv);
    let model = spec.build().map_err(|e| ErrorResponse::from_wire(&e))?;
    let profile = sol.schedule.to_profile(&req.graph);
    let end = profile.end();
    let model_cost = model.apparent_charge(&profile, end);
    let (survives, lifetime) = match req.capacity {
        None => (None, None),
        Some(cap) => match model.lifetime(&profile, MilliAmpMinutes::new(cap)) {
            None => (Some(true), None),
            Some(t) => (Some(false), Some(t.value())),
        },
    };
    Ok(ScheduleResponse {
        v: WIRE_VERSION,
        key: req.key(),
        model: spec.name().to_string(),
        order: sol.schedule.order().iter().map(|t| t.index()).collect(),
        assignment: sol
            .schedule
            .assignment()
            .iter()
            .map(|p| p.index())
            .collect(),
        sigma: sol.cost.value(),
        makespan: sol.makespan.value(),
        deadline: req.deadline,
        direct_charge: sol.schedule.direct_charge(&req.graph).value(),
        model_cost: model_cost.value(),
        survives,
        lifetime,
        iterations: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ScheduleRequest;
    use batsched_taskgraph::paper::g2;

    fn body(deadline: f64) -> String {
        serde_json::to_string(&ScheduleRequest::new(g2(), deadline)).expect("serialises")
    }

    #[test]
    fn solve_produces_a_valid_schedule() {
        let req = wire::parse_request(&body(75.0)).unwrap();
        let resp = solve(&req, &mut SolverWorkspace::new()).unwrap();
        assert_eq!(resp.v, WIRE_VERSION);
        assert_eq!(resp.key, req.key());
        assert!(resp.makespan <= 75.0 + 1e-9);
        assert!(resp.sigma > 0.0);
        assert_eq!(resp.order.len(), 9);
        assert_eq!(resp.assignment.len(), 9);
        assert_eq!(resp.survives, None);
    }

    #[test]
    fn lifetime_report_under_each_model() {
        for (model, expect_survive) in [
            (Some(crate::wire::ModelSpec::Ideal), true),
            (
                Some(crate::wire::ModelSpec::Kibam {
                    c: 0.5,
                    k: 0.05,
                    alpha: 60_000.0,
                }),
                true,
            ),
            (None, true),
        ] {
            let mut req = wire::parse_request(&body(75.0)).unwrap();
            req.model = model;
            req.capacity = Some(60_000.0);
            let resp = solve(&req, &mut SolverWorkspace::new()).unwrap();
            assert_eq!(resp.survives, Some(expect_survive), "{}", resp.model);
        }
        // A tiny battery dies mid-schedule.
        let mut req = wire::parse_request(&body(75.0)).unwrap();
        req.capacity = Some(2_000.0);
        let resp = solve(&req, &mut SolverWorkspace::new()).unwrap();
        assert_eq!(resp.survives, Some(false));
        let t = resp.lifetime.expect("death instant reported");
        assert!(t > 0.0 && t < resp.makespan);
    }

    #[test]
    fn service_round_trip_and_stats() {
        let svc = Service::start(ServiceConfig::default());
        let cold = svc.call(body(75.0));
        assert_eq!(cold.disposition, Disposition::Ok { cached: false });
        let warm = svc.call(body(75.0));
        assert_eq!(warm.disposition, Disposition::Ok { cached: true });
        assert_eq!(cold.body, warm.body, "hit must be bit-identical");
        let bad = svc.call("{ nope".into());
        assert_eq!(bad.disposition, Disposition::ClientError);
        let infeasible = svc.call(body(10.0));
        assert_eq!(infeasible.disposition, Disposition::ClientError);
        assert!(infeasible.body.contains("infeasible"));

        let stats = svc.stats();
        assert_eq!(stats.received, 4);
        assert_eq!(stats.solved, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2); // the infeasible request also missed
        assert_eq!(stats.client_errors, 2);
        assert_eq!(stats.cache_len, 1);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.worker_panics, 0);
        assert_eq!(stats.worker_respawns, 0);
        assert!(!stats.disk_degraded);
        let rendered = svc.stats_json();
        assert!(rendered.contains("\"cache_hits\":1"), "{rendered}");
        assert!(rendered.contains("\"disk_degraded\":false"), "{rendered}");
        svc.shutdown();
        // Submissions after shutdown are refused, not hung.
        let refused = svc.call(body(75.0));
        assert_eq!(refused.disposition, Disposition::Overloaded);
    }

    #[test]
    fn disk_tier_serves_warm_after_restart() {
        let dir = std::env::temp_dir().join("batsched_service_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("warm_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = ServiceConfig {
            disk_path: Some(path.clone()),
            ..ServiceConfig::default()
        };

        let svc = Service::try_start(cfg.clone()).unwrap();
        let cold = svc.call(body(75.0));
        assert_eq!(cold.disposition, Disposition::Ok { cached: false });
        svc.shutdown(); // compacts the disk tier

        // A fresh process: memory cache empty, disk tier warm.
        let svc = Service::try_start(cfg).unwrap();
        let warm = svc.call(body(75.0));
        assert_eq!(warm.disposition, Disposition::Ok { cached: true });
        assert_eq!(warm.body, cold.body, "disk hit must be bit-identical");
        let stats = svc.stats();
        assert!(stats.disk_enabled);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.cache_hits, 0, "first probe came from disk");
        assert_eq!(stats.disk_entries, 1);
        // The promoted entry now answers from memory (alias fast path).
        let memory = svc.call(body(75.0));
        assert_eq!(memory.disposition, Disposition::Ok { cached: true });
        assert_eq!(svc.stats().cache_hits, 1);
        svc.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_runs_on_drop() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        svc.shutdown();
        svc.shutdown();
        drop(svc);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let cases = [
            (
                ServiceConfig {
                    workers: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroWorkers,
            ),
            (
                ServiceConfig {
                    queue_capacity: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroQueueCapacity,
            ),
            (
                ServiceConfig {
                    cache_capacity: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroCacheCapacity,
            ),
            (
                ServiceConfig {
                    cache_shards: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroCacheShards,
            ),
            (
                ServiceConfig {
                    request_timeout: Some(Duration::ZERO),
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroRequestTimeout,
            ),
            (
                ServiceConfig {
                    fsync_policy: FsyncPolicy::EveryN(0),
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroFsyncInterval,
            ),
            (
                ServiceConfig {
                    disk_breaker_threshold: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroBreakerThreshold,
            ),
            (
                ServiceConfig {
                    disk_probe_interval: Duration::ZERO,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroProbeInterval,
            ),
            (
                ServiceConfig {
                    log_rate_limit: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroLogRateLimit,
            ),
            (
                ServiceConfig {
                    idle_timeout: Duration::ZERO,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroIdleTimeout,
            ),
            (
                ServiceConfig {
                    max_requests_per_conn: 0,
                    ..ServiceConfig::default()
                },
                ConfigError::ZeroMaxRequestsPerConn,
            ),
        ];
        for (cfg, expected) in cases {
            match Service::try_start(cfg) {
                Err(StartError::Config(e)) => assert_eq!(e, expected),
                Err(other) => panic!("expected Config({expected:?}), got {other:?}"),
                Ok(_) => panic!("expected Config({expected:?}), got a running service"),
            }
        }
    }
}
