//! A minimal, comment/string/raw-string-aware Rust lexer.
//!
//! This is deliberately *not* a full Rust lexer: it produces exactly the
//! token stream the rules in [`crate::rules`] need — identifiers,
//! single-char punctuation, literals and lifetimes, each tagged with its
//! 1-based source line — while guaranteeing that nothing inside a
//! comment, string literal, raw string, byte string or char literal can
//! ever masquerade as code. That guarantee is what kills the
//! regex-over-source false-positive class: `// don't unwrap() here` and
//! `"panic!"` are invisible to every rule.
//!
//! Suppression comments (`// lint:allow(<rule>): <reason>`) are the one
//! piece of comment content the lexer *does* surface: they are parsed
//! here, attached to their source line, and handed to the driver so that
//! unused (stale) allows can be reported as errors.

/// Token kind. Punctuation is one token per character; multi-char
/// operators (`::`, `->`, `>=`) appear as adjacent punct tokens, which is
/// all the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `MAX_TERMS`, …).
    Ident,
    /// Single punctuation character.
    Punct(char),
    /// String / byte-string / char / numeric literal (content opaque).
    Lit,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One token: kind plus byte span into the source and 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text slice.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, src: &str, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A parsed `// lint:allow(<rule>): <reason>` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the comment starts on; it covers findings on this line and
    /// the next (annotation-above-the-violation style).
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// Lexer output: the token stream, well-formed suppressions, and
/// grammar errors in suppressions (missing reason, unparseable shape).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<Allow>,
    /// (line, message) pairs for malformed `lint:allow` comments.
    pub allow_errors: Vec<(u32, String)>,
    /// Total number of source lines (for throughput reporting).
    pub lines: u32,
}

/// The directive prefix searched for inside comment text.
const ALLOW_PREFIX: &str = "lint:allow";

fn parse_allow(comment: &str, line: u32, out: &mut Lexed) {
    let Some(at) = comment.find(ALLOW_PREFIX) else {
        return;
    };
    // The directive must *start* the comment (after the `//`/`/*` marker
    // and whitespace); prose that merely mentions lint:allow mid-sentence
    // is documentation, not a suppression.
    if !comment[..at]
        .chars()
        .all(|c| c == '/' || c == '*' || c == '!' || c.is_whitespace())
    {
        return;
    }
    let rest = &comment[at + ALLOW_PREFIX.len()..];
    let bad = |out: &mut Lexed, why: &str| {
        out.allow_errors.push((
            line,
            format!("malformed suppression (expected `lint:allow(<rule>): <reason>`): {why}"),
        ));
    };
    let Some(rest) = rest.strip_prefix('(') else {
        bad(out, "missing `(` after lint:allow");
        return;
    };
    let Some(close) = rest.find(')') else {
        bad(out, "missing `)` after rule name");
        return;
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        bad(out, "empty rule name");
        return;
    }
    let tail = &rest[close + 1..];
    let Some(reason) = tail.strip_prefix(':') else {
        bad(out, "missing `:` before the reason");
        return;
    };
    let reason = reason.trim();
    if reason.is_empty() {
        bad(out, "empty reason — say why the violation is acceptable");
        return;
    }
    out.allows.push(Allow {
        line,
        rule: rule.to_string(),
        reason: reason.to_string(),
    });
}

/// Lexes `src`. Never fails: unrecognised bytes become punct tokens, an
/// unterminated literal or comment simply ends at EOF.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_newlines = |s: &str| s.bytes().filter(|&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
            parse_allow(&src[i..end], line, &mut out);
            i = end;
            continue;
        }
        // Block comment, nested.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            parse_allow(&src[i..j], start_line, &mut out);
            i = j;
            continue;
        }
        // Raw strings / raw identifiers: r"...", r#"..."#, r#ident.
        if c == b'r' || c == b'b' {
            if let Some((end, newlines, is_raw_ident)) = raw_or_byte_start(src, i) {
                if is_raw_ident {
                    // `r#ident`: emit the identifier without the prefix.
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        start: i + 2,
                        end,
                        line,
                    });
                } else {
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        start: i,
                        end,
                        line,
                    });
                }
                line += newlines;
                i = end;
                continue;
            }
        }
        // Identifier / keyword.
        if c == b'_' || c.is_ascii_alphabetic() {
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                start: i,
                end: j,
                line,
            });
            i = j;
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                // Decimal point: only if followed by a digit (so `0..n`
                // and `1.method()` keep their own tokens).
                if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                    j += 2;
                    continue;
                }
                // Exponent sign: `1e-3`, `2.5E+8`.
                if j < b.len()
                    && (b[j] == b'+' || b[j] == b'-')
                    && matches!(b.get(j.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                    && b.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    j += 2;
                    continue;
                }
                break;
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                start: i,
                end: j,
                line,
            });
            i = j;
            continue;
        }
        // String literal.
        if c == b'"' {
            let (end, newlines) = scan_string(src, i);
            out.toks.push(Tok {
                kind: TokKind::Lit,
                start: i,
                end,
                line,
            });
            line += newlines;
            i = end;
            continue;
        }
        // Char literal or lifetime.
        if c == b'\'' {
            let rest = &src[i + 1..];
            let mut it = rest.chars();
            match it.next() {
                Some('\\') => {
                    // Escaped char literal: scan to the closing quote.
                    let mut j = i + 2;
                    while j < b.len() {
                        if b[j] == b'\\' {
                            j += 2;
                            continue;
                        }
                        if b[j] == b'\'' {
                            j += 1;
                            break;
                        }
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        start: i,
                        end: j.min(b.len()),
                        line,
                    });
                    i = j.min(b.len());
                }
                Some(c1) if it.next() == Some('\'') => {
                    // Plain char literal 'x'.
                    let end = i + 1 + c1.len_utf8() + 1;
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        start: i,
                        end,
                        line,
                    });
                    i = end;
                }
                _ => {
                    // Lifetime: 'ident or '_.
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        start: i,
                        end: j,
                        line,
                    });
                    i = j;
                }
            }
            continue;
        }
        // Punctuation: one token per char (multi-byte chars kept whole).
        let ch = src[i..].chars().next().unwrap_or('?');
        out.toks.push(Tok {
            kind: TokKind::Punct(ch),
            start: i,
            end: i + ch.len_utf8(),
            line,
        });
        i += ch.len_utf8();
    }

    out.lines = count_newlines(src) + 1;
    out
}

/// At `src[i]` ∈ {b, r}: detects `r"`, `r#…#"`, `br"`, `b"`, `b'`, and raw
/// identifiers `r#ident`. Returns `(end, newlines, is_raw_ident)` if the
/// position starts one of those forms, else `None` (plain identifier).
fn raw_or_byte_start(src: &str, i: usize) -> Option<(usize, u32, bool)> {
    let b = src.as_bytes();
    let c = b[i];
    // b'x' byte char literal.
    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
        let mut j = i + 2;
        while j < b.len() {
            if b[j] == b'\\' {
                j += 2;
                continue;
            }
            if b[j] == b'\'' {
                j += 1;
                break;
            }
            j += 1;
        }
        return Some((j.min(b.len()), 0, false));
    }
    // b"..." byte string with escapes.
    if c == b'b' && b.get(i + 1) == Some(&b'"') {
        let (end, nl) = scan_string(src, i + 1);
        return Some((end, nl, false));
    }
    // r / br raw forms.
    let hash_start = match (c, b.get(i + 1)) {
        (b'r', Some(&b'"')) | (b'r', Some(&b'#')) => i + 1,
        (b'b', Some(&b'r')) if matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')) => i + 2,
        _ => return None,
    };
    let mut hashes = 0usize;
    let mut j = hash_start;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        // `r#ident` raw identifier (only valid for the r-prefix form).
        if c == b'r'
            && hashes == 1
            && b.get(j)
                .is_some_and(|d| *d == b'_' || d.is_ascii_alphabetic())
        {
            let mut k = j + 1;
            while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
                k += 1;
            }
            return Some((k, 0, true));
        }
        return None;
    }
    // Scan for `"` followed by `hashes` hash marks.
    j += 1;
    let mut nl = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            nl += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((k, nl, false));
            }
        }
        j += 1;
    }
    Some((b.len(), nl, false))
}

/// Scans a `"…"` string starting at the opening quote; returns
/// `(end_exclusive, newlines)`.
fn scan_string(src: &str, i: usize) -> (usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (b.len(), nl)
}
