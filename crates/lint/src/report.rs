//! Human-readable and JSON rendering of lint findings.
//!
//! The JSON writer is hand-rolled (the linter is dependency-free by
//! design); its shape is pinned by a test in `tests/lint_rules.rs` so
//! future tooling can consume it:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files": 63,
//!   "lines": 31000,
//!   "elapsed_ms": 120,
//!   "findings": [
//!     {"rule": "panic-path", "file": "crates/service/src/http.rs",
//!      "line": 42, "message": "…"}
//!   ]
//! }
//! ```

use crate::rules::Finding;
use crate::Report;
use std::fmt::Write as _;

/// Renders findings as `file:line: [rule] message` lines plus a summary.
pub fn render_human(rep: &Report, elapsed_ms: u128) -> String {
    let mut out = String::new();
    for f in &rep.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        out,
        "batsched-lint: {} finding(s) in {} file(s), {} line(s), {} ms",
        rep.findings.len(),
        rep.files,
        rep.lines,
        elapsed_ms
    );
    out
}

/// Renders the machine-readable report (`--json`).
pub fn render_json(rep: &Report, elapsed_ms: u128) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":1,\"files\":{},\"lines\":{},\"elapsed_ms\":{},\"findings\":[",
        rep.files, rep.lines, elapsed_ms
    );
    for (i, f) in rep.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One `Finding` as a JSON object (used by the shape test).
pub fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
        json_str(&f.rule),
        json_str(&f.file),
        f.line,
        json_str(&f.message)
    )
}
