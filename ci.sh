#!/usr/bin/env bash
# CI pipeline: formatting, lints, build, tests (both feature configs), and
# the perf-trajectory snapshot. Mirrors the recipes in ./justfile.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -D warnings (parallel feature)"
cargo clippy --workspace --all-targets --features parallel -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (workspace, parallel feature)"
cargo test --workspace -q --features parallel

echo "==> perf snapshot (BENCH_scheduler.json)"
cargo run --release -q -p batsched-bench --bin repro_bench_json

echo "CI OK"
