//! Fleet robustness tests: routing invariants (proptest), exactly-once
//! retry under a mid-body upstream drop, breaker-driven restart of a
//! wedged worker, kill/respawn with zero lost requests, drain/readyz
//! transitions and the typed `upstream_unavailable` budget.

use batsched_service::fleet::SlotFaults;
use batsched_service::wire::fnv1a64;
use batsched_service::{
    home_slot, route, FaultPlane, FaultRule, FaultSite, Fleet, FleetConfig, InProcessLauncher,
    ScheduleRequest, ServiceConfig,
};
use batsched_taskgraph::paper::g2;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- routing

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Routing is total (any live worker ⇒ some assignment), in range,
    /// stable (pure function of hash + liveness), and lands on the home
    /// slot whenever the home slot is live.
    #[test]
    fn routing_is_total_stable_and_home_preferring(
        hash in any::<u64>(),
        live in prop::collection::vec(any::<bool>(), 1..9),
    ) {
        let routed = route(hash, &live);
        prop_assert_eq!(route(hash, &live), routed, "stable");
        match routed {
            None => prop_assert!(live.iter().all(|&l| !l), "None only when nobody is live"),
            Some(s) => {
                prop_assert!(s < live.len());
                prop_assert!(live[s], "routes only to live workers");
                let home = home_slot(hash, live.len());
                if live[home] {
                    prop_assert_eq!(s, home, "a live home slot always wins");
                }
            }
        }
    }

    /// Marking one worker dead only remaps the hashes that routed to it;
    /// every other worker keeps its slice (minimal disruption — restarts
    /// don't shuffle warm caches fleet-wide).
    #[test]
    fn removing_one_worker_only_remaps_its_slice(
        hashes in prop::collection::vec(any::<u64>(), 1..64),
        live in prop::collection::vec(any::<bool>(), 2..9),
        dead_pick in any::<u64>(),
    ) {
        // The property needs a survivor: force at least two live slots.
        let mut live = live;
        live[0] = true;
        live[1] = true;
        let live_slots: Vec<usize> =
            (0..live.len()).filter(|&i| live[i]).collect();
        let dead = live_slots[dead_pick as usize % live_slots.len()];
        let mut after_mask = live.clone();
        after_mask[dead] = false;
        for hash in hashes {
            let before = route(hash, &live).expect("someone is live");
            let after = route(hash, &after_mask).expect("someone is still live");
            if before == dead {
                prop_assert!(after != dead, "the dead worker's slice fails over");
            } else {
                prop_assert_eq!(before, after, "survivors keep their slices");
            }
        }
    }
}

// ----------------------------------------------------------- harness

fn worker_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

fn fast_fleet_config(size: usize) -> FleetConfig {
    FleetConfig {
        size,
        retry_budget: 2,
        upstream_timeout: Duration::from_secs(2),
        probe_interval: Duration::from_millis(30),
        backoff_base: Duration::from_millis(50),
        backoff_max: Duration::from_millis(500),
        breaker_threshold: 2,
        drain_timeout: Duration::from_secs(5),
        start_timeout: Duration::from_secs(10),
    }
}

fn boot(cfg: FleetConfig, faults: Option<SlotFaults>) -> Fleet {
    let launcher = InProcessLauncher {
        config: worker_config(),
        disk_base: None,
        faults,
    };
    let fleet = Fleet::start(cfg, Box::new(launcher), "127.0.0.1:0").expect("fleet starts");
    assert!(
        fleet.wait_ready(Duration::from_secs(20)),
        "fleet must become ready"
    );
    fleet
}

/// A schedule-request body whose content hash homes on `target` in a
/// fleet of `size` (the router hashes the raw body bytes).
fn body_homing_on(target: usize, size: usize) -> String {
    for tenth in 600..4000u32 {
        let body = serde_json::to_string(&ScheduleRequest::new(g2(), f64::from(tenth) / 10.0))
            .expect("serialises");
        if home_slot(fnv1a64(body.as_bytes()), size) == target {
            return body;
        }
    }
    panic!("no deadline in range homes on slot {target}");
}

struct Response {
    status: u16,
    head: String,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }
}

/// One request on a fresh connection; reads the framed response.
fn post_schedule(addr: SocketAddr, body: &str) -> Response {
    request(addr, "POST", "/v1/schedule", body)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read head line");
        assert!(n > 0 || !head.is_empty(), "EOF before any response");
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric Content-Length"))
        })
        .expect("response carries Content-Length");
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    Response {
        status,
        head,
        body: String::from_utf8(body).expect("UTF-8 body"),
    }
}

fn readyz_status(addr: SocketAddr) -> u16 {
    request(addr, "GET", "/readyz", "").status
}

// ------------------------------------------------------- basic routing

#[test]
fn fleet_answers_and_pins_duplicates_to_one_worker() {
    let fleet = boot(fast_fleet_config(3), None);
    let addr = fleet.local_addr();

    for target in 0..3 {
        let body = body_homing_on(target, 3);
        let cold = post_schedule(addr, &body);
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(
            cold.header("X-Fleet-Worker"),
            Some(target.to_string()).as_deref()
        );
        assert_eq!(cold.header("X-Cache"), Some("miss"));

        let warm = post_schedule(addr, &body);
        assert_eq!(warm.status, 200);
        assert_eq!(
            warm.header("X-Fleet-Worker"),
            cold.header("X-Fleet-Worker"),
            "duplicates route to the same worker"
        );
        assert_eq!(warm.header("X-Cache"), Some("hit"), "its cache is warm");
        assert_eq!(
            warm.body, cold.body,
            "bit-identical replay through the router"
        );
    }

    let status = fleet.status();
    assert!(status.ready);
    assert_eq!(status.requests, 6);
    assert_eq!(status.retries, 0);
    assert_eq!(status.unavailable, 0);

    let metrics = fleet.metrics_text();
    assert!(metrics.contains("batsched_fleet_size 3"), "{metrics}");
    assert!(metrics.contains("batsched_fleet_ready 1"), "{metrics}");
    assert!(
        metrics.contains("batsched_fleet_worker_proxied_total{worker=\"0\"}"),
        "{metrics}"
    );

    let doc = request(addr, "GET", "/v1/fleet", "");
    assert_eq!(doc.status, 200);
    assert!(doc.body.contains("\"workers\""), "{}", doc.body);
    fleet.shutdown();
}

// ------------------------------------------- exactly-once under drop

#[test]
fn mid_body_drop_is_retried_exactly_once_on_a_survivor() {
    // Worker 0 severs the connection after the response head and half the
    // body — once, for the one poisoned document.
    let poisoned = body_homing_on(0, 3);
    let marker = poisoned.clone();
    let faults: SlotFaults = Arc::new(move |slot, _attempt| {
        if slot == 0 {
            FaultPlane::armed([FaultRule::always(FaultSite::ConnDrop)
                .count(1)
                .key_contains(marker.clone())])
        } else {
            FaultPlane::disarmed()
        }
    });
    let fleet = boot(fast_fleet_config(3), Some(faults));
    let addr = fleet.local_addr();

    // The client sees exactly one complete, correct response: the router
    // absorbs the severed upstream exchange and fails over.
    let resp = post_schedule(addr, &poisoned);
    assert_eq!(resp.status, 200, "{}", resp.body);
    let survivor = resp.header("X-Fleet-Worker").expect("worker header");
    assert_ne!(survivor, "0", "answered by a failover worker");
    assert!(resp.body.contains("\"sigma\""), "{}", resp.body);

    let status = fleet.status();
    assert_eq!(status.retries, 1, "exactly one failover retry");
    assert_eq!(status.unavailable, 0);
    assert_eq!(status.workers[0].upstream_errors, 1);

    // The rule's budget is spent: the same document now routes home again
    // and answers first-try.
    let again = post_schedule(addr, &poisoned);
    assert_eq!(again.status, 200);
    assert_eq!(again.header("X-Fleet-Worker"), Some("0"));
    assert_eq!(fleet.status().retries, 1, "no further retries");
    fleet.shutdown();
}

// ------------------------------------------------- wedged worker breaker

#[test]
fn stalled_worker_trips_the_breaker_and_is_restarted() {
    // Worker 0's first incarnation stalls every schedule response past the
    // router's per-attempt budget; its restarted incarnation is healthy.
    let faults: SlotFaults = Arc::new(|slot, attempt| {
        if slot == 0 && attempt == 0 {
            FaultPlane::armed([
                FaultRule::always(FaultSite::ConnStall).latency(Duration::from_millis(800))
            ])
        } else {
            FaultPlane::disarmed()
        }
    });
    let cfg = FleetConfig {
        upstream_timeout: Duration::from_millis(200),
        ..fast_fleet_config(3)
    };
    let fleet = boot(cfg, Some(faults));
    let addr = fleet.local_addr();
    let body = body_homing_on(0, 3);

    // Two exchanges against the wedged worker: both still answer 200 via
    // failover, and together they trip the breaker (threshold 2).
    for _ in 0..2 {
        let resp = post_schedule(addr, &body);
        assert_eq!(resp.status, 200, "failover hides the wedge: {}", resp.body);
        assert_ne!(resp.header("X-Fleet-Worker"), Some("0"));
    }

    // The monitor kills the wedged incarnation and brings up a healthy
    // one; the fleet returns to fully ready.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s = fleet.status();
        if s.workers[0].restarts >= 1 && s.ready {
            break;
        }
        assert!(Instant::now() < deadline, "worker 0 never restarted: {s:?}");
        std::thread::sleep(Duration::from_millis(30));
    }

    // Home routing resumes on the healthy incarnation.
    let resp = post_schedule(addr, &body);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("X-Fleet-Worker"), Some("0"));
    fleet.shutdown();
}

// --------------------------------------------------- kill -9 drill

#[test]
fn killed_worker_loses_no_requests_and_respawns() {
    let fleet = boot(fast_fleet_config(3), None);
    let addr = fleet.local_addr();
    let bodies: Vec<String> = (0..3).map(|t| body_homing_on(t, 3)).collect();

    let mut answered = 0u32;
    for round in 0..10 {
        if round == 3 {
            assert!(fleet.kill_worker(1), "worker 1 was live to kill");
        }
        for body in &bodies {
            let resp = post_schedule(addr, body);
            // Zero loss: every accepted request is answered exactly once —
            // served by a survivor or (never here, with two live workers
            // and budget 2) a typed 503.
            assert_eq!(resp.status, 200, "{}", resp.body);
            answered += 1;
        }
    }
    assert_eq!(answered, 30);

    // The dead worker respawns with backoff and the fleet heals.
    assert!(
        fleet.wait_ready(Duration::from_secs(20)),
        "fleet must return to ready after the kill"
    );
    let status = fleet.status();
    assert!(status.workers[1].restarts >= 1, "{status:?}");
    assert_eq!(status.unavailable, 0);
    fleet.shutdown();
}

// --------------------------------------------------------- drain cycle

#[test]
fn drain_restarts_one_worker_without_dropping_the_fleet() {
    let fleet = boot(fast_fleet_config(3), None);
    let addr = fleet.local_addr();
    assert_eq!(readyz_status(addr), 200);

    let drained = request(addr, "POST", "/v1/fleet/drain/2", "");
    assert_eq!(drained.status, 200, "{}", drained.body);

    // While worker 2 cycles, /readyz reports the partial fleet…
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let code = readyz_status(addr);
        if code == 503 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "/readyz never reported the drain"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // …but requests keep answering: worker 2's slice fails over.
    let resp = post_schedule(addr, &body_homing_on(2, 3));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_ne!(resp.header("X-Fleet-Worker"), Some("2"));

    // The drained worker comes back and readiness recovers.
    assert!(
        fleet.wait_ready(Duration::from_secs(20)),
        "fleet must return to ready after the drain"
    );
    assert_eq!(readyz_status(addr), 200);
    let status = fleet.status();
    assert_eq!(status.workers[2].drains, 1);
    assert_eq!(status.unavailable, 0);

    // Refusals are typed: an out-of-range slot conflicts, a non-numeric
    // one is a bad request.
    let missing = request(addr, "POST", "/v1/fleet/drain/9", "");
    assert_eq!(missing.status, 409, "{}", missing.body);
    assert!(missing.body.contains("drain_rejected"), "{}", missing.body);
    let garbled = request(addr, "POST", "/v1/fleet/drain/nope", "");
    assert_eq!(garbled.status, 400, "{}", garbled.body);
    fleet.shutdown();
}

// ------------------------------------------------ retry budget spent

#[test]
fn unavailable_is_typed_when_every_worker_is_down() {
    let cfg = FleetConfig {
        backoff_base: Duration::from_secs(3),
        ..fast_fleet_config(1)
    };
    let fleet = boot(cfg, None);
    let addr = fleet.local_addr();
    let body = body_homing_on(0, 1);
    assert_eq!(post_schedule(addr, &body).status, 200);

    assert!(fleet.kill_worker(0));
    // The lone worker is down and backoff holds it there: the retry
    // budget is unspendable, so the client gets the typed 503 — never a
    // dropped or hung connection.
    let resp = post_schedule(addr, &body);
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("upstream_unavailable"), "{}", resp.body);
    assert!(fleet.status().unavailable >= 1);

    // Health stays answerable throughout, readiness reports the hole.
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
    assert_eq!(readyz_status(addr), 503);

    // Backoff elapses, the worker respawns, service resumes.
    assert!(
        fleet.wait_ready(Duration::from_secs(20)),
        "fleet must heal after backoff"
    );
    assert_eq!(post_schedule(addr, &body).status, 200);
    fleet.shutdown();
}
