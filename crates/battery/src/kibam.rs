//! KiBaM — the Kinetic Battery Model (Manwell & McGowan).
//!
//! A two-well model: charge is split between an *available* well (fraction
//! `c`) that feeds the load directly and a *bound* well that trickles into
//! the available well at rate `k'` proportional to the head difference.
//! KiBaM exhibits both the rate-capacity effect (heavy loads drain the
//! available well faster than the bound well refills it) and the recovery
//! effect (the wells re-equilibrate at rest), making it an independent
//! cross-check on [`crate::rv::RvModel`] — in fact the RV diffusion model is
//! known to subsume KiBaM as a first-order approximation.
//!
//! The state is integrated per profile interval with an exact closed-form
//! solution of the two-well ODE (no numeric drift):
//!
//! ```text
//! y1' = −I + k (h2 − h1),   y2' = −k (h2 − h1)
//! h1 = y1 / c,  h2 = y2 / (1 − c)
//! ```

use crate::model::BatteryModel;
use crate::profile::LoadProfile;
use crate::units::{MilliAmpMinutes, Minutes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`KibamModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KibamError {
    /// `c` must lie strictly between 0 and 1.
    InvalidCapacityFraction,
    /// `k` must be positive and finite.
    InvalidRate,
    /// Capacity must be positive and finite.
    InvalidCapacity,
}

impl fmt::Display for KibamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidCapacityFraction => write!(f, "capacity fraction c must be in (0, 1)"),
            Self::InvalidRate => write!(f, "rate constant k must be positive and finite"),
            Self::InvalidCapacity => write!(f, "capacity must be positive and finite"),
        }
    }
}

impl std::error::Error for KibamError {}

/// Kinetic battery model with capacity fraction `c`, rate constant `k`
/// (1/min) and total capacity `alpha`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KibamModel {
    c: f64,
    k: f64,
    alpha: MilliAmpMinutes,
}

/// Two-well state: `(available y1, bound y2)` in mA·min.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wells {
    y1: f64,
    y2: f64,
}

impl KibamModel {
    /// Creates a KiBaM with available-charge fraction `c ∈ (0,1)`, diffusion
    /// rate `k > 0` (per minute) and rated capacity `alpha`.
    ///
    /// # Errors
    ///
    /// One of [`KibamError`]'s variants when a parameter is out of range.
    pub fn new(c: f64, k: f64, alpha: MilliAmpMinutes) -> Result<Self, KibamError> {
        if !(c.is_finite() && c > 0.0 && c < 1.0) {
            return Err(KibamError::InvalidCapacityFraction);
        }
        if !(k.is_finite() && k > 0.0) {
            return Err(KibamError::InvalidRate);
        }
        if !(alpha.is_finite() && alpha.value() > 0.0) {
            return Err(KibamError::InvalidCapacity);
        }
        Ok(Self { c, k, alpha })
    }

    /// Capacity fraction `c`.
    pub fn capacity_fraction(&self) -> f64 {
        self.c
    }

    /// Rate constant `k` (1/min).
    pub fn rate(&self) -> f64 {
        self.k
    }

    /// Rated capacity `alpha`.
    pub fn capacity(&self) -> MilliAmpMinutes {
        self.alpha
    }

    /// Integrates the two-well ODE from `wells` for `dt` minutes under
    /// constant current `i`. Exact solution via the substitution
    /// `δ = h1 − h2`, which obeys `δ' = −k' δ − I/c` with
    /// `k' = k (1/c + 1/(1−c))`.
    fn step(&self, wells: Wells, i: f64, dt: f64) -> Wells {
        let c = self.c;
        let kp = self.k * (1.0 / c + 1.0 / (1.0 - c));
        let h1 = wells.y1 / c;
        let h2 = wells.y2 / (1.0 - c);
        let delta0 = h1 - h2;
        // δ(t) = (δ0 + I/(c·k')) e^{−k' t} − I/(c·k')
        let forced = i / (c * kp);
        let delta_t = (delta0 + forced) * (-kp * dt).exp() - forced;
        // Total charge just integrates the load.
        let total = wells.y1 + wells.y2 - i * dt;
        // Recover y1, y2 from total and head difference:
        // y1 = c·(total + (1−c)·δ), y2 = (1−c)·(total − c·δ).
        let y1 = c * (total + (1.0 - c) * delta_t);
        let y2 = (1.0 - c) * (total - c * delta_t);
        Wells { y1, y2 }
    }

    /// Runs the profile until `at`, returning the wells at that instant.
    fn wells_at(&self, profile: &LoadProfile, at: Minutes) -> Wells {
        let a = self.alpha.value();
        let mut wells = Wells {
            y1: self.c * a,
            y2: (1.0 - self.c) * a,
        };
        let t_end = at.value();
        let mut clock = 0.0;
        for iv in profile.intervals() {
            let start = iv.start.value();
            if start >= t_end {
                break;
            }
            if start > clock {
                // Rest gap before this interval.
                let dt = (start - clock).min(t_end - clock);
                wells = self.step(wells, 0.0, dt);
                clock += dt;
                if clock >= t_end {
                    return wells;
                }
            }
            let dt = (iv.end().value().min(t_end) - start).max(0.0);
            wells = self.step(wells, iv.current.value(), dt);
            clock = start + dt;
        }
        if t_end > clock {
            wells = self.step(wells, 0.0, t_end - clock);
        }
        wells
    }

    /// Available-well head `h1` at `at`, normalised so that a fresh battery
    /// reads `alpha` and a dead one reads 0.
    pub fn available_head(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        MilliAmpMinutes::new(self.wells_at(profile, at).y1 / self.c)
    }
}

impl BatteryModel for KibamModel {
    /// Apparent charge := `alpha − h1` — hits `alpha` exactly when the
    /// available well empties, which is KiBaM's death condition.
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        self.alpha - self.available_head(profile, at)
    }

    fn name(&self) -> &'static str {
        "kibam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MilliAmps;

    fn model() -> KibamModel {
        KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(10_000.0)).unwrap()
    }

    fn min(v: f64) -> Minutes {
        Minutes::new(v)
    }
    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    #[test]
    fn constructor_validates() {
        let cap = MilliAmpMinutes::new(100.0);
        assert!(KibamModel::new(0.0, 0.1, cap).is_err());
        assert!(KibamModel::new(1.0, 0.1, cap).is_err());
        assert!(KibamModel::new(0.5, 0.0, cap).is_err());
        assert!(KibamModel::new(0.5, 0.1, MilliAmpMinutes::ZERO).is_err());
        assert!(KibamModel::new(0.5, 0.1, cap).is_ok());
    }

    #[test]
    fn fresh_battery_reads_zero_apparent_charge() {
        let m = model();
        let p = LoadProfile::new();
        assert!(m.apparent_charge(&p, Minutes::ZERO).value().abs() < 1e-9);
    }

    #[test]
    fn charge_conservation() {
        // Total well content must equal alpha − delivered charge.
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(100.0)), (min(5.0), ma(300.0))]).unwrap();
        let wells = m.wells_at(&p, p.end());
        let total = wells.y1 + wells.y2;
        let expect = m.capacity().value() - p.direct_charge().value();
        assert!((total - expect).abs() < 1e-6, "total {total} vs {expect}");
    }

    #[test]
    fn apparent_exceeds_direct_under_load() {
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let apparent = m.apparent_charge(&p, p.end()).value();
        assert!(apparent > p.direct_charge().value());
    }

    #[test]
    fn recovery_during_rest() {
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let at_end = m.apparent_charge(&p, min(10.0)).value();
        let rested = m.apparent_charge(&p, min(60.0)).value();
        assert!(rested < at_end, "rest must recover capacity");
        // Never below the delivered charge.
        assert!(rested >= p.direct_charge().value() - 1e-6);
    }

    #[test]
    fn equilibrium_long_after_load_equals_direct_charge() {
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let rested = m.apparent_charge(&p, min(10_000.0)).value();
        assert!((rested - p.direct_charge().value()).abs() < 1e-6);
    }

    #[test]
    fn order_sensitivity_matches_rv_intuition() {
        let m = model();
        let late = LoadProfile::from_steps([(min(20.0), ma(50.0)), (min(5.0), ma(500.0))]).unwrap();
        let early = late.reversed();
        let a = m.apparent_charge(&early, early.end()).value();
        let b = m.apparent_charge(&late, late.end()).value();
        assert!(a < b, "heavy-first {a} should beat heavy-last {b}");
    }

    #[test]
    fn lifetime_is_shorter_at_heavier_load() {
        let m = model();
        let cap = m.capacity();
        let heavy = LoadProfile::from_steps([(min(10_000.0), ma(500.0))]).unwrap();
        let light = LoadProfile::from_steps([(min(10_000.0), ma(100.0))]).unwrap();
        let lt_heavy = m.lifetime(&heavy, cap).unwrap().value();
        let lt_light = m.lifetime(&light, cap).unwrap().value();
        assert!(lt_heavy < lt_light);
        // Heavier-than-rated load dies before the ideal-battery prediction.
        assert!(lt_heavy < cap.value() / 500.0);
    }

    #[test]
    fn step_through_gap_equals_explicit_rest() {
        let m = model();
        let mut with_gap = LoadProfile::new();
        with_gap.push(min(5.0), ma(300.0)).unwrap();
        with_gap.push_rest(min(7.0)).unwrap();
        with_gap.push(min(5.0), ma(300.0)).unwrap();

        let mut explicit = LoadProfile::new();
        explicit.insert(min(0.0), min(5.0), ma(300.0)).unwrap();
        explicit.insert(min(12.0), min(5.0), ma(300.0)).unwrap();

        let a = m.apparent_charge(&with_gap, with_gap.end()).value();
        let b = m.apparent_charge(&explicit, explicit.end()).value();
        assert!((a - b).abs() < 1e-9);
    }
}
