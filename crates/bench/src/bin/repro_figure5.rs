//! Reproduces **Figure 5** of the paper: the robotic-arm-controller task
//! graph G2 and its design-point table, regenerated from the published
//! scaling rule and diffed against the published data. The DAG edges are a
//! documented reconstruction (the original figure is an image).

#![forbid(unsafe_code)]

use batsched_bench::Table;
use batsched_taskgraph::paper::{g2, g2_synthesized, G2_EDGES, G2_FACTORS, G2_FIGURE5};
use batsched_taskgraph::PointId;

fn main() {
    println!("== Figure 5: task graph G2 (robotic arm controller) ==");
    println!("synthesis rule: I[i][j] = round(I4_i · s_j^3), D[i][j] = round1(D4_i / s_j),");
    println!("scaling factors s = [2.5, 5/3, 1.25, 1] w.r.t. V4 = {G2_FACTORS:?}\n");

    let printed = g2();
    let synth = g2_synthesized();

    let mut t = Table::new(["Node", "DP1", "DP2", "DP3", "DP4"]);
    for (idx, (name, _)) in G2_FIGURE5.iter().enumerate() {
        let tid = batsched_taskgraph::TaskId(idx);
        let mut cells = vec![name.to_string()];
        for j in 0..4 {
            let p = synth.point(tid, PointId(j));
            cells.push(format!(
                "{:>4.0} mA {:>5.1} m",
                p.current.value(),
                p.duration.value()
            ));
        }
        t.row(cells);
    }
    print!("{}", t.render());

    let mut mismatches = 0;
    for tid in printed.task_ids() {
        for j in 0..4 {
            let a = printed.point(tid, PointId(j));
            let b = synth.point(tid, PointId(j));
            if (a.current.value() - b.current.value()).abs() > 1e-9
                || (a.duration.value() - b.duration.value()).abs() > 1e-9
            {
                mismatches += 1;
                println!("MISMATCH {} DP{}: {} vs {}", printed.name(tid), j + 1, a, b);
            }
        }
    }
    println!(
        "\nverdict: {} of 36 data cells match the published Figure 5 exactly",
        36 - mismatches
    );
    assert_eq!(mismatches, 0);

    println!("\nreconstructed precedence edges (ENTER -> N1, {{N8, N9}} -> EXIT):");
    for &(u, v) in &G2_EDGES {
        println!("  {} -> {}", G2_FIGURE5[u].0, G2_FIGURE5[v].0);
    }
    println!("\nGraphviz DOT (pipe into `dot -Tpng`):\n");
    print!("{}", batsched_taskgraph::io::to_dot(&printed));
}
