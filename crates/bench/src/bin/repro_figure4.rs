//! Reproduces **Figure 4** of the paper: the DPF worked example. Five tasks
//! T1..T5 with four design points; T5 and T4 are fixed, T3 is tagged at DP2,
//! T1 and T2 are free at DP4. The deadline forces the repair loop to promote
//! T1 twice (DP4 → DP3 → DP2, panels a→b→c), after which the paper computes
//! `DPF = 1/3` from `f = 1/3`, `x = 2`, `F2 = F4 = 1/2`.

#![forbid(unsafe_code)]

use batsched_battery::units::{MilliAmps, Minutes};
use batsched_core::search::diag_calculate_dpf;
use batsched_core::SchedulerConfig;
use batsched_taskgraph::{DesignPoint, TaskGraph, TaskId};

/// The same fixture as `batsched-core`'s unit tests: energies order the
/// energy vector as E = `[T3, T4, T5, T1, T2]` (the figure's E = `[3,4,5,1,2]`)
/// and each DP step costs 2 minutes, so a 26-minute deadline needs exactly
/// two promotions of T1.
fn figure4_graph() -> TaskGraph {
    let mut b = TaskGraph::builder();
    let rows: [(&str, f64); 5] = [
        ("T1", 400.0),
        ("T2", 500.0),
        ("T3", 100.0),
        ("T4", 200.0),
        ("T5", 300.0),
    ];
    for (name, i1) in rows {
        b.task(
            name,
            vec![
                DesignPoint::new(MilliAmps::new(i1), Minutes::new(2.0)),
                DesignPoint::new(MilliAmps::new(i1 * 0.5), Minutes::new(4.0)),
                DesignPoint::new(MilliAmps::new(i1 * 0.25), Minutes::new(6.0)),
                DesignPoint::new(MilliAmps::new(i1 * 0.12), Minutes::new(8.0)),
            ],
        );
    }
    b.build().expect("fixture is valid")
}

fn panel(title: &str, assign: &[usize], tagged: usize, fixed: &[bool]) {
    println!("{title}");
    for (pos, &col) in assign.iter().enumerate() {
        let marks: Vec<String> = (0..4)
            .map(|j| {
                if j == col {
                    format!("[DP{}]", j + 1)
                } else {
                    format!(" DP{} ", j + 1)
                }
            })
            .collect();
        let state = if pos == tagged {
            "tagged"
        } else if fixed[pos] {
            "fixed"
        } else {
            "free"
        };
        println!("  T{}  {}  ({state})", pos + 1, marks.join(" "));
    }
    println!();
}

fn main() {
    println!("== Figure 4: DPF calculation worked example ==\n");
    println!("E = [T3, T4, T5, T1, T2] (ascending average energy); window 1:4 (full);");
    println!("T5 fixed at DP4, T4 fixed at DP1, T3 tagged at DP2; deadline = 26 min.\n");

    let g = figure4_graph();
    let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
    let fixed = [false, false, true, true, true]; // positions (T3 tagged counts as fixed-in-E)

    panel(
        "(a) initial: T1, T2 free at DP4 (total 30 min > 26)",
        &[3, 3, 1, 0, 3],
        2,
        &fixed,
    );
    panel(
        "(b) repair: T1 promoted to DP3 (total 28 min > 26)",
        &[2, 3, 1, 0, 3],
        2,
        &fixed,
    );
    panel(
        "(c) repair: T1 promoted to DP2 (total 26 min <= 26, done)",
        &[1, 3, 1, 0, 3],
        2,
        &fixed,
    );

    let (enr, cif, dpf) = diag_calculate_dpf(
        &g,
        &SchedulerConfig::paper(),
        Minutes::new(26.0),
        &seq,
        &[3, 3, 1, 0, 3],
        &[TaskId(3), TaskId(4)],
        2,
        0,
    );
    println!("our CalculateDPF on state (a): DPF = {dpf:.6} (CIF = {cif:.3}, ENR = {enr:.3})");
    println!(
        "paper:                         DPF = 1/3 = {:.6}",
        1.0 / 3.0
    );
    assert!(
        (dpf - 1.0 / 3.0).abs() < 1e-12,
        "Figure 4 must reproduce exactly"
    );
    println!("\nverdict: EXACT (f = 1/3, two free tasks, F2 = 1/2 at weight 2)");
}
