//! Topological machinery: orders, ready lists, descendants.
//!
//! The paper's schedulers are all *list schedulers*: tasks execute strictly
//! sequentially, and whenever the machine is free the next task is picked
//! from the **ready list** (tasks whose parents have all completed) by some
//! weight rule. [`list_schedule`] captures that pattern once; every
//! sequencing strategy in the workspace is a weight function plugged into it.

use crate::graph::{TaskGraph, TaskId};

/// A deterministic topological order (Kahn's algorithm, smallest id first).
pub fn topological_order(g: &TaskGraph) -> Vec<TaskId> {
    list_schedule(g, |_, _| 0.0)
}

/// `true` iff `order` is a permutation of all tasks that respects every edge.
pub fn is_topological(g: &TaskGraph, order: &[TaskId]) -> bool {
    if order.len() != g.task_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.task_count()];
    for (i, &t) in order.iter().enumerate() {
        if t.index() >= g.task_count() || pos[t.index()] != usize::MAX {
            return false;
        }
        pos[t.index()] = i;
    }
    g.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

/// List scheduling: repeatedly pick the ready task with the **largest**
/// weight (ties broken by smallest task id, matching the paper's published
/// sequences). The weight function sees the graph and the candidate task.
pub fn list_schedule<W>(g: &TaskGraph, mut weight: W) -> Vec<TaskId>
where
    W: FnMut(&TaskGraph, TaskId) -> f64,
{
    let n = g.task_count();
    let mut indeg: Vec<usize> = g.task_ids().map(|t| g.preds(t).len()).collect();
    let mut ready: Vec<TaskId> = g.task_ids().filter(|t| indeg[t.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        // Select max weight, tie-break by smallest id.
        let mut best = 0usize;
        let mut best_w = weight(g, ready[0]);
        for (k, &t) in ready.iter().enumerate().skip(1) {
            let w = weight(g, t);
            if w > best_w || (w == best_w && t < ready[best]) {
                best = k;
                best_w = w;
            }
        }
        let t = ready.swap_remove(best);
        order.push(t);
        for &s in g.succs(t) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "graph validated as acyclic");
    order
}

/// The set of tasks in the subgraph rooted at `v` — `v` plus everything
/// reachable from it. Returned as a dense membership mask indexed by task id.
pub fn descendants_mask(g: &TaskGraph, v: TaskId) -> Vec<bool> {
    let mut mask = vec![false; g.task_count()];
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        if std::mem::replace(&mut mask[u.index()], true) {
            continue;
        }
        stack.extend_from_slice(g.succs(u));
    }
    mask
}

/// Transitive-closure matrix: `closure[u][v]` is `true` iff `v` is reachable
/// from `u` (including `u == v`). Intended for tests and small graphs.
pub fn transitive_closure(g: &TaskGraph) -> Vec<Vec<bool>> {
    g.task_ids().map(|t| descendants_mask(g, t)).collect()
}

/// Enumerates **all** topological orders, invoking `visit` on each, stopping
/// early once `limit` orders have been produced. Returns the number visited.
///
/// An in-place iterative generator driven by a sorted ready-candidate list:
/// each backtracking step touches only the chosen task and the successors it
/// released — O(width + out-degree) instead of the former O(n) full
/// `indeg` rescan per recursion level — and nothing is allocated per order
/// (the prefix, ready list and per-depth choice stack are reused
/// throughout). Enumeration order is unchanged: at every depth candidates
/// are tried in ascending task id, so callers that cap with `limit` or
/// tie-break by first-seen keep their exact results (the property suite
/// pins this against the retained reference).
///
/// Exponential in general — meant for the exhaustive baseline on graphs of
/// at most ~10 tasks.
pub fn for_each_topological_order<F>(g: &TaskGraph, limit: usize, mut visit: F) -> usize
where
    F: FnMut(&[TaskId]),
{
    let n = g.task_count();
    if limit == 0 {
        return 0;
    }
    if n == 0 {
        visit(&[]);
        return 1;
    }
    let mut indeg: Vec<usize> = g.task_ids().map(|t| g.preds(t).len()).collect();
    // Sorted ascending by id: `task_ids()` yields ascending, and every
    // insertion below goes through `insert_sorted`.
    let mut ready: Vec<TaskId> = g.task_ids().filter(|t| indeg[t.index()] == 0).collect();
    let mut prefix: Vec<TaskId> = Vec::with_capacity(n);
    // choice[depth]: index into `ready` of the task placed at that depth.
    let mut choice: Vec<usize> = Vec::with_capacity(n);
    let mut count = 0usize;
    let mut pos = 0usize;

    fn insert_sorted(ready: &mut Vec<TaskId>, t: TaskId) {
        let at = ready.partition_point(|&r| r < t);
        ready.insert(at, t);
    }

    loop {
        if pos < ready.len() {
            // Place the next candidate at the current depth.
            let t = ready.remove(pos);
            for &s in g.succs(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    insert_sorted(&mut ready, s);
                }
            }
            prefix.push(t);
            choice.push(pos);
            if prefix.len() == n {
                visit(&prefix);
                count += 1;
                if count >= limit {
                    return count;
                }
            } else {
                pos = 0;
                continue;
            }
        } else if prefix.is_empty() {
            return count;
        }
        // Backtrack: undo the deepest placement, resume at its successor
        // candidate. Removing the released successors restores `ready` to
        // exactly its pre-placement state, so re-inserting the task lands
        // it back at its recorded index.
        let t = prefix.pop().expect("backtrack only with a placed prefix");
        for &s in g.succs(t) {
            if indeg[s.index()] == 0 {
                let at = ready
                    .binary_search(&s)
                    .expect("released successor is in the ready list");
                ready.remove(at);
            }
            indeg[s.index()] += 1;
        }
        insert_sorted(&mut ready, t);
        pos = choice.pop().expect("choice stack mirrors the prefix") + 1;
    }
}

/// The retained pre-generator enumeration (recursive, O(n) ready scan per
/// level) — the equivalence reference for [`for_each_topological_order`]
/// and the bench baseline for `topo_orders_per_sec`.
#[doc(hidden)]
pub fn for_each_topological_order_reference<F>(g: &TaskGraph, limit: usize, mut visit: F) -> usize
where
    F: FnMut(&[TaskId]),
{
    let n = g.task_count();
    let mut indeg: Vec<usize> = g.task_ids().map(|t| g.preds(t).len()).collect();
    let mut prefix: Vec<TaskId> = Vec::with_capacity(n);
    let mut count = 0usize;

    fn recurse<F: FnMut(&[TaskId])>(
        g: &TaskGraph,
        indeg: &mut Vec<usize>,
        prefix: &mut Vec<TaskId>,
        count: &mut usize,
        limit: usize,
        visit: &mut F,
    ) {
        if *count >= limit {
            return;
        }
        if prefix.len() == g.task_count() {
            visit(prefix);
            *count += 1;
            return;
        }
        for t in g.task_ids() {
            if indeg[t.index()] == 0 {
                // Claim t.
                indeg[t.index()] = usize::MAX;
                for &s in g.succs(t) {
                    indeg[s.index()] -= 1;
                }
                prefix.push(t);
                recurse(g, indeg, prefix, count, limit, visit);
                prefix.pop();
                for &s in g.succs(t) {
                    indeg[s.index()] += 1;
                }
                indeg[t.index()] = 0;
                if *count >= limit {
                    return;
                }
            }
        }
    }

    recurse(g, &mut indeg, &mut prefix, &mut count, limit, &mut visit);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;
    use batsched_battery::units::{MilliAmps, Minutes};

    fn dp2() -> Vec<DesignPoint> {
        vec![
            DesignPoint::new(MilliAmps::new(100.0), Minutes::new(1.0)),
            DesignPoint::new(MilliAmps::new(40.0), Minutes::new(2.0)),
        ]
    }

    /// A -> {B, C} -> D
    fn diamond() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.task("A", dp2());
        let x = b.task("B", dp2());
        let y = b.task("C", dp2());
        let z = b.task("D", dp2());
        b.edge(a, x).edge(a, y);
        b.parents(z, [x, y]);
        b.build().unwrap()
    }

    #[test]
    fn topological_order_is_valid() {
        let g = diamond();
        let order = topological_order(&g);
        assert!(is_topological(&g, &order));
        assert_eq!(order[0], TaskId(0));
        assert_eq!(order[3], TaskId(3));
    }

    #[test]
    fn is_topological_rejects_bad_orders() {
        let g = diamond();
        // D before its parents.
        assert!(!is_topological(
            &g,
            &[TaskId(0), TaskId(3), TaskId(1), TaskId(2)]
        ));
        // Missing tasks.
        assert!(!is_topological(&g, &[TaskId(0), TaskId(1)]));
        // Duplicates.
        assert!(!is_topological(
            &g,
            &[TaskId(0), TaskId(1), TaskId(1), TaskId(3)]
        ));
        // Out-of-range id.
        assert!(!is_topological(
            &g,
            &[TaskId(0), TaskId(1), TaskId(9), TaskId(3)]
        ));
    }

    #[test]
    fn list_schedule_honours_weights() {
        let g = diamond();
        // Prefer C (id 2) over B (id 1).
        let order = list_schedule(&g, |_, t| if t == TaskId(2) { 10.0 } else { 1.0 });
        assert_eq!(order, vec![TaskId(0), TaskId(2), TaskId(1), TaskId(3)]);
    }

    #[test]
    fn list_schedule_breaks_ties_by_id() {
        let g = diamond();
        let order = list_schedule(&g, |_, _| 1.0);
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn descendants_include_self_and_all_reachable() {
        let g = diamond();
        let mask = descendants_mask(&g, TaskId(1));
        assert_eq!(mask, vec![false, true, false, true]);
        let root = descendants_mask(&g, TaskId(0));
        assert!(root.iter().all(|&b| b));
    }

    #[test]
    fn closure_matches_descendants() {
        let g = diamond();
        let cl = transitive_closure(&g);
        for t in g.task_ids() {
            assert_eq!(cl[t.index()], descendants_mask(&g, t));
        }
    }

    #[test]
    fn diamond_has_two_topological_orders() {
        let g = diamond();
        let mut seen = Vec::new();
        let n = for_each_topological_order(&g, 100, |o| seen.push(o.to_vec()));
        assert_eq!(n, 2);
        assert!(seen.iter().all(|o| is_topological(&g, o)));
        assert_ne!(seen[0], seen[1]);
    }

    #[test]
    fn generator_matches_reference_order_and_count() {
        // Diamond, a chain-of-diamonds, and an antichain: the in-place
        // generator must visit the same orders in the same sequence as the
        // retained recursive reference, under every limit.
        let graphs = [diamond(), {
            let mut b = TaskGraph::builder();
            let ids: Vec<TaskId> = (0..7).map(|i| b.task(format!("T{i}"), dp2())).collect();
            b.edge(ids[0], ids[1])
                .edge(ids[0], ids[2])
                .edge(ids[1], ids[3])
                .edge(ids[2], ids[3])
                .edge(ids[3], ids[4]);
            // ids[5], ids[6] independent.
            b.build().unwrap()
        }];
        for g in &graphs {
            for limit in [0, 1, 3, 10, usize::MAX] {
                let mut fast = Vec::new();
                let nf = for_each_topological_order(g, limit, |o| fast.push(o.to_vec()));
                let mut slow = Vec::new();
                let ns = for_each_topological_order_reference(g, limit, |o| slow.push(o.to_vec()));
                assert_eq!(nf, ns, "limit {limit}");
                assert_eq!(fast, slow, "limit {limit}");
            }
        }
    }

    #[test]
    fn generator_handles_edges_to_smaller_ids() {
        // Successors with ids below their predecessor exercise the sorted
        // re-insertion path of the ready list.
        let mut b = TaskGraph::builder();
        let a = b.task("A", dp2());
        let x = b.task("B", dp2());
        let y = b.task("C", dp2());
        b.edge(y, x).edge(y, a);
        let g = b.build().unwrap();
        let mut fast = Vec::new();
        for_each_topological_order(&g, usize::MAX, |o| fast.push(o.to_vec()));
        let mut slow = Vec::new();
        for_each_topological_order_reference(&g, usize::MAX, |o| slow.push(o.to_vec()));
        assert_eq!(fast, slow);
        assert!(fast.iter().all(|o| is_topological(&g, o)));
        assert_eq!(fast.len(), 2); // C first, then A/B in either order
    }

    #[test]
    fn order_enumeration_respects_limit() {
        // An antichain of 6 independent tasks has 720 orders; cap at 10.
        let mut b = TaskGraph::builder();
        for i in 0..6 {
            b.task(format!("T{i}"), dp2());
        }
        let g = b.build().unwrap();
        let n = for_each_topological_order(&g, 10, |_| {});
        assert_eq!(n, 10);
    }
}
