//! Deadline-sweep curves: σ vs deadline for every algorithm on G2 and G3 —
//! the continuous version of Table 4's three-point comparison. Prints a
//! human table and emits CSV (stdout, after the marker line) suitable for
//! plotting the crossover behaviour.

#![forbid(unsafe_code)]

use batsched_baselines::{
    ChowdhuryScaling, KhanVemuri, RakhmatovDp, Scheduler, SimulatedAnnealing,
};
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_bench::Table;
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::paper::{g2, g3};
use batsched_taskgraph::TaskGraph;

fn sweep(name: &str, g: &TaskGraph, points: usize, csv: &mut String) {
    let model = RvModel::date05();
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(KhanVemuri::paper()),
        Box::new(RakhmatovDp::default()),
        Box::new(ChowdhuryScaling),
        Box::new(SimulatedAnnealing {
            steps: 5_000,
            ..Default::default()
        }),
    ];
    let lo = min_makespan(g).value();
    let hi = max_makespan(g).value();

    println!("== {name}: sigma (mA·min) vs deadline ==\n");
    let mut header = vec!["deadline".to_string()];
    header.extend(algos.iter().map(|a| a.name().to_string()));
    let mut t = Table::new(header.clone());
    for k in 1..=points {
        let d = lo + (hi * 1.05 - lo) * k as f64 / points as f64;
        let mut row = vec![format!("{d:.1}")];
        let mut csv_row = vec![name.to_string(), format!("{d:.3}")];
        for a in &algos {
            match a.schedule(g, Minutes::new(d)) {
                Ok(s) => {
                    let c = s.battery_cost(g, &model).value();
                    row.push(format!("{c:.0}"));
                    csv_row.push(format!("{c:.1}"));
                }
                Err(_) => {
                    row.push("-".into());
                    csv_row.push("".into());
                }
            }
        }
        t.row(row);
        csv.push_str(&csv_row.join(","));
        csv.push('\n');
    }
    print!("{}", t.render());
    println!();
}

fn main() {
    let mut csv = String::from("graph,deadline,khan_vemuri,rakhmatov_dp,chowdhury,annealing\n");
    sweep("G2", &g2(), 10, &mut csv);
    sweep("G3", &g3(), 10, &mut csv);
    println!("--- CSV ---");
    print!("{csv}");
}
