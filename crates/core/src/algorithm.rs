//! The top-level iterative driver: `BatteryAwareSQNDPAllocation` (Fig. 1).
//!
//! Each iteration (a) finds the cheapest windowed design-point assignment
//! for the current sequence, (b) derives an improved sequence from that
//! assignment via subtree-current weights, and (c) terminates as soon as an
//! iteration fails to improve on the previous one. Every iteration is fully
//! recorded so the paper's Tables 2 and 3 can be regenerated from the trace.

use crate::config::SchedulerConfig;
use crate::error::SchedulerError;
use crate::schedule::Schedule;
use crate::search::{evaluate_windows, EvalBuffers, SearchContext, WindowRecord};
use crate::sequence::{initial_sequence, weighted_sequence};
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Everything that happened in one outer iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// The sequence this iteration evaluated windows for (the paper's `Sk`).
    pub sequence: Vec<TaskId>,
    /// One record per window evaluated, in evaluation order (narrowest
    /// feasible window first, widening to the full matrix).
    pub windows: Vec<WindowRecord>,
    /// Index into [`Self::windows`] of the cheapest window.
    pub best_window: usize,
    /// Task-indexed assignment of the cheapest window (the iteration's `S`).
    pub assignment: Vec<PointId>,
    /// The improved sequence derived from `assignment` (the paper's `Skw`).
    pub weighted_sequence: Vec<TaskId>,
    /// Battery cost of running `weighted_sequence` under `assignment`.
    pub weighted_cost: MilliAmpMinutes,
    /// Makespan of `weighted_sequence` under `assignment` (order-invariant,
    /// equals the best window's makespan; recorded for table completeness).
    pub weighted_makespan: Minutes,
    /// The iteration's `MinBCost`: min of the best window cost and
    /// `weighted_cost`.
    pub min_cost: MilliAmpMinutes,
}

impl IterationRecord {
    /// Cost of the best window (before the weighted-sequence comparison).
    pub fn best_window_cost(&self) -> MilliAmpMinutes {
        self.windows[self.best_window].cost
    }
}

/// The scheduler's result: the best schedule found plus the full iteration
/// trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Best (sequence, assignment) pair encountered anywhere in the run.
    pub schedule: Schedule,
    /// Its battery cost σ (mA·min).
    pub cost: MilliAmpMinutes,
    /// Its makespan (minutes).
    pub makespan: Minutes,
    /// Number of outer iterations executed.
    pub iterations: usize,
    /// Per-iteration records (Tables 2 and 3 regenerate from this).
    pub trace: Vec<IterationRecord>,
}

/// Reusable cross-run solver state: the σ-engine scratch, entry-id
/// buffers, and the window search's working set (the incremental-DPF
/// repair journal and `ChooseDesignPoints` assignment buffers) one worker
/// carries from one scheduling run to the next.
///
/// A fresh [`schedule`] call allocates these buffers internally; services
/// that answer many requests on long-lived worker threads should hold one
/// `SolverWorkspace` per worker and call [`schedule_in`], which keeps the
/// hot path allocation-free *across* requests — the buffers grow to the
/// largest instance seen and are reused verbatim afterwards (the σ scratch
/// detects evaluator changes and rebinds itself safely).
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    buffers: EvalBuffers,
    /// Cached refinement engine with the model it was built for — reused
    /// across [`refine_schedule_in`](crate::refine::refine_schedule_in)
    /// calls while the graph catalogue and model stay the same, so a
    /// worker refining a stream of requests on one graph pays the engine's
    /// `entries × terms` exponentials once, and its probe scratch stays
    /// warm across calls instead of being re-warmed per sequence.
    refine: Option<(batsched_battery::rv::RvModel, crate::schedule::EngineCost)>,
}

impl SolverWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached refinement engine for `(g, model)`, rebuilding it only
    /// when the catalogue or model changed since the last call.
    pub(crate) fn refine_engine(
        &mut self,
        g: &TaskGraph,
        model: &batsched_battery::rv::RvModel,
    ) -> &mut crate::schedule::EngineCost {
        let reuse = self
            .refine
            .as_ref()
            .is_some_and(|(m, e)| m == model && e.catalogue_matches(g));
        if !reuse {
            self.refine = Some((model.clone(), crate::schedule::EngineCost::new(g, model)));
        }
        &mut self.refine.as_mut().expect("just ensured").1
    }

    /// Disables the window sweep's cross-row / cross-window carry — the
    /// bench-only baseline switch (see
    /// [`EvalBuffers::disable_sweep_carry`]).
    #[doc(hidden)]
    pub fn disable_sweep_carry(&mut self) {
        self.buffers.disable_sweep_carry();
    }

    /// Snapshot of the cumulative solver-phase counters
    /// ([`crate::prof::Prof`]) accumulated by every run through this
    /// workspace. Serving workers snapshot before and after a request and
    /// diff with [`crate::prof::Prof::since`] to attribute work
    /// per-request.
    pub fn prof(&self) -> crate::prof::Prof {
        self.buffers.prof()
    }
}

/// Runs the paper's full algorithm on `g` with deadline `deadline`.
///
/// # Errors
///
/// * [`SchedulerError::InvalidDeadline`] / [`SchedulerError::InvalidConfig`]
///   for bad inputs;
/// * [`SchedulerError::DeadlineInfeasible`] when even the fastest design
///   points cannot meet the deadline (the paper's exit-with-error case).
///
/// # Examples
///
/// ```
/// use batsched_core::{schedule, SchedulerConfig};
/// use batsched_taskgraph::paper;
/// use batsched_battery::units::Minutes;
///
/// let g = paper::g3();
/// let sol = schedule(&g, Minutes::new(230.0), &SchedulerConfig::paper())?;
/// assert!(sol.makespan.value() <= 230.0);
/// sol.schedule.validate(&g, Some(Minutes::new(230.0))).unwrap();
/// # Ok::<(), batsched_core::SchedulerError>(())
/// ```
pub fn schedule(
    g: &TaskGraph,
    deadline: Minutes,
    config: &SchedulerConfig,
) -> Result<Solution, SchedulerError> {
    schedule_in(g, deadline, config, &mut SolverWorkspace::new())
}

/// [`schedule`] with caller-owned buffers: identical results, but the
/// evaluation scratch lives in `ws` and is reused across calls. This is the
/// entry point for request-serving workers (see [`SolverWorkspace`]).
///
/// # Errors
///
/// Exactly the errors of [`schedule`].
pub fn schedule_in(
    g: &TaskGraph,
    deadline: Minutes,
    config: &SchedulerConfig,
    ws: &mut SolverWorkspace,
) -> Result<Solution, SchedulerError> {
    config.validate()?;
    if !(deadline.is_finite() && deadline.value() > 0.0) {
        return Err(SchedulerError::InvalidDeadline { deadline });
    }
    let model = config.battery_model()?;
    let ctx = SearchContext::new(g, config, deadline, model);
    let buffers = &mut ws.buffers;

    let mut seq = initial_sequence(g, config.initial_weight, config.metric);
    let mut prev_iter_cost = f64::INFINITY;
    let mut best: Option<(Vec<TaskId>, Vec<PointId>, f64, f64)> = None;
    let mut trace: Vec<IterationRecord> = Vec::new();

    for _ in 0..config.max_iterations {
        let (windows, best_idx) = evaluate_windows(&ctx, &seq, buffers)?;
        let assignment = windows[best_idx].assignment.clone();
        let mut min_cost = windows[best_idx].cost.value();
        let mut iter_best_seq = &seq;
        let mut iter_makespan = windows[best_idx].makespan.value();

        let wseq = weighted_sequence(g, &assignment);
        let (wcost, wmk) = ctx.cost_of(&wseq, &assignment, buffers);
        if wcost.value() < min_cost {
            min_cost = wcost.value();
            iter_best_seq = &wseq;
            iter_makespan = wmk.value();
        }

        if best.as_ref().is_none_or(|&(_, _, c, _)| min_cost < c) {
            best = Some((
                iter_best_seq.clone(),
                assignment.clone(),
                min_cost,
                iter_makespan,
            ));
        }

        trace.push(IterationRecord {
            sequence: seq.clone(),
            windows,
            best_window: best_idx,
            assignment,
            weighted_sequence: wseq.clone(),
            weighted_cost: wcost,
            weighted_makespan: wmk,
            min_cost: MilliAmpMinutes::new(min_cost),
        });

        // Termination: no improvement over the previous iteration.
        if min_cost >= prev_iter_cost {
            break;
        }
        prev_iter_cost = min_cost;
        seq = wseq;
    }

    let (order, assignment, cost, makespan) =
        best.expect("max_iterations >= 1 guarantees one iteration ran");
    Ok(Solution {
        schedule: Schedule::new(order, assignment),
        cost: MilliAmpMinutes::new(cost),
        makespan: Minutes::new(makespan),
        iterations: trace.len(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_taskgraph::paper::{g2, g3, G3_EXAMPLE_DEADLINE};

    fn paper_cfg() -> SchedulerConfig {
        SchedulerConfig::paper()
    }

    #[test]
    fn g3_paper_run_is_valid_and_converges() {
        let g = g3();
        let sol = schedule(&g, Minutes::new(G3_EXAMPLE_DEADLINE), &paper_cfg()).unwrap();
        sol.schedule
            .validate(&g, Some(Minutes::new(G3_EXAMPLE_DEADLINE)))
            .unwrap();
        assert!(sol.iterations >= 2, "needs at least one improvement check");
        assert!(sol.iterations <= 10, "paper observed 4 iterations");
        // Trajectory of iteration minima is non-increasing until the last.
        for w in sol.trace.windows(2) {
            assert!(
                w[1].min_cost.value() >= 0.0 && w[0].min_cost.value() + 1e9 > w[1].min_cost.value()
            );
        }
        // Final cost equals the smallest min_cost in the trace.
        let best_in_trace = sol
            .trace
            .iter()
            .map(|r| r.min_cost.value())
            .fold(f64::INFINITY, f64::min);
        assert!((sol.cost.value() - best_in_trace).abs() < 1e-9);
    }

    #[test]
    fn g3_iteration1_window45_reproduces_table3_exactly() {
        // Table 3, row S1, column "Win 4:5": σ = 16353 mA·min, Δ = 228.3 min
        // — reproduced exactly (our wider windows differ in under-specified
        // tie-breaks and land *cheaper*, so the best window may be another;
        // see EXPERIMENTS.md).
        let g = g3();
        let sol = schedule(&g, Minutes::new(G3_EXAMPLE_DEADLINE), &paper_cfg()).unwrap();
        let it1 = &sol.trace[0];
        assert_eq!(it1.windows.len(), 4, "windows 4:5 down to 1:5");
        let win45 = it1
            .windows
            .iter()
            .find(|w| w.label(5) == "4:5")
            .expect("window 4:5 is evaluated first");
        assert!(
            (win45.cost.value() - 16353.0).abs() < 1.0,
            "published σ for S1/Win 4:5, got {}",
            win45.cost
        );
        assert!(
            (win45.makespan.value() - 228.3).abs() < 1e-6,
            "published Δ for S1/Win 4:5, got {}",
            win45.makespan
        );
        // Every window beats or ties the paper's published S1 minimum.
        let best = &it1.windows[it1.best_window];
        assert!(best.cost.value() <= 16353.0 + 1.0);
    }

    #[test]
    fn deadline_errors() {
        let g = g2();
        assert!(matches!(
            schedule(&g, Minutes::new(-5.0), &paper_cfg()),
            Err(SchedulerError::InvalidDeadline { .. })
        ));
        assert!(matches!(
            schedule(&g, Minutes::new(f64::NAN), &paper_cfg()),
            Err(SchedulerError::InvalidDeadline { .. })
        ));
        // Fastest G2 makespan is 42.2 min.
        assert!(matches!(
            schedule(&g, Minutes::new(40.0), &paper_cfg()),
            Err(SchedulerError::DeadlineInfeasible { .. })
        ));
    }

    #[test]
    fn g2_all_table4_deadlines_schedule_cleanly() {
        let g = g2();
        let mut prev = f64::INFINITY;
        for d in batsched_taskgraph::paper::G2_TABLE4_DEADLINES {
            let sol = schedule(&g, Minutes::new(d), &paper_cfg()).unwrap();
            sol.schedule.validate(&g, Some(Minutes::new(d))).unwrap();
            assert!(
                sol.cost.value() < prev,
                "looser deadlines must cost no more battery: {} at d={d}",
                sol.cost
            );
            prev = sol.cost.value();
        }
    }

    #[test]
    fn tight_deadline_forces_fast_points() {
        let g = g2();
        // At exactly the fastest makespan, every task must run at DP1 —
        // except where equal-duration ties allow otherwise; check makespan.
        let sol = schedule(&g, Minutes::new(42.2), &paper_cfg()).unwrap();
        assert!((sol.makespan.value() - 42.2).abs() < 1e-6);
    }

    #[test]
    fn workspace_reuse_across_instances_is_bit_identical() {
        // One long-lived workspace answering alternating instances (the
        // service-worker pattern) must match fresh-buffer runs exactly.
        let mut ws = SolverWorkspace::new();
        let cfg = paper_cfg();
        let ga = g2();
        let gb = g3();
        let a1 = schedule_in(&ga, Minutes::new(75.0), &cfg, &mut ws).unwrap();
        let b1 = schedule_in(&gb, Minutes::new(230.0), &cfg, &mut ws).unwrap();
        let a2 = schedule_in(&ga, Minutes::new(75.0), &cfg, &mut ws).unwrap();
        assert_eq!(a1, schedule(&ga, Minutes::new(75.0), &cfg).unwrap());
        assert_eq!(b1, schedule(&gb, Minutes::new(230.0), &cfg).unwrap());
        assert_eq!(a1, a2);
    }

    #[test]
    fn solution_serialises() {
        let g = g2();
        let sol = schedule(&g, Minutes::new(75.0), &paper_cfg()).unwrap();
        let json = serde_json::to_string(&sol).unwrap();
        let back: Solution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sol);
    }
}
