//! The incremental σ-evaluation engine.
//!
//! Every scheduler in this workspace spends its time evaluating the
//! Rakhmatov–Vrudhula cost σ of candidate schedules. The naive path builds
//! a [`LoadProfile`](crate::profile::LoadProfile) and calls
//! [`RvModel::sigma`](crate::rv::RvModel::sigma), which computes
//! `K · M` exponentials per evaluation (K intervals, M series terms).
//! [`SigmaEvaluator`] removes *all* exponentials from the hot loop:
//!
//! 1. **Suffix form.** For a contiguous schedule evaluated at its end `T`,
//!    each interval's series term depends only on the *time remaining after
//!    it*, `R_k = T − e_k`, never on absolute time:
//!
//!    ```text
//!    σ(T) = Σ_k I_k · [Δ_k + 2 Σ_m e^{−β²m²·R_k} · (1 − e^{−β²m²·Δ_k}) / (β²m²)]
//!    ```
//!
//! 2. **Entry tables.** A schedule draws its intervals from a finite
//!    catalogue of (duration, current) *entries* — one per (task, design
//!    point) pair. The factors `e^{−β²m²·Δ}` (decay) and
//!    `(1 − e^{−β²m²·Δ})/(β²m²)` (fill) are precomputed per entry per
//!    term at construction.
//!
//! 3. **Backward recurrence.** Walking the sequence last-to-first while
//!    maintaining the per-term weights `w_m = e^{−β²m²·R}` turns each
//!    interval's contribution into `M` fused multiply-adds:
//!    `w` starts at 1 and is multiplied by the entry's decay factors after
//!    each position. No `exp()` is ever called during evaluation.
//!
//! 4. **Suffix cache.** Because contributions depend only on the suffix
//!    after each position, a [`SigmaScratch`] memoizes per-suffix partial
//!    sums: re-evaluating a sequence that shares a suffix with the previous
//!    call (a single design-point swap, an adjacent transposition, a prefix
//!    permutation) only recomputes the changed prefix.
//!
//! Results match the naive [`RvModel::sigma`](crate::rv::RvModel::sigma)
//! to ≤ 1e-9 relative error (they differ only in floating-point
//! association); the property suites in `crates/battery/tests` and
//! `crates/core/tests` enforce this.
//!
//! ```
//! use batsched_battery::eval::{SigmaEvaluator, SigmaScratch};
//! use batsched_battery::profile::LoadProfile;
//! use batsched_battery::rv::RvModel;
//! use batsched_battery::units::{MilliAmps, Minutes};
//!
//! let model = RvModel::date05();
//! // Two entries: a hungry fast option and a lean slow one.
//! let eval = SigmaEvaluator::new(&model, [
//!     (Minutes::new(2.0), MilliAmps::new(500.0)),
//!     (Minutes::new(6.0), MilliAmps::new(120.0)),
//! ]);
//! let mut scratch = SigmaScratch::new();
//! let (sigma, makespan) = eval.sigma_seq(&[0, 1], &mut scratch);
//!
//! // Same answer as the naive profile path.
//! let p = LoadProfile::from_steps([
//!     (Minutes::new(2.0), MilliAmps::new(500.0)),
//!     (Minutes::new(6.0), MilliAmps::new(120.0)),
//! ]).unwrap();
//! let naive = model.sigma(&p, p.end());
//! assert!((sigma.value() - naive.value()).abs() <= 1e-9 * naive.value());
//! assert_eq!(makespan, Minutes::new(8.0));
//! ```

use crate::rv::RvModel;
use crate::units::{MilliAmpMinutes, MilliAmps, Minutes};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone id source so a [`SigmaScratch`] can detect being reused with a
/// different evaluator and reset its cache instead of serving stale sums.
static NEXT_EVALUATOR_ID: AtomicU64 = AtomicU64::new(1);

/// Precomputed σ-evaluation tables for a fixed catalogue of
/// (duration, current) entries under one [`RvModel`].
///
/// Build once per scheduling run; evaluate sequences of entry indices with
/// [`Self::sigma_seq`]. Construction costs `entries × terms` exponentials;
/// every evaluation afterwards is exponential-free.
#[derive(Debug, Clone)]
pub struct SigmaEvaluator {
    id: u64,
    terms: usize,
    /// Entry durations (minutes).
    dur: Vec<f64>,
    /// Entry currents (mA).
    cur: Vec<f64>,
    /// Interleaved per-entry, per-term factors — one linear stream for the
    /// hot loop: `table[2·(e·terms + m)] = (1 − e^{−β²m²·Δ_e}) / (β²m²)`
    /// (fill) and `table[2·(e·terms + m) + 1] = e^{−β²m²·Δ_e}` (decay).
    table: Vec<f64>,
}

impl SigmaEvaluator {
    /// Precomputes evaluation tables for `entries` under `model`.
    pub fn new<I>(model: &RvModel, entries: I) -> Self
    where
        I: IntoIterator<Item = (Minutes, MilliAmps)>,
    {
        let coeff = model.coefficients();
        let terms = coeff.len();
        let mut dur = Vec::new();
        let mut cur = Vec::new();
        let mut table = Vec::new();
        for (d, i) in entries {
            dur.push(d.value());
            cur.push(i.value());
            for &k in coeff {
                let e = (-k * d.value()).exp();
                table.push((1.0 - e) / k);
                table.push(e);
            }
        }
        Self {
            id: NEXT_EVALUATOR_ID.fetch_add(1, Ordering::Relaxed),
            terms,
            dur,
            cur,
            table,
        }
    }

    /// Number of catalogued entries.
    pub fn entry_count(&self) -> usize {
        self.dur.len()
    }

    /// Globally unique identity of this evaluator instance. Scratches and
    /// caches key their validity on it ([`SigmaScratch`] and
    /// [`PrefixSigma`] do so internally); callers maintaining their own
    /// evaluator-derived state can use the same guard.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this evaluator was built over exactly the given entry
    /// catalogue (same order, bit-equal durations and currents). Lets a
    /// cache decide to reuse an evaluator for a repeated workload without
    /// paying the `entries × terms` exponentials of a rebuild; the model
    /// must be compared separately (the tables also depend on it).
    pub fn catalogue_matches<I>(&self, entries: I) -> bool
    where
        I: IntoIterator<Item = (Minutes, MilliAmps)>,
    {
        let mut k = 0usize;
        for (d, c) in entries {
            if k >= self.dur.len()
                || self.dur[k].to_bits() != d.value().to_bits()
                || self.cur[k].to_bits() != c.value().to_bits()
            {
                return false;
            }
            k += 1;
        }
        k == self.dur.len()
    }

    /// Number of series terms (matches the model's truncation).
    pub fn terms(&self) -> usize {
        self.terms
    }

    /// Duration of entry `e`.
    pub fn duration(&self, e: u32) -> Minutes {
        Minutes::new(self.dur[e as usize])
    }

    /// Current of entry `e`.
    pub fn current(&self, e: u32) -> MilliAmps {
        MilliAmps::new(self.cur[e as usize])
    }

    /// σ and makespan of running the catalogued entries `seq` back-to-back
    /// from `t = 0`, evaluated at the completion instant — the exact
    /// quantity [`RvModel::sigma`] computes on the equivalent
    /// [`LoadProfile`](crate::profile::LoadProfile), with no allocation and
    /// no `exp()` calls.
    ///
    /// `scratch` carries the suffix cache between calls: consecutive
    /// evaluations that share a trailing subsequence (single design-point
    /// swaps, adjacent transpositions) only pay for the changed prefix.
    ///
    /// # Panics
    ///
    /// Panics when `seq` references an entry out of range.
    pub fn sigma_seq(&self, seq: &[u32], scratch: &mut SigmaScratch) -> (MilliAmpMinutes, Minutes) {
        let n = seq.len();
        let terms = self.terms;
        scratch.bind(self.id, terms);

        // Longest suffix shared with the previously evaluated sequence.
        let old = &scratch.seq;
        let mut shared = 0usize;
        let max_shared = n.min(old.len()).min(scratch.valid);
        while shared < max_shared && seq[n - 1 - shared] == old[old.len() - 1 - shared] {
            shared += 1;
        }
        scratch.evals += 1;
        scratch.reused += shared as u64;
        scratch.fresh += (n - shared) as u64;

        // Suffix states are indexed by suffix length i (last i positions):
        //   sigma[i]  = Σ contributions of the last i positions
        //   dursum[i] = Σ durations of the last i positions
        //   w[i*terms + m] = Π decay over the last i positions
        scratch.ensure_len(n);
        // Anything beyond the shared suffix is about to be overwritten; cap
        // validity first so a panic mid-loop cannot leave a lying cache.
        scratch.valid = shared;
        for i in shared..n {
            let e = seq[n - 1 - i] as usize;
            assert!(e < self.dur.len(), "entry {e} out of range");
            let factors = &self.table[2 * e * terms..2 * (e + 1) * terms];
            // `w_in` (suffix length i) and `w_out` (i + 1) are adjacent rows.
            let (w_in, w_out) = scratch.w[i * terms..(i + 2) * terms].split_at_mut(terms);
            let mut series = 0.0;
            for ((wi, wo), fd) in w_in
                .iter()
                .zip(w_out.iter_mut())
                .zip(factors.chunks_exact(2))
            {
                series += wi * fd[0];
                *wo = wi * fd[1];
            }
            scratch.sigma[i + 1] = scratch.sigma[i] + self.cur[e] * (self.dur[e] + 2.0 * series);
            scratch.dursum[i + 1] = scratch.dursum[i] + self.dur[e];
        }

        scratch.seq.clear();
        scratch.seq.extend_from_slice(seq);
        scratch.valid = n;
        (
            MilliAmpMinutes::new(scratch.sigma[n]),
            Minutes::new(scratch.dursum[n]),
        )
    }

    /// One-shot convenience around [`Self::sigma_seq`] that allocates its
    /// own scratch. Prefer holding a [`SigmaScratch`] in hot loops.
    pub fn sigma_seq_once(&self, seq: &[u32]) -> (MilliAmpMinutes, Minutes) {
        let mut scratch = SigmaScratch::new();
        self.sigma_seq(seq, &mut scratch)
    }
}

/// Reusable evaluation state for [`SigmaEvaluator::sigma_seq`]: the
/// per-term weight ladder plus the suffix-keyed partial-sum cache.
///
/// One allocation per scheduling run instead of one profile allocation per
/// candidate. A scratch may be moved between evaluators; it detects the
/// switch and resets itself.
#[derive(Debug, Clone, Default)]
pub struct SigmaScratch {
    /// Id of the evaluator the cached state belongs to (0 = unbound).
    evaluator_id: u64,
    terms: usize,
    /// Sequence the cache describes (entry ids, schedule order).
    seq: Vec<u32>,
    /// Number of trailing positions of `seq` with valid cached state.
    valid: usize,
    /// `sigma[i]`: σ contribution of the last `i` positions.
    sigma: Vec<f64>,
    /// `dursum[i]`: total duration of the last `i` positions.
    dursum: Vec<f64>,
    /// `w[i*terms + m]`: per-term decay product over the last `i` positions.
    w: Vec<f64>,
    /// Profiling: `sigma_seq` calls through this scratch (cumulative,
    /// never reset by rebinding — a plain add per evaluation).
    evals: u64,
    /// Profiling: sequence positions served from the suffix cache.
    reused: u64,
    /// Profiling: sequence positions recomputed.
    fresh: u64,
}

impl SigmaScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative suffix-cache profile of this scratch:
    /// `(evaluations, positions reused, positions recomputed)`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (self.evals, self.reused, self.fresh)
    }

    /// Drops the cached suffix sums (keeps the buffers). Call when the
    /// entry catalogue changes underneath a reused scratch.
    pub fn invalidate(&mut self) {
        self.valid = 0;
        self.seq.clear();
    }

    fn bind(&mut self, evaluator_id: u64, terms: usize) {
        if self.evaluator_id != evaluator_id || self.terms != terms {
            self.evaluator_id = evaluator_id;
            self.terms = terms;
            self.invalidate();
        }
    }

    fn ensure_len(&mut self, n: usize) {
        if self.sigma.len() < n + 1 {
            self.sigma.resize(n + 1, 0.0);
            self.dursum.resize(n + 1, 0.0);
        }
        // Checked independently of `sigma`: rebinding to an evaluator with
        // more series terms must grow `w` even when `sigma` is long enough.
        if self.w.len() < (n + 1) * self.terms {
            self.w.resize((n + 1) * self.terms, 0.0);
        }
        self.sigma[0] = 0.0;
        self.dursum[0] = 0.0;
        for m in 0..self.terms {
            self.w[m] = 1.0;
        }
    }
}

/// Prefix-keyed partial-σ state: the complement of [`SigmaScratch`]'s
/// suffix cache for searches that grow and shrink a schedule from the
/// *front* (depth-first assignment enumeration, branch-and-bound).
///
/// The suffix cache exploits that a contiguous schedule's σ depends on each
/// interval only through the time *remaining after it*. A prefix ending at
/// time `P` can nevertheless be summarised exactly: writing `T = P + S` for
/// a yet-unknown suffix of duration `S`,
///
/// ```text
/// e^{−β²m²·(T − e_k)} = e^{−β²m²·(P − e_k)} · e^{−β²m²·S}
/// ```
///
/// so the prefix contributes `charge = Σ_k I_k·Δ_k` plus, per series term,
/// the **prefix moment** `A_m = Σ_k I_k · fill_{k,m} · e^{−β²m²·(P − e_k)}`
/// measured from the prefix's own end. Appending one catalogued entry `e`
/// updates the moments in `O(terms)`:
///
/// ```text
/// A'_m = A_m · decay_{e,m} + I_e · fill_{e,m}
/// ```
///
/// and a *complete* schedule (empty suffix, `S = 0`) evaluates to
/// `σ = charge + 2·Σ_m A_m`. The per-depth rows form a stack, so a DFS
/// pays `O(terms)` per push/pop and `O(terms)` per leaf — instead of an
/// `O(n·terms)` full re-evaluation per leaf through [`SigmaEvaluator::sigma_seq`],
/// whose suffix cache cannot help when only the deepest positions vary.
///
/// Results match `sigma_seq` to floating-point association (≤ 1e-9
/// relative); the battery property suite enforces this.
#[derive(Debug, Clone, Default)]
pub struct PrefixSigma {
    /// Id of the evaluator the rows belong to (0 = unbound).
    evaluator_id: u64,
    terms: usize,
    depth: usize,
    /// `charge[k]`: delivered charge `Σ I·Δ` of the first `k` entries.
    charge: Vec<f64>,
    /// `elapsed[k]`: total duration of the first `k` entries.
    elapsed: Vec<f64>,
    /// `a[k·terms + m]`: term-`m` prefix moment after `k` entries.
    a: Vec<f64>,
}

impl PrefixSigma {
    /// Creates an empty prefix stack (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current prefix length (number of pushed entries).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Clears the prefix back to empty (keeps the buffers).
    pub fn reset(&mut self) {
        self.depth = 0;
    }

    /// End time of the current prefix.
    pub fn elapsed(&self) -> Minutes {
        Minutes::new(if self.depth == 0 {
            0.0
        } else {
            self.elapsed[self.depth]
        })
    }

    /// Appends catalogued entry `entry` to the prefix.
    ///
    /// # Panics
    ///
    /// Panics when `entry` is out of range for `eval`.
    pub fn push(&mut self, eval: &SigmaEvaluator, entry: u32) {
        if self.evaluator_id != eval.id || self.terms != eval.terms {
            self.evaluator_id = eval.id;
            self.terms = eval.terms;
            self.depth = 0;
        }
        let e = entry as usize;
        assert!(e < eval.dur.len(), "entry {e} out of range");
        let terms = self.terms;
        let k = self.depth;
        if self.charge.len() < k + 2 {
            self.charge.resize(k + 2, 0.0);
            self.elapsed.resize(k + 2, 0.0);
        }
        if self.a.len() < (k + 2) * terms {
            self.a.resize((k + 2) * terms, 0.0);
        }
        if k == 0 {
            self.charge[0] = 0.0;
            self.elapsed[0] = 0.0;
            self.a[..terms].fill(0.0);
        }
        let cur = eval.cur[e];
        let dur = eval.dur[e];
        self.charge[k + 1] = self.charge[k] + cur * dur;
        self.elapsed[k + 1] = self.elapsed[k] + dur;
        let factors = &eval.table[2 * e * terms..2 * (e + 1) * terms];
        let (row_in, row_out) = self.a[k * terms..(k + 2) * terms].split_at_mut(terms);
        for ((ai, ao), fd) in row_in
            .iter()
            .zip(row_out.iter_mut())
            .zip(factors.chunks_exact(2))
        {
            // fd[0] = fill, fd[1] = decay (same layout as the suffix path).
            *ao = ai * fd[1] + cur * fd[0];
        }
        self.depth = k + 1;
    }

    /// Removes the most recently pushed entry.
    ///
    /// # Panics
    ///
    /// Panics when the prefix is empty.
    pub fn pop(&mut self) {
        assert!(self.depth > 0, "pop on empty prefix");
        self.depth -= 1;
    }

    /// σ and makespan of the current prefix *as a complete schedule*
    /// (evaluated at its own completion instant, like
    /// [`SigmaEvaluator::sigma_seq`]).
    pub fn sigma(&self) -> (MilliAmpMinutes, Minutes) {
        if self.depth == 0 {
            return (MilliAmpMinutes::new(0.0), Minutes::new(0.0));
        }
        let k = self.depth;
        let mut series = 0.0;
        for &am in &self.a[k * self.terms..(k + 1) * self.terms] {
            series += am;
        }
        (
            MilliAmpMinutes::new(self.charge[k] + 2.0 * series),
            Minutes::new(self.elapsed[k]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BatteryModel;
    use crate::profile::LoadProfile;

    fn entries() -> Vec<(Minutes, MilliAmps)> {
        vec![
            (Minutes::new(2.0), MilliAmps::new(500.0)),
            (Minutes::new(4.0), MilliAmps::new(250.0)),
            (Minutes::new(6.0), MilliAmps::new(125.0)),
            (Minutes::new(8.0), MilliAmps::new(60.0)),
            (Minutes::new(1.5), MilliAmps::new(333.0)),
        ]
    }

    fn naive(model: &RvModel, seq: &[u32]) -> (f64, f64) {
        let ents = entries();
        let p = LoadProfile::from_steps(seq.iter().map(|&e| {
            let (d, i) = ents[e as usize];
            (d, i)
        }))
        .unwrap();
        (model.sigma(&p, p.end()).value(), p.end().value())
    }

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "engine {a} vs naive {b}"
        );
    }

    #[test]
    fn matches_naive_on_fixed_sequences() {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries());
        let mut scratch = SigmaScratch::new();
        for seq in [
            vec![0u32],
            vec![3, 2, 1, 0],
            vec![0, 1, 2, 3, 4],
            vec![4, 4, 4],
            vec![2, 0, 3, 1, 4, 0, 2],
        ] {
            let (sigma, mk) = eval.sigma_seq(&seq, &mut scratch);
            let (ns, nmk) = naive(&model, &seq);
            assert_close(sigma.value(), ns);
            assert!((mk.value() - nmk).abs() < 1e-12);
        }
    }

    #[test]
    fn suffix_cache_survives_single_swaps() {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries());
        let mut scratch = SigmaScratch::new();
        let mut seq = vec![0u32, 1, 2, 3, 4, 0, 1, 2];
        eval.sigma_seq(&seq, &mut scratch);
        for pos in 0..seq.len() {
            for replacement in 0..5u32 {
                let prev = seq[pos];
                seq[pos] = replacement;
                let (sigma, _) = eval.sigma_seq(&seq, &mut scratch);
                let (ns, _) = naive(&model, &seq);
                assert_close(sigma.value(), ns);
                seq[pos] = prev;
                // Restore-evaluation exercises the cache in reverse too.
                let (restored, _) = eval.sigma_seq(&seq, &mut scratch);
                let (nr, _) = naive(&model, &seq);
                assert_close(restored.value(), nr);
            }
        }
    }

    #[test]
    fn cache_handles_length_changes() {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries());
        let mut scratch = SigmaScratch::new();
        for seq in [
            vec![0u32, 1, 2],
            vec![3u32, 0, 1, 2], // same suffix, longer
            vec![1u32, 2],       // shorter
            vec![0u32, 1, 2, 3, 4],
        ] {
            let (sigma, _) = eval.sigma_seq(&seq, &mut scratch);
            let (ns, _) = naive(&model, &seq);
            assert_close(sigma.value(), ns);
        }
    }

    #[test]
    fn scratch_resets_across_evaluators() {
        let model = RvModel::date05();
        let a = SigmaEvaluator::new(&model, entries());
        let mut shuffled = entries();
        shuffled.reverse();
        let b = SigmaEvaluator::new(&model, shuffled);
        let mut scratch = SigmaScratch::new();
        let seq = [0u32, 1, 2];
        let (sa, _) = a.sigma_seq(&seq, &mut scratch);
        let (sb, _) = b.sigma_seq(&seq, &mut scratch);
        // Entry 0 differs between the catalogues, so the results must too —
        // a stale cache would return `sa` again.
        assert!((sa.value() - sb.value()).abs() > 1.0);
    }

    #[test]
    fn scratch_grows_when_rebound_to_more_terms() {
        // Regression: a scratch sized by a short-series evaluator on a long
        // sequence must grow its weight buffer when reused with a
        // longer-series evaluator on a shorter sequence.
        let few_terms = SigmaEvaluator::new(&RvModel::new(0.273, 2).unwrap(), entries());
        let many_terms = SigmaEvaluator::new(&RvModel::new(0.273, 10).unwrap(), entries());
        let mut scratch = SigmaScratch::new();
        let long_seq: Vec<u32> = (0..12).map(|i| i % 5).collect();
        few_terms.sigma_seq(&long_seq, &mut scratch);
        let short_seq = [0u32, 1, 2];
        let (sigma, _) = many_terms.sigma_seq(&short_seq, &mut scratch);
        let model = RvModel::new(0.273, 10).unwrap();
        let (naive, _) = naive(&model, &short_seq);
        assert_close(sigma.value(), naive);
    }

    #[test]
    fn prefix_sigma_matches_suffix_engine() {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries());
        let mut pfx = PrefixSigma::new();
        for seq in [
            vec![0u32],
            vec![3, 2, 1, 0],
            vec![0, 1, 2, 3, 4],
            vec![4, 4, 4],
            vec![2, 0, 3, 1, 4, 0, 2],
        ] {
            pfx.reset();
            for &e in &seq {
                pfx.push(&eval, e);
            }
            let (sigma, mk) = pfx.sigma();
            let (es, emk) = eval.sigma_seq_once(&seq);
            assert_close(sigma.value(), es.value());
            assert!((mk.value() - emk.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_sigma_push_pop_walks_a_dfs() {
        // Simulate an assignment DFS: extend, evaluate, retract, branch —
        // every complete prefix must match a from-scratch evaluation.
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries());
        let mut pfx = PrefixSigma::new();
        let mut seq: Vec<u32> = Vec::new();
        fn walk(eval: &SigmaEvaluator, pfx: &mut PrefixSigma, seq: &mut Vec<u32>, depth: usize) {
            if depth == 3 {
                let (sigma, mk) = pfx.sigma();
                let (es, emk) = eval.sigma_seq_once(seq);
                assert!(
                    (sigma.value() - es.value()).abs() <= 1e-9 * es.value().max(1.0),
                    "prefix {sigma} vs engine {es} on {seq:?}"
                );
                assert!((mk.value() - emk.value()).abs() < 1e-12);
                return;
            }
            for e in 0..5u32 {
                pfx.push(eval, e);
                seq.push(e);
                walk(eval, pfx, seq, depth + 1);
                seq.pop();
                pfx.pop();
            }
        }
        walk(&eval, &mut pfx, &mut seq, 0);
        assert_eq!(pfx.depth(), 0);
    }

    #[test]
    fn prefix_sigma_resets_across_evaluators() {
        let model = RvModel::date05();
        let a = SigmaEvaluator::new(&model, entries());
        let mut shuffled = entries();
        shuffled.reverse();
        let b = SigmaEvaluator::new(&model, shuffled);
        let mut pfx = PrefixSigma::new();
        pfx.push(&a, 0);
        // Rebinding to another evaluator drops the stale prefix.
        pfx.push(&b, 0);
        assert_eq!(pfx.depth(), 1);
        let (sigma, _) = pfx.sigma();
        let (sb, _) = b.sigma_seq_once(&[0]);
        assert_close(sigma.value(), sb.value());
    }

    #[test]
    fn empty_prefix_is_zero() {
        let pfx = PrefixSigma::new();
        let (sigma, mk) = pfx.sigma();
        assert_eq!(sigma.value(), 0.0);
        assert_eq!(mk.value(), 0.0);
    }

    #[test]
    fn empty_sequence_is_zero() {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries());
        let (sigma, mk) = eval.sigma_seq_once(&[]);
        assert_eq!(sigma.value(), 0.0);
        assert_eq!(mk.value(), 0.0);
    }

    #[test]
    fn agrees_with_apparent_charge_trait_path() {
        let model = RvModel::new(0.41, 14).unwrap();
        let eval = SigmaEvaluator::new(&model, entries());
        let seq = [2u32, 0, 3];
        let (sigma, _) = eval.sigma_seq_once(&seq);
        let ents = entries();
        let p = LoadProfile::from_steps(seq.iter().map(|&e| ents[e as usize])).unwrap();
        let trait_sigma = model.apparent_charge(&p, p.end()).value();
        assert_close(sigma.value(), trait_sigma);
    }
}
