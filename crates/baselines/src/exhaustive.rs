//! Exact optimum by exhaustive enumeration — ground truth for small graphs.
//!
//! Enumerates every topological order and, for each, every deadline-feasible
//! design-point assignment (with partial-sum pruning), scoring each complete
//! schedule with the RV battery model. Exponential, so construction bounds
//! the search-space size.

use crate::Scheduler;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::{EngineCost, Schedule, SchedulerError};
use batsched_taskgraph::topo::for_each_topological_order;
use batsched_taskgraph::{PointId, TaskGraph, TaskId};

/// Brute-force optimal scheduler for small instances.
#[derive(Debug, Clone)]
pub struct Exhaustive {
    /// Maximum number of topological orders to visit.
    pub max_orders: usize,
    /// Maximum number of complete assignments to score per order.
    pub max_assignments_per_order: usize,
    /// Battery model used for scoring.
    pub model: RvModel,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self {
            max_orders: 50_000,
            max_assignments_per_order: 200_000,
            model: RvModel::date05(),
        }
    }
}

impl Exhaustive {
    /// True optimum cost alongside the schedule (handy for assertions).
    ///
    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when nothing fits the deadline.
    pub fn best(
        &self,
        g: &TaskGraph,
        deadline: Minutes,
    ) -> Result<(Schedule, f64), SchedulerError> {
        if !(deadline.is_finite() && deadline.value() > 0.0) {
            return Err(SchedulerError::InvalidDeadline { deadline });
        }
        let n = g.task_count();
        let m = g.point_count();
        let d = deadline.value();
        // Cheapest remaining time per suffix for pruning.
        let min_dur: Vec<f64> = g
            .task_ids()
            .map(|t| g.duration(t, PointId(0)).value())
            .collect();

        let mut best: Option<(Vec<TaskId>, Vec<PointId>, f64)> = None;
        let mut engine = EngineCost::new(g, &self.model);

        for_each_topological_order(g, self.max_orders, |order| {
            // Suffix minima of fastest durations along this order.
            let mut suffix_min = vec![0.0; n + 1];
            for i in (0..n).rev() {
                suffix_min[i] = suffix_min[i + 1] + min_dur[order[i].index()];
            }
            let mut assign = vec![0usize; n];
            let mut visited = 0usize;
            // DFS over assignments with time pruning; complete assignments
            // are scored through the σ engine (no profile allocation, no
            // exponentials).
            #[allow(clippy::too_many_arguments)]
            fn dfs(
                g: &TaskGraph,
                engine: &mut EngineCost,
                order: &[TaskId],
                suffix_min: &[f64],
                d: f64,
                m: usize,
                pos: usize,
                elapsed: f64,
                assign: &mut Vec<usize>,
                visited: &mut usize,
                cap: usize,
                best: &mut Option<(Vec<TaskId>, Vec<PointId>, f64)>,
            ) {
                if *visited >= cap {
                    return;
                }
                if pos == order.len() {
                    *visited += 1;
                    let assignment: Vec<PointId> = {
                        let mut v = vec![PointId(0); order.len()];
                        for (p, &t) in order.iter().enumerate() {
                            v[t.index()] = PointId(assign[p]);
                        }
                        v
                    };
                    let (cost, _) = engine.cost(order, &assignment);
                    if best.as_ref().is_none_or(|&(_, _, c)| cost.value() < c) {
                        *best = Some((order.to_vec(), assignment, cost.value()));
                    }
                    return;
                }
                let t = order[pos];
                for j in 0..m {
                    let dur = g.duration(t, PointId(j)).value();
                    if elapsed + dur + suffix_min[pos + 1] <= d + 1e-9 {
                        assign[pos] = j;
                        dfs(
                            g,
                            engine,
                            order,
                            suffix_min,
                            d,
                            m,
                            pos + 1,
                            elapsed + dur,
                            assign,
                            visited,
                            cap,
                            best,
                        );
                    }
                }
            }
            dfs(
                g,
                &mut engine,
                order,
                &suffix_min,
                d,
                m,
                0,
                0.0,
                &mut assign,
                &mut visited,
                self.max_assignments_per_order,
                &mut best,
            );
        });

        match best {
            Some((order, assignment, cost)) => Ok((Schedule::new(order, assignment), cost)),
            None => Err(SchedulerError::DeadlineInfeasible {
                fastest: batsched_taskgraph::analysis::min_makespan(g),
                deadline,
            }),
        }
    }
}

impl Scheduler for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        self.best(g, deadline).map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::units::MilliAmps;
    use batsched_taskgraph::DesignPoint;

    fn dp(i: f64, d: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(i), Minutes::new(d))
    }

    /// Source + two independent middles + sink, 2 points each.
    fn small() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(300.0, 1.0), dp(60.0, 2.5)]);
        let x = b.task("X", vec![dp(500.0, 2.0), dp(90.0, 4.0)]);
        let y = b.task("Y", vec![dp(150.0, 1.5), dp(40.0, 3.0)]);
        let z = b.task("Z", vec![dp(250.0, 1.0), dp(50.0, 2.0)]);
        b.edge(a, x).edge(a, y);
        b.parents(z, [x, y]);
        b.build().unwrap()
    }

    #[test]
    fn finds_a_valid_optimum() {
        let g = small();
        let d = Minutes::new(9.0);
        let (s, cost) = Exhaustive::default().best(&g, d).unwrap();
        s.validate(&g, Some(d)).unwrap();
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn optimum_never_beaten_by_heuristics() {
        use crate::{ChowdhuryScaling, KhanVemuri, RakhmatovDp};
        let g = small();
        let model = RvModel::date05();
        for d in [6.0, 8.0, 10.0, 11.5] {
            let dl = Minutes::new(d);
            let (_, opt) = Exhaustive::default().best(&g, dl).unwrap();
            for algo in [
                &KhanVemuri::paper() as &dyn Scheduler,
                &RakhmatovDp::default(),
                &ChowdhuryScaling,
            ] {
                let s = algo.schedule(&g, dl).unwrap();
                let c = s.battery_cost(&g, &model).value();
                assert!(
                    c >= opt - 1e-6,
                    "{} beat the optimum at d={d}: {c} < {opt}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn infeasible_deadline_errors() {
        let g = small();
        assert!(matches!(
            Exhaustive::default().best(&g, Minutes::new(4.0)),
            Err(SchedulerError::DeadlineInfeasible { .. })
        ));
    }

    #[test]
    fn tight_deadline_forces_the_fast_assignment() {
        let g = small();
        // Fastest total is 5.5.
        let (s, _) = Exhaustive::default().best(&g, Minutes::new(5.5)).unwrap();
        assert!(s.assignment().iter().all(|p| p.index() == 0));
    }
}
