# Developer entry points. `just ci` mirrors ./ci.sh.

# Run formatting check, lints, build, tests and the perf snapshot.
ci:
    ./ci.sh

# Format the whole workspace in place.
fmt:
    cargo fmt --all

# Lints with warnings denied, both feature configurations.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo clippy --workspace --all-targets --features parallel -- -D warnings

# Workspace invariant linter (crates/lint): panic-path, nested-lock,
# uncapped-wire-alloc, nondeterministic-iter, crate-hygiene. Zero
# findings allowed; see docs/LINT.md for the catalogue and the
# lint:allow grammar.
lint:
    cargo run --release -q -p batsched-lint --bin batsched-lint

# Full test suite, both feature configurations.
test:
    cargo test --workspace -q
    cargo test --workspace -q --features parallel

# Criterion runtime benches (quick mode).
bench:
    BATSCHED_BENCH_QUICK=1 cargo bench -p batsched-bench

# Regenerate the perf-trajectory snapshot (BENCH_scheduler.json).
perf:
    cargo run --release -p batsched-bench --bin repro_bench_json -- --full

# Quick perf smoke: regenerate the snapshot and fail if sigma_full_vs_naive
# or cdp_speedup drop below their conservative 2x floors, row_carry below
# 1.5x, or the sweep_scaling fitted exponent climbs above 1.4.
bench-quick:
    cargo run --release -p batsched-bench --bin repro_bench_json -- --quick --check

# Boot the HTTP daemon (disk-backed cache), fire a loadgen burst with a
# keep-alive pass, then restart it and assert the warm request is served
# from the disk tier.
serve-smoke:
    ./ci.sh serve-smoke

# Regenerate the service load snapshot (BENCH_service.json, full streams,
# keep-alive >= 1.5x floor enforced).
service-bench:
    cargo run --release -p batsched-bench --bin loadgen -- --check

# Binary-vs-JSON admission A/B on the n-scaling instances: both wire
# formats must produce one cache key, and the fused single-pass binary
# decode+hash must beat JSON parse+hash by >= 2x at n=200.
wire:
    cargo run --release -p batsched-bench --bin loadgen -- --wire --check

# Fault-injection drill against a real armed daemon: injected solver
# panic, disk-append burst, latency beyond the request deadline. Asserts
# zero lost requests, typed errors only, worker respawn, and disk-tier
# degraded-mode recovery.
chaos:
    ./ci.sh chaos-smoke

# Observability smoke: boot the daemon with --log-json, drive traffic,
# scrape /v1/metrics (well-formed exposition, exact histogram counts) and
# assert one span line per request with client trace ids preserved.
metrics:
    ./ci.sh metrics-smoke

# Fleet drill: boot the content-hash router with 3 supervised worker
# processes, drive a burst, kill -9 one worker mid-burst (zero lost
# requests — failover retries are safe because requests are idempotent by
# content hash), assert respawn-with-backoff and the drain/readyz cycle.
fleet:
    ./ci.sh fleet-smoke
