//! Quickstart: build a task graph by hand, schedule it battery-aware, and
//! see why the result differs from plain energy minimisation.
//!
//! Run with: `cargo run --example quickstart`

use batsched::baselines::{RakhmatovDp, Scheduler};
use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::taskgraph::DesignPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny camera pipeline: capture -> {detect, compress} -> transmit.
    // Each task offers three voltage levels: fast & hungry, medium, lean.
    let dp = |fast: (f64, f64), mid: (f64, f64), lean: (f64, f64)| {
        vec![
            DesignPoint::new(MilliAmps::new(fast.0), Minutes::new(fast.1)),
            DesignPoint::new(MilliAmps::new(mid.0), Minutes::new(mid.1)),
            DesignPoint::new(MilliAmps::new(lean.0), Minutes::new(lean.1)),
        ]
    };
    let mut b = TaskGraph::builder();
    let capture = b.task("capture", dp((420.0, 2.0), (180.0, 3.5), (60.0, 6.0)));
    let detect = b.task("detect", dp((800.0, 4.0), (350.0, 7.0), (120.0, 12.0)));
    let compress = b.task("compress", dp((300.0, 1.5), (130.0, 2.6), (45.0, 4.5)));
    let transmit = b.task("transmit", dp((650.0, 3.0), (280.0, 5.2), (95.0, 9.0)));
    b.edge(capture, detect).edge(capture, compress);
    b.parents(transmit, [detect, compress]);
    let graph = b.build()?;

    let deadline = Minutes::new(24.0);
    let solution = schedule(&graph, deadline, &SchedulerConfig::paper())?;

    println!("plan      : {}", solution.schedule.display(&graph));
    println!(
        "makespan  : {:.1} (deadline {:.0})",
        solution.makespan, deadline
    );
    println!("battery σ : {:.0}", solution.cost);
    println!("iterations: {}", solution.iterations);

    // The energy-optimal baseline picks the same or less *delivered* charge …
    let model = RvModel::date05();
    let baseline = RakhmatovDp::default().schedule(&graph, deadline)?;
    println!("\n-- versus plain energy minimisation (Rakhmatov DP) --");
    println!("their plan: {}", baseline.display(&graph));
    println!(
        "delivered charge: ours {:.0} vs theirs {:.0}",
        solution.schedule.direct_charge(&graph),
        baseline.direct_charge(&graph),
    );
    // … but pays more *battery* because it ignores when charge is drawn.
    println!(
        "battery σ       : ours {:.0} vs theirs {:.0}",
        solution.schedule.battery_cost(&graph, &model),
        baseline.battery_cost(&graph, &model),
    );
    Ok(())
}
