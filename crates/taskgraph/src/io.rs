//! Interchange: JSON (serde) helpers and Graphviz DOT export.

use crate::graph::{TaskGraph, TaskGraphError};
use std::fmt::Write as _;

/// Serialises a graph to pretty JSON.
pub fn to_json(g: &TaskGraph) -> String {
    serde_json::to_string_pretty(g).expect("task graphs always serialise")
}

/// Parses a graph from JSON, revalidating all invariants.
///
/// # Errors
///
/// Returns a human-readable message for syntax errors and a
/// [`TaskGraphError`]-derived message for semantic ones.
pub fn from_json(json: &str) -> Result<TaskGraph, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Renders the DAG in Graphviz DOT format, labelling each task with its
/// design-point table.
pub fn to_dot(g: &TaskGraph) -> String {
    let mut out = String::from("digraph taskgraph {\n  rankdir=TB;\n  node [shape=record];\n");
    for t in g.task_ids() {
        let node = g.task(t);
        let mut label = format!("{{{}|", node.name);
        for (j, p) in node.points.iter().enumerate() {
            if j > 0 {
                label.push_str("\\n");
            }
            let _ = write!(
                label,
                "DP{}: {:.0} mA, {:.1} min",
                j + 1,
                p.current.value(),
                p.duration.value()
            );
        }
        label.push('}');
        let _ = writeln!(out, "  t{} [label=\"{}\"];", t.index(), label);
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  t{} -> t{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

/// Round-trips a graph through JSON; used by tests and the CLI self-check.
///
/// # Errors
///
/// Propagates parse errors (which indicate a serialisation bug).
pub fn round_trip(g: &TaskGraph) -> Result<TaskGraph, String> {
    from_json(&to_json(g))
}

/// Re-exported for error-type uniformity in downstream code.
pub type GraphResult<T> = Result<T, TaskGraphError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{g2, g3};

    #[test]
    fn json_round_trip_paper_graphs() {
        for g in [g2(), g3()] {
            let back = round_trip(&g).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn from_json_reports_syntax_errors() {
        assert!(from_json("{ not json").is_err());
    }

    #[test]
    fn from_json_reports_semantic_errors() {
        let json = r#"{"tasks": [], "edges": []}"#;
        let err = from_json(json).unwrap_err();
        assert!(err.contains("no tasks"), "got: {err}");
    }

    #[test]
    fn dot_mentions_every_task_and_edge() {
        let g = g2();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for t in g.task_ids() {
            assert!(dot.contains(&format!("t{} [", t.index())));
        }
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        assert!(dot.contains("938 mA"));
    }
}
