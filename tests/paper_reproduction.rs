//! Golden reproduction tests: every number this suite pins down was either
//! printed in the paper or derived from it by hand. See `EXPERIMENTS.md`
//! for the full paper-vs-measured record including the known deviations.

use batsched::baselines::{KhanVemuri, RakhmatovDp, Scheduler};
use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::taskgraph::paper::{g2, g2_synthesized, g3, g3_synthesized, G3_EXAMPLE_DEADLINE};
use batsched::SchedulerConfig;

/// Table 1 and Figure 5 regenerate from the published scaling rules,
/// element for element.
#[test]
fn instance_data_regenerates_exactly() {
    assert_eq!(g3(), g3_synthesized(), "Table 1");
    assert_eq!(g2(), g2_synthesized(), "Figure 5");
}

/// Table 2, sequence S1: the initial sequence matches the published one
/// task for task.
#[test]
fn table2_initial_sequence_is_exact() {
    let g = g3();
    let sol = batsched::schedule(
        &g,
        Minutes::new(G3_EXAMPLE_DEADLINE),
        &SchedulerConfig::paper(),
    )
    .unwrap();
    let names: Vec<&str> = sol.trace[0].sequence.iter().map(|&t| g.name(t)).collect();
    assert_eq!(
        names,
        vec![
            "T1", "T4", "T5", "T7", "T3", "T2", "T6", "T8", "T10", "T9", "T13", "T12", "T11",
            "T14", "T15"
        ]
    );
}

/// Table 3, row S1, window 4:5: σ = 16353 mA·min at Δ = 228.3 min — the one
/// cell the paper fully pins down (it also prints that window's DP row) —
/// reproduced exactly.
#[test]
fn table3_s1_window45_cell_is_exact() {
    let g = g3();
    let sol = batsched::schedule(
        &g,
        Minutes::new(G3_EXAMPLE_DEADLINE),
        &SchedulerConfig::paper(),
    )
    .unwrap();
    let w = sol.trace[0]
        .windows
        .iter()
        .find(|w| w.window_start.index() == 3)
        .expect("window 4:5 evaluated");
    assert!((w.cost.value() - 16353.0).abs() < 1.0, "σ = {}", w.cost);
    assert!(
        (w.makespan.value() - 228.3).abs() < 0.05,
        "Δ = {}",
        w.makespan
    );
}

/// Table 3's trajectory: monotone improvement, termination on
/// non-improvement, and a final cost within 1.5% of the published 13737.
#[test]
fn table3_trajectory_shape_and_final_cost() {
    let g = g3();
    let sol = batsched::schedule(
        &g,
        Minutes::new(G3_EXAMPLE_DEADLINE),
        &SchedulerConfig::paper(),
    )
    .unwrap();
    assert!(
        sol.iterations >= 2 && sol.iterations <= 6,
        "paper saw 4, we see {}",
        sol.iterations
    );
    let costs: Vec<f64> = sol.trace.iter().map(|r| r.min_cost.value()).collect();
    for w in costs.windows(2).rev().skip(1) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "minima must fall until the last: {costs:?}"
        );
    }
    let published = 13737.0;
    assert!(
        (sol.cost.value() - published).abs() / published < 0.015,
        "final σ {} vs published {published}",
        sol.cost
    );
}

/// Table 4, G3 side: our algorithm's published values at d = 100 and 150
/// reproduce exactly; the DP baseline reproduces exactly at all three
/// deadlines (57429 / 41801 and 68120 / 48650 / 22686 mA·min).
#[test]
fn table4_g3_exact_cells() {
    let g = g3();
    let model = RvModel::date05();
    let ours = KhanVemuri::paper();
    let dp = RakhmatovDp::default();
    let cases = [
        (100.0, Some(57429.0), 68120.0),
        (150.0, Some(41801.0), 48650.0),
        (230.0, None, 22686.0), // ours lands within 1.5% (13890 vs 13737)
    ];
    for (d, ours_pub, dp_pub) in cases {
        let dl = Minutes::new(d);
        let s_ours = ours.schedule(&g, dl).unwrap();
        let s_dp = dp.schedule(&g, dl).unwrap();
        let c_ours = s_ours.battery_cost(&g, &model).value();
        let c_dp = s_dp.battery_cost(&g, &model).value();
        if let Some(expected) = ours_pub {
            assert!(
                (c_ours - expected).abs() < 1.0,
                "ours at d={d}: {c_ours} vs {expected}"
            );
        }
        assert!(
            (c_dp - dp_pub).abs() < 1.0,
            "dp at d={d}: {c_dp} vs {dp_pub}"
        );
        assert!(c_ours < c_dp, "headline at d={d}");
    }
}

/// Table 4, G2 side: with the reconstructed DAG, our algorithm reproduces
/// the published 30913 exactly at d = 55 and stays within 1.5% elsewhere;
/// the DP baseline stays within 6% (its greedy sequencing feels the edges).
#[test]
fn table4_g2_cells_within_tolerance() {
    let g = g2();
    let model = RvModel::date05();
    let ours = KhanVemuri::paper();
    let dp = RakhmatovDp::default();
    let cases = [
        (55.0, 30913.0, 35739.0, 0.001, 0.06),
        (75.0, 13751.0, 13885.0, 0.015, 0.20),
        (95.0, 7961.0, 8517.0, 0.015, 0.06),
    ];
    for (d, ours_pub, dp_pub, tol_ours, tol_dp) in cases {
        let dl = Minutes::new(d);
        let c_ours = ours
            .schedule(&g, dl)
            .unwrap()
            .battery_cost(&g, &model)
            .value();
        let c_dp = dp
            .schedule(&g, dl)
            .unwrap()
            .battery_cost(&g, &model)
            .value();
        assert!(
            (c_ours - ours_pub).abs() / ours_pub <= tol_ours,
            "ours at d={d}: {c_ours} vs {ours_pub}"
        );
        assert!(
            (c_dp - dp_pub).abs() / dp_pub <= tol_dp,
            "dp at d={d}: {c_dp} vs {dp_pub}"
        );
        assert!(c_ours <= c_dp, "headline at d={d}");
    }
}

/// Figure 4's worked example: DPF = 1/3 (asserted bit-exact inside
/// `batsched-core`'s unit tests; here we assert the public repro binary's
/// fixture stays wired up through the facade).
#[test]
fn figure4_fixture_reachable_through_facade() {
    use batsched::core::search::diag_calculate_dpf;
    use batsched::taskgraph::DesignPoint;
    let mut b = TaskGraph::builder();
    for (name, i1) in [
        ("T1", 400.0),
        ("T2", 500.0),
        ("T3", 100.0),
        ("T4", 200.0),
        ("T5", 300.0),
    ] {
        b.task(
            name,
            vec![
                DesignPoint::new(MilliAmps::new(i1), Minutes::new(2.0)),
                DesignPoint::new(MilliAmps::new(i1 * 0.5), Minutes::new(4.0)),
                DesignPoint::new(MilliAmps::new(i1 * 0.25), Minutes::new(6.0)),
                DesignPoint::new(MilliAmps::new(i1 * 0.12), Minutes::new(8.0)),
            ],
        );
    }
    let g = b.build().unwrap();
    let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
    let (_, _, dpf) = diag_calculate_dpf(
        &g,
        &SchedulerConfig::paper(),
        Minutes::new(26.0),
        &seq,
        &[3, 3, 1, 0, 3],
        &[TaskId(3), TaskId(4)],
        2,
        0,
    );
    assert!((dpf - 1.0 / 3.0).abs() < 1e-12);
}

/// The battery parameters of §4.2 are the workspace defaults.
#[test]
fn paper_constants_are_defaults() {
    let cfg = SchedulerConfig::paper();
    assert_eq!(cfg.beta, 0.273);
    assert_eq!(cfg.series_terms, 10);
    let m = RvModel::date05();
    assert_eq!(m.beta(), 0.273);
    assert_eq!(m.terms(), 10);
}
