//! Property-based equivalence of the incremental window-search kernel
//! against the retained naive reference: on random DAGs, random deadlines
//! and every feasible window, the journal-based `ChooseDesignPoints` must
//! produce **bit-identical** assignments, and the incremental
//! `CalculateDPF` **bit-identical** `(enr, cif, dpf)` triples, versus the
//! clone-and-rescan reference implementations. No tolerance: the two paths
//! share their floating-point accumulation, so any difference is a
//! bookkeeping bug in the rollback journal, the occupancy counters, or the
//! resumed-promotion logic. Runs under both feature configurations (the
//! `parallel` sweep reuses per-thread kernels).

use batsched_battery::units::Minutes;
use batsched_core::search::DiagSearch;
use batsched_core::SchedulerConfig;
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::synth::{
    chain, fork_join, layered, random_dag, Rounding, ScalingScheme, TaskParams,
};
use batsched_taskgraph::topo::topological_order;
use batsched_taskgraph::{TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..6, any::<u64>(), 0usize..4, 2usize..7).prop_map(|(m, seed, family, n)| {
        let params = TaskParams {
            current_range: (50.0, 950.0),
            duration_range: (1.0, 15.0),
            factors: (0..m)
                .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
                .collect(),
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => chain(n, &params, &mut rng),
            1 => fork_join(&[n], &params, &mut rng),
            2 => layered(3, 2, 0.4, &params, &mut rng),
            _ => random_dag(n + 2, 0.35, &params, &mut rng),
        }
        .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental `ChooseDesignPoints` equals the retained naive
    /// reference bit-for-bit on every feasible window, with the kernel's
    /// buffers reused across windows and deadlines (the service-worker
    /// pattern).
    #[test]
    fn choose_design_points_is_bit_identical_to_reference(
        g in arb_graph(),
        slack in 0.05f64..1.0,
    ) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let cfg = SchedulerConfig::paper();
        let seq = topological_order(&g);
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        for ws in diag.feasible_windows() {
            let naive = diag.choose_reference(&seq, ws).unwrap();
            let fast = diag.choose(&seq, ws).unwrap();
            prop_assert_eq!(fast, &naive[..], "ws={}", ws);
        }
    }

    /// The incremental `CalculateDPF` returns bit-identical
    /// `(enr, cif, dpf)` triples on random in-sweep snapshots: a random
    /// fixed suffix, a random tagged column, free tasks at the initial
    /// column `m−1`.
    #[test]
    fn calculate_dpf_triples_are_bit_identical(
        g in arb_graph(),
        slack in 0.0f64..1.2,
        seed in any::<u64>(),
    ) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack + 0.1);
        let cfg = SchedulerConfig::paper();
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        let seq = topological_order(&g);
        let n = seq.len();
        let m = g.point_count();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let ws = rng.gen_range(0..m.saturating_sub(1).max(1));
            let i = rng.gen_range(0..n);
            let mut stemp = vec![m - 1; n];
            let mut fixed_tasks: Vec<TaskId> = Vec::new();
            for (pos, col) in stemp.iter_mut().enumerate().skip(i + 1) {
                *col = rng.gen_range(ws..m);
                fixed_tasks.push(seq[pos]);
            }
            stemp[i] = rng.gen_range(ws..m);
            let fast = diag.dpf(&seq, &stemp, &fixed_tasks, i, ws);
            let naive = diag.dpf_reference(&seq, &stemp, &fixed_tasks, i, ws);
            prop_assert_eq!(fast, naive, "i={} ws={} stemp={:?}", i, ws, stemp);
        }
    }
}
