//! KiBaM — the Kinetic Battery Model (Manwell & McGowan).
//!
//! A two-well model: charge is split between an *available* well (fraction
//! `c`) that feeds the load directly and a *bound* well that trickles into
//! the available well at rate `k'` proportional to the head difference.
//! KiBaM exhibits both the rate-capacity effect (heavy loads drain the
//! available well faster than the bound well refills it) and the recovery
//! effect (the wells re-equilibrate at rest), making it an independent
//! cross-check on [`crate::rv::RvModel`] — in fact the RV diffusion model is
//! known to subsume KiBaM as a first-order approximation.
//!
//! The state is integrated per profile interval with an exact closed-form
//! solution of the two-well ODE (no numeric drift):
//!
//! ```text
//! y1' = −I + k (h2 − h1),   y2' = −k (h2 − h1)
//! h1 = y1 / c,  h2 = y2 / (1 − c)
//! ```

use crate::model::BatteryModel;
use crate::profile::LoadProfile;
use crate::units::{MilliAmpMinutes, MilliAmps, Minutes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`KibamModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KibamError {
    /// `c` must lie strictly between 0 and 1.
    InvalidCapacityFraction,
    /// `k` must be positive and finite.
    InvalidRate,
    /// Capacity must be positive and finite.
    InvalidCapacity,
}

impl fmt::Display for KibamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidCapacityFraction => write!(f, "capacity fraction c must be in (0, 1)"),
            Self::InvalidRate => write!(f, "rate constant k must be positive and finite"),
            Self::InvalidCapacity => write!(f, "capacity must be positive and finite"),
        }
    }
}

impl std::error::Error for KibamError {}

/// Kinetic battery model with capacity fraction `c`, rate constant `k`
/// (1/min) and total capacity `alpha`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KibamModel {
    c: f64,
    k: f64,
    alpha: MilliAmpMinutes,
}

/// Two-well state: `(available y1, bound y2)` in mA·min.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wells {
    y1: f64,
    y2: f64,
}

impl KibamModel {
    /// Creates a KiBaM with available-charge fraction `c ∈ (0,1)`, diffusion
    /// rate `k > 0` (per minute) and rated capacity `alpha`.
    ///
    /// # Errors
    ///
    /// One of [`KibamError`]'s variants when a parameter is out of range.
    pub fn new(c: f64, k: f64, alpha: MilliAmpMinutes) -> Result<Self, KibamError> {
        if !(c.is_finite() && c > 0.0 && c < 1.0) {
            return Err(KibamError::InvalidCapacityFraction);
        }
        if !(k.is_finite() && k > 0.0) {
            return Err(KibamError::InvalidRate);
        }
        if !(alpha.is_finite() && alpha.value() > 0.0) {
            return Err(KibamError::InvalidCapacity);
        }
        Ok(Self { c, k, alpha })
    }

    /// Capacity fraction `c`.
    pub fn capacity_fraction(&self) -> f64 {
        self.c
    }

    /// Rate constant `k` (1/min).
    pub fn rate(&self) -> f64 {
        self.k
    }

    /// Rated capacity `alpha`.
    pub fn capacity(&self) -> MilliAmpMinutes {
        self.alpha
    }

    /// Integrates the two-well ODE from `wells` for `dt` minutes under
    /// constant current `i`. Exact solution via the substitution
    /// `δ = h1 − h2`, which obeys `δ' = −k' δ − I/c` with
    /// `k' = k (1/c + 1/(1−c))`.
    fn step(&self, wells: Wells, i: f64, dt: f64) -> Wells {
        let c = self.c;
        let kp = self.k * (1.0 / c + 1.0 / (1.0 - c));
        let h1 = wells.y1 / c;
        let h2 = wells.y2 / (1.0 - c);
        let delta0 = h1 - h2;
        // δ(t) = (δ0 + I/(c·k')) e^{−k' t} − I/(c·k')
        let forced = i / (c * kp);
        let delta_t = (delta0 + forced) * (-kp * dt).exp() - forced;
        // Total charge just integrates the load.
        let total = wells.y1 + wells.y2 - i * dt;
        // Recover y1, y2 from total and head difference:
        // y1 = c·(total + (1−c)·δ), y2 = (1−c)·(total − c·δ).
        let y1 = c * (total + (1.0 - c) * delta_t);
        let y2 = (1.0 - c) * (total - c * delta_t);
        Wells { y1, y2 }
    }

    /// Runs the profile until `at`, returning the wells at that instant.
    fn wells_at(&self, profile: &LoadProfile, at: Minutes) -> Wells {
        let a = self.alpha.value();
        let mut wells = Wells {
            y1: self.c * a,
            y2: (1.0 - self.c) * a,
        };
        let t_end = at.value();
        let mut clock = 0.0;
        for iv in profile.intervals() {
            let start = iv.start.value();
            if start >= t_end {
                break;
            }
            if start > clock {
                // Rest gap before this interval.
                let dt = (start - clock).min(t_end - clock);
                wells = self.step(wells, 0.0, dt);
                clock += dt;
                if clock >= t_end {
                    return wells;
                }
            }
            let dt = (iv.end().value().min(t_end) - start).max(0.0);
            wells = self.step(wells, iv.current.value(), dt);
            clock = start + dt;
        }
        if t_end > clock {
            wells = self.step(wells, 0.0, t_end - clock);
        }
        wells
    }

    /// Available-well head `h1` at `at`, normalised so that a fresh battery
    /// reads `alpha` and a dead one reads 0.
    pub fn available_head(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        MilliAmpMinutes::new(self.wells_at(profile, at).y1 / self.c)
    }

    /// Starts an incremental integrator from a fresh battery at `t = 0`.
    /// The stepper-based [`BatteryModel::apparent_charge_sweep`] and
    /// [`BatteryModel::lifetime`] overrides below are built on it; it is
    /// public so request-serving code can march arbitrary load streams
    /// without re-integrating the prefix on every query.
    pub fn stepper(&self) -> KibamStepper {
        KibamStepper::new(self)
    }

    /// The available-well level below which a battery of rated `capacity`
    /// counts as dead: apparent charge `alpha − y1/c >= capacity`.
    fn dead_y1(&self, capacity: MilliAmpMinutes) -> f64 {
        self.c * (self.alpha.value() - capacity.value())
    }
}

/// Incremental KiBaM integrator: carries the two-well state forward one
/// constant-current segment at a time, in closed form (no numeric drift —
/// splitting a segment into sub-steps composes exactly).
///
/// This is the KiBaM analogue of the RV model's `sigma_sweep`: where
/// [`KibamModel::apparent_charge`] re-integrates the whole profile from
/// `t = 0` on every call (O(K) exponentials per query), a stepper pays one
/// exponential per *advance* and remembers where it is.
///
/// ```
/// use batsched_battery::kibam::KibamModel;
/// use batsched_battery::units::{MilliAmpMinutes, MilliAmps, Minutes};
///
/// let m = KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(10_000.0)).unwrap();
/// let mut s = m.stepper();
/// s.advance(MilliAmps::new(400.0), Minutes::new(10.0));
/// s.advance(MilliAmps::ZERO, Minutes::new(50.0)); // rest: recovery
/// assert_eq!(s.time(), Minutes::new(60.0));
/// assert!(s.apparent_charge().value() >= 4_000.0 - 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct KibamStepper {
    model: KibamModel,
    wells: Wells,
    clock: f64,
}

impl KibamStepper {
    /// Fresh battery at `t = 0`.
    pub fn new(model: &KibamModel) -> Self {
        let a = model.alpha.value();
        Self {
            model: model.clone(),
            wells: Wells {
                y1: model.c * a,
                y2: (1.0 - model.c) * a,
            },
            clock: 0.0,
        }
    }

    /// The instant the stepper has integrated up to.
    pub fn time(&self) -> Minutes {
        Minutes::new(self.clock)
    }

    /// Integrates `dt` further minutes of constant `current`. Non-positive
    /// or non-finite `dt` is a no-op (the state never goes backwards).
    pub fn advance(&mut self, current: MilliAmps, dt: Minutes) {
        if dt.is_finite() && dt.value() > 0.0 {
            self.wells = self.model.step(self.wells, current.value(), dt.value());
            self.clock += dt.value();
        }
    }

    /// Available-well head `h1` at the current instant (fresh = `alpha`).
    pub fn available_head(&self) -> MilliAmpMinutes {
        MilliAmpMinutes::new(self.wells.y1 / self.model.c)
    }

    /// Apparent charge `alpha − h1` at the current instant.
    pub fn apparent_charge(&self) -> MilliAmpMinutes {
        self.model.alpha - self.available_head()
    }
}

/// One constant-current stretch of a profile (loaded interval, inter-interval
/// gap, or trailing rest), produced by [`segments_of`].
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: f64,
    len: f64,
    current: f64,
}

/// Flattens a profile into contiguous constant-current segments covering
/// `[0, until]`: loaded intervals, explicit zero-current gaps between them,
/// and a final rest up to `until` (usually `profile.end()`).
fn segments_of(profile: &LoadProfile, until: f64) -> Vec<Segment> {
    let mut segs = Vec::with_capacity(profile.len() * 2 + 1);
    let mut clock = 0.0;
    for iv in profile.intervals() {
        let start = iv.start.value();
        if start >= until {
            break;
        }
        if start > clock {
            segs.push(Segment {
                start: clock,
                len: start - clock,
                current: 0.0,
            });
            clock = start;
        }
        let len = (iv.end().value().min(until) - clock).max(0.0);
        if len > 0.0 {
            segs.push(Segment {
                start: clock,
                len,
                current: iv.current.value(),
            });
            clock += len;
        }
    }
    if until > clock {
        segs.push(Segment {
            start: clock,
            len: until - clock,
            current: 0.0,
        });
    }
    segs
}

impl BatteryModel for KibamModel {
    /// Apparent charge := `alpha − h1` — hits `alpha` exactly when the
    /// available well empties, which is KiBaM's death condition.
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        self.alpha - self.available_head(profile, at)
    }

    fn name(&self) -> &'static str {
        "kibam"
    }

    /// Single-pass sweep via [`KibamStepper`]: ascending sample times cost
    /// O(K + S) closed-form steps total instead of the default's O(K · S)
    /// re-integrations. Out-of-order samples fall back to the per-call path.
    fn apparent_charge_sweep(
        &self,
        profile: &LoadProfile,
        times: &[Minutes],
    ) -> Vec<MilliAmpMinutes> {
        let mut stepper = self.stepper();
        // One flattening of the profile shared with `lifetime` below.
        let until = times
            .iter()
            .filter(|t| t.is_finite())
            .map(|t| t.value())
            .fold(profile.end().value(), f64::max);
        let segs = segments_of(profile, until);
        let mut idx = 0usize;
        times
            .iter()
            .map(|&t| {
                let target = t.value();
                if !target.is_finite() || target < stepper.clock {
                    // Out-of-contract sample (unsorted or non-finite):
                    // random access, identical to the per-call path.
                    return self.apparent_charge(profile, t);
                }
                while stepper.clock < target {
                    let before = stepper.clock;
                    if let Some(seg) = segs.get(idx) {
                        let seg_end = seg.start + seg.len;
                        let dt = seg_end.min(target) - stepper.clock;
                        stepper.advance(MilliAmps::new(seg.current), Minutes::new(dt));
                        // Advance to the next segment when this one is
                        // exhausted — or when float underflow made no
                        // progress, so the loop always terminates.
                        if stepper.clock >= seg_end || stepper.clock <= before {
                            idx += 1;
                        }
                    } else {
                        // Beyond every segment: rest to the sample time.
                        stepper.advance(MilliAmps::ZERO, Minutes::new(target - stepper.clock));
                        break;
                    }
                }
                stepper.apparent_charge()
            })
            .collect()
    }

    /// Incremental lifetime: marches the profile segment by segment carrying
    /// the two-well state, so each in-segment probe is a *single* closed-form
    /// step from the segment's start instead of a full re-integration —
    /// O(K + S) exponentials versus the default scan's O(K · S). The crossing
    /// is sampled at the default scan's density and refined by bisection.
    fn lifetime(&self, profile: &LoadProfile, capacity: MilliAmpMinutes) -> Option<Minutes> {
        let end = profile.end();
        if end == Minutes::ZERO {
            return None;
        }
        let dead_y1 = self.dead_y1(capacity);
        let mut wells = Wells {
            y1: self.c * self.alpha.value(),
            y2: (1.0 - self.c) * self.alpha.value(),
        };
        if wells.y1 <= dead_y1 {
            return Some(Minutes::ZERO);
        }
        let total = end.value();
        for seg in segments_of(profile, total) {
            // Match the default scan's sampling density within the segment.
            let samples = ((seg.len / total) * crate::model::LIFETIME_SCAN_STEPS as f64).ceil();
            let samples = (samples as usize).clamp(8, crate::model::LIFETIME_SCAN_STEPS);
            let step = seg.len / samples as f64;
            let mut prev_dt = 0.0;
            for k in 1..=samples {
                let dt = if k == samples {
                    seg.len
                } else {
                    step * k as f64
                };
                let probe = self.step(wells, seg.current, dt);
                if probe.y1 <= dead_y1 {
                    // First dead sample: bisect (prev_dt, dt] from the
                    // segment-start state — each probe is one step call.
                    let mut lo = prev_dt;
                    let mut hi = dt;
                    for _ in 0..crate::model::BISECTION_ITERS {
                        let mid = 0.5 * (lo + hi);
                        if self.step(wells, seg.current, mid).y1 <= dead_y1 {
                            hi = mid;
                        } else {
                            lo = mid;
                        }
                    }
                    return Some(Minutes::new(seg.start + hi));
                }
                prev_dt = dt;
            }
            wells = self.step(wells, seg.current, seg.len);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MilliAmps;

    fn model() -> KibamModel {
        KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(10_000.0)).unwrap()
    }

    fn min(v: f64) -> Minutes {
        Minutes::new(v)
    }
    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    #[test]
    fn constructor_validates() {
        let cap = MilliAmpMinutes::new(100.0);
        assert!(KibamModel::new(0.0, 0.1, cap).is_err());
        assert!(KibamModel::new(1.0, 0.1, cap).is_err());
        assert!(KibamModel::new(0.5, 0.0, cap).is_err());
        assert!(KibamModel::new(0.5, 0.1, MilliAmpMinutes::ZERO).is_err());
        assert!(KibamModel::new(0.5, 0.1, cap).is_ok());
    }

    #[test]
    fn fresh_battery_reads_zero_apparent_charge() {
        let m = model();
        let p = LoadProfile::new();
        assert!(m.apparent_charge(&p, Minutes::ZERO).value().abs() < 1e-9);
    }

    #[test]
    fn charge_conservation() {
        // Total well content must equal alpha − delivered charge.
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(100.0)), (min(5.0), ma(300.0))]).unwrap();
        let wells = m.wells_at(&p, p.end());
        let total = wells.y1 + wells.y2;
        let expect = m.capacity().value() - p.direct_charge().value();
        assert!((total - expect).abs() < 1e-6, "total {total} vs {expect}");
    }

    #[test]
    fn apparent_exceeds_direct_under_load() {
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let apparent = m.apparent_charge(&p, p.end()).value();
        assert!(apparent > p.direct_charge().value());
    }

    #[test]
    fn recovery_during_rest() {
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let at_end = m.apparent_charge(&p, min(10.0)).value();
        let rested = m.apparent_charge(&p, min(60.0)).value();
        assert!(rested < at_end, "rest must recover capacity");
        // Never below the delivered charge.
        assert!(rested >= p.direct_charge().value() - 1e-6);
    }

    #[test]
    fn equilibrium_long_after_load_equals_direct_charge() {
        let m = model();
        let p = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let rested = m.apparent_charge(&p, min(10_000.0)).value();
        assert!((rested - p.direct_charge().value()).abs() < 1e-6);
    }

    #[test]
    fn order_sensitivity_matches_rv_intuition() {
        let m = model();
        let late = LoadProfile::from_steps([(min(20.0), ma(50.0)), (min(5.0), ma(500.0))]).unwrap();
        let early = late.reversed();
        let a = m.apparent_charge(&early, early.end()).value();
        let b = m.apparent_charge(&late, late.end()).value();
        assert!(a < b, "heavy-first {a} should beat heavy-last {b}");
    }

    #[test]
    fn lifetime_is_shorter_at_heavier_load() {
        let m = model();
        let cap = m.capacity();
        let heavy = LoadProfile::from_steps([(min(10_000.0), ma(500.0))]).unwrap();
        let light = LoadProfile::from_steps([(min(10_000.0), ma(100.0))]).unwrap();
        let lt_heavy = m.lifetime(&heavy, cap).unwrap().value();
        let lt_light = m.lifetime(&light, cap).unwrap().value();
        assert!(lt_heavy < lt_light);
        // Heavier-than-rated load dies before the ideal-battery prediction.
        assert!(lt_heavy < cap.value() / 500.0);
    }

    /// Delegates `apparent_charge` only, so the *default* trait `lifetime`
    /// and `apparent_charge_sweep` run — the reference the incremental
    /// overrides are checked against.
    struct GenericKibam<'a>(&'a KibamModel);
    impl BatteryModel for GenericKibam<'_> {
        fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
            self.0.apparent_charge(profile, at)
        }
        fn name(&self) -> &'static str {
            "kibam-generic"
        }
    }

    fn mixed_profile() -> LoadProfile {
        let mut p = LoadProfile::new();
        p.push(min(5.0), ma(300.0)).unwrap();
        p.push_rest(min(7.0)).unwrap();
        p.push(min(10.0), ma(450.0)).unwrap();
        p.push(min(3.0), ma(80.0)).unwrap();
        p.push_rest(min(15.0)).unwrap();
        p
    }

    #[test]
    fn stepper_substeps_compose_exactly() {
        let m = model();
        let mut one = m.stepper();
        one.advance(ma(250.0), min(8.0));
        let mut many = m.stepper();
        for _ in 0..16 {
            many.advance(ma(250.0), min(0.5));
        }
        assert_eq!(one.time(), many.time());
        assert!(
            (one.apparent_charge().value() - many.apparent_charge().value()).abs() < 1e-8,
            "closed-form steps must compose"
        );
        // Non-positive advances are no-ops.
        let before = many.apparent_charge();
        many.advance(ma(100.0), min(0.0));
        many.advance(ma(100.0), min(-3.0));
        many.advance(ma(100.0), min(f64::NAN));
        assert_eq!(many.apparent_charge(), before);
    }

    #[test]
    fn stepper_matches_random_access_path() {
        let m = model();
        let p = mixed_profile();
        let mut s = m.stepper();
        s.advance(ma(300.0), min(5.0));
        s.advance(ma(0.0), min(7.0));
        s.advance(ma(450.0), min(4.5));
        let direct = m.apparent_charge(&p, min(16.5)).value();
        assert!((s.apparent_charge().value() - direct).abs() < 1e-8);
    }

    #[test]
    fn sweep_override_matches_per_call_integration() {
        let m = model();
        let p = mixed_profile();
        let times: Vec<Minutes> = (0..=80).map(|k| min(k as f64 * 0.5)).collect();
        let swept = m.apparent_charge_sweep(&p, &times);
        for (t, got) in times.iter().zip(&swept) {
            let want = m.apparent_charge(&p, *t).value();
            assert!(
                (got.value() - want).abs() < 1e-8,
                "t={t}: sweep {got} vs direct {want}"
            );
        }
        // Mid-interval and boundary-exact sample times both covered above
        // (intervals start at 0, 12, 22 and times step by 0.5).
    }

    #[test]
    fn sweep_override_tolerates_unsorted_and_nonfinite_grids() {
        let m = model();
        let p = mixed_profile();
        let times = [min(20.0), min(3.0), min(f64::INFINITY), min(35.0), min(1.0)];
        let swept = m.apparent_charge_sweep(&p, &times);
        for (t, got) in times.iter().zip(&swept) {
            let want = m.apparent_charge(&p, *t).value();
            // The per-call path yields NaN at t = ∞ (0·∞ in the closed
            // form); the contract is only that the sweep matches it.
            assert!(
                (got.value() - want).abs() < 1e-8 || (got.value().is_nan() && want.is_nan()),
                "t={t}: sweep {got} vs direct {want}"
            );
        }
    }

    #[test]
    fn incremental_lifetime_matches_generic_scan() {
        let m = model();
        // Capacities from instantly-fatal to survives-everything.
        let p = LoadProfile::from_steps([
            (min(300.0), ma(400.0)),
            (min(100.0), ma(0.0)),
            (min(400.0), ma(500.0)),
        ])
        .unwrap();
        for cap in [2_000.0, 10_000.0, 40_000.0, 120_000.0, 500_000.0] {
            let fast = m.lifetime(&p, MilliAmpMinutes::new(cap));
            let slow = GenericKibam(&m).lifetime(&p, MilliAmpMinutes::new(cap));
            match (fast, slow) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(
                    (a.value() - b.value()).abs() < 1e-4,
                    "cap {cap}: incremental {a} vs generic {b}"
                ),
                other => panic!("cap {cap}: disagree on survival: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_lifetime_death_during_recovery_gap_matches_generic() {
        // Death can also occur mid-rest never happens (apparent falls at
        // rest) — but a *later light interval* after deep discharge is the
        // tricky non-monotone case; check it agrees with the generic scan.
        let m = model();
        let p = LoadProfile::from_steps([
            (min(200.0), ma(480.0)),
            (min(50.0), ma(0.0)),
            (min(2_000.0), ma(60.0)),
        ])
        .unwrap();
        for cap in [60_000.0, 90_000.0, 150_000.0] {
            let fast = m.lifetime(&p, MilliAmpMinutes::new(cap));
            let slow = GenericKibam(&m).lifetime(&p, MilliAmpMinutes::new(cap));
            match (fast, slow) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(
                    (a.value() - b.value()).abs() < 1e-3,
                    "cap {cap}: incremental {a} vs generic {b}"
                ),
                other => panic!("cap {cap}: disagree on survival: {other:?}"),
            }
        }
    }

    #[test]
    fn step_through_gap_equals_explicit_rest() {
        let m = model();
        let mut with_gap = LoadProfile::new();
        with_gap.push(min(5.0), ma(300.0)).unwrap();
        with_gap.push_rest(min(7.0)).unwrap();
        with_gap.push(min(5.0), ma(300.0)).unwrap();

        let mut explicit = LoadProfile::new();
        explicit.insert(min(0.0), min(5.0), ma(300.0)).unwrap();
        explicit.insert(min(12.0), min(5.0), ma(300.0)).unwrap();

        let a = m.apparent_charge(&with_gap, with_gap.end()).value();
        let b = m.apparent_charge(&explicit, explicit.end()).value();
        assert!((a - b).abs() < 1e-9);
    }
}
