//! Reproduces **Table 1** of the paper: the G3 instance data (15 tasks ×
//! 5 design points), regenerated from the published scaling rule and
//! diffed element-wise against the published table.

#![forbid(unsafe_code)]

use batsched_bench::Table;
use batsched_taskgraph::paper::{g3, g3_synthesized, G3_FACTORS, G3_TABLE1};
use batsched_taskgraph::PointId;

fn main() {
    println!("== Table 1: data for example task graph G3 ==");
    println!("synthesis rule: I[i][j] = round(I1_i · s_j^3), D[i][j] = round1(Dwc_i · s_(m+1-j)),");
    println!("scaling factors s = {G3_FACTORS:?}\n");

    let printed = g3();
    let synth = g3_synthesized();

    let mut t = Table::new(["Task", "DP1", "DP2", "DP3", "DP4", "DP5", "Parents"]);
    for (idx, (name, _, parents)) in G3_TABLE1.iter().enumerate() {
        let tid = batsched_taskgraph::TaskId(idx);
        let mut cells = vec![name.to_string()];
        for j in 0..5 {
            let p = synth.point(tid, PointId(j));
            cells.push(format!(
                "{:>4.0} mA {:>5.1} m",
                p.current.value(),
                p.duration.value()
            ));
        }
        cells.push(if parents.is_empty() {
            "-".into()
        } else {
            parents
                .iter()
                .map(|&p| G3_TABLE1[p].0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
        t.row(cells);
    }
    print!("{}", t.render());

    let mut mismatches = 0;
    for tid in printed.task_ids() {
        for j in 0..5 {
            let a = printed.point(tid, PointId(j));
            let b = synth.point(tid, PointId(j));
            if (a.current.value() - b.current.value()).abs() > 1e-9
                || (a.duration.value() - b.duration.value()).abs() > 1e-9
            {
                mismatches += 1;
                println!(
                    "MISMATCH {} DP{}: published {} vs synthesised {}",
                    printed.name(tid),
                    j + 1,
                    a,
                    b
                );
            }
        }
    }
    println!(
        "\nverdict: {} of 75 cells match the published Table 1 exactly",
        75 - mismatches
    );
    assert_eq!(mismatches, 0, "Table 1 must regenerate exactly");
}
