//! Behavioural tests for the scheduling service: wire-format round trips
//! (property-based), cache-hit bit-equivalence, multi-client concurrency,
//! malformed-input robustness, backpressure, and the HTTP frontend.

use batsched_core::SolverWorkspace;
use batsched_service::prelude::*;
use batsched_service::wire::{self, ScheduleResponse};
use batsched_service::Service;
use batsched_taskgraph::paper::{g2, g3};
use batsched_taskgraph::synth::{layered, Rounding, ScalingScheme, TaskParams};
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn synth_graph(n_layers: usize, m: usize, seed: u64) -> TaskGraph {
    let params = TaskParams {
        current_range: (100.0, 900.0),
        duration_range: (2.0, 12.0),
        factors: (0..m)
            .map(|j| 1.0 - 0.67 * j as f64 / (m - 1).max(1) as f64)
            .collect(),
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::PAPER,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    layered(n_layers, 4, 0.35, &params, &mut rng).expect("valid generator config")
}

fn loose_deadline(g: &TaskGraph) -> f64 {
    let lo = batsched_taskgraph::analysis::min_makespan(g).value();
    let hi = batsched_taskgraph::analysis::max_makespan(g).value();
    lo + (hi - lo) * 0.7
}

fn request_for(g: &TaskGraph, deadline: f64) -> ScheduleRequest {
    ScheduleRequest::new(g.clone(), deadline)
}

fn body_of(req: &ScheduleRequest) -> String {
    serde_json::to_string(req).expect("requests serialise")
}

// ------------------------------------------------------------ wire format

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// parse(render(x)) == x for requests over synthetic graphs with
    /// varying models/options, and the canonical hash is stable across the
    /// round trip (the cache-key contract).
    #[test]
    fn wire_round_trip(seed in 0u64..1_000_000, m in 2usize..6, layers in 2usize..5, variant in 0usize..4) {
        let g = synth_graph(layers, m, seed);
        let mut req = request_for(&g, loose_deadline(&g));
        match variant {
            0 => {}
            1 => req.model = Some(ModelSpec::Kibam { c: 0.5, k: 0.05, alpha: 50_000.0 }),
            2 => { req.model = Some(ModelSpec::Ideal); req.capacity = Some(30_000.0); }
            _ => { req.max_iterations = Some(7); req.capacity = Some(80_000.0); }
        }
        let rendered = body_of(&req);
        let parsed = wire::parse_request(&rendered).expect("own rendering parses");
        prop_assert_eq!(&parsed, &req);
        prop_assert_eq!(parsed.content_hash(), req.content_hash());
        // Canonical form is a fixed point.
        let canon = req.canonical();
        prop_assert_eq!(canon.canonical(), canon);
    }
}

// ------------------------------------------------------- cache behaviour

#[test]
fn cache_hit_is_bit_identical_to_recompute() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    let body = body_of(&request_for(&g3(), 230.0));
    let cold = svc.call(body.clone());
    assert!(matches!(
        cold.disposition,
        Disposition::Ok { cached: false }
    ));

    // Semantically identical request, differently spelled: defaults made
    // explicit. Must hit the same cache slot and replay the same bytes.
    let mut spelled = request_for(&g3(), 230.0);
    spelled.model = Some(ModelSpec::default_rv());
    spelled.max_iterations = Some(wire::DEFAULT_MAX_ITERATIONS);
    let warm = svc.call(body_of(&spelled));
    assert!(
        matches!(warm.disposition, Disposition::Ok { cached: true }),
        "canonicalised duplicate must hit"
    );
    assert_eq!(cold.body, warm.body, "hit must be bit-identical");

    // A cold recompute (direct solve, no service or cache in the way) of
    // the same request produces the same bytes — the cache changes
    // latency, never content.
    let req = wire::parse_request(&body).unwrap();
    let recomputed = batsched_service::solve(&req, &mut SolverWorkspace::new()).unwrap();
    let recomputed = serde_json::to_string(&recomputed).unwrap();
    assert_eq!(recomputed, cold.body);
    svc.shutdown();
}

// --------------------------------------------------------- concurrency

#[test]
fn concurrent_clients_each_get_valid_schedules() {
    let svc = Arc::new(Service::start(ServiceConfig {
        workers: 3,
        queue_capacity: 128,
        cache_capacity: 64,
        ..ServiceConfig::default()
    }));
    // Mix of unique and duplicate requests across 8 client threads.
    let graphs: Vec<(TaskGraph, f64)> = vec![
        (g2(), 75.0),
        (g3(), 230.0),
        (synth_graph(3, 3, 7), loose_deadline(&synth_graph(3, 3, 7))),
        (
            synth_graph(4, 4, 11),
            loose_deadline(&synth_graph(4, 4, 11)),
        ),
    ];
    let clients: Vec<_> = (0..8)
        .map(|k| {
            let svc = Arc::clone(&svc);
            let graphs = graphs.clone();
            std::thread::spawn(move || {
                let mut answers = Vec::new();
                for round in 0..3 {
                    let (g, d) = &graphs[(k + round) % graphs.len()];
                    let reply = svc.call(body_of(&request_for(g, *d)));
                    assert!(
                        matches!(reply.disposition, Disposition::Ok { .. }),
                        "client {k} round {round}: {}",
                        reply.body
                    );
                    let resp: ScheduleResponse =
                        serde_json::from_str(&reply.body).expect("schedule response");
                    // Validate the schedule against its own graph.
                    let schedule = batsched_core::Schedule::new(
                        resp.order.iter().map(|&i| TaskId(i)).collect(),
                        resp.assignment.iter().map(|&j| PointId(j)).collect(),
                    );
                    schedule
                        .validate(g, Some(batsched_battery::units::Minutes::new(*d)))
                        .expect("valid schedule under deadline");
                    answers.push((resp.key.clone(), reply.body));
                }
                answers
            })
        })
        .collect();
    let mut by_key: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for c in clients {
        for (key, body) in c.join().expect("client thread") {
            // Same key ⇒ same bytes, across threads and cache states.
            let prev = by_key.entry(key).or_insert_with(|| body.clone());
            assert_eq!(*prev, body);
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.received, 24);
    assert_eq!(stats.solved + stats.cache_hits, 24);
    assert!(
        stats.cache_hits >= 16,
        "duplicates must mostly hit: {stats:?}"
    );
    svc.shutdown();
}

// ------------------------------------------------- malformed / backpressure

#[test]
fn malformed_stream_yields_typed_errors_never_panics() {
    let svc = Service::start(ServiceConfig::default());
    let ok = body_of(&request_for(&g2(), 75.0));
    let cases: Vec<(String, &str)> = vec![
        ("".into(), "bad_json"),
        ("{".into(), "bad_json"),
        ("[]".into(), "bad_request"),
        (ok.replace("\"v\":1", "\"v\":3"), "unsupported_version"),
        (
            ok.replace("\"deadline\":75", "\"deadline\":-1"),
            "invalid_deadline",
        ),
        (
            ok.replace("\"deadline\":75", "\"deadline\":2"),
            "infeasible",
        ),
        (
            ok.replace("\"edges\":[", "\"edges\":[[0,1],[0,1],"),
            "invalid_graph",
        ),
        (
            ok.replace(
                "\"model\":null",
                "\"model\":{\"Kibam\":{\"c\":2.0,\"k\":0.1,\"alpha\":1.0}}",
            ),
            "invalid_model",
        ),
    ];
    for (doc, code) in cases {
        let reply = svc.call(doc.clone());
        assert!(
            matches!(
                reply.disposition,
                Disposition::ClientError | Disposition::Internal
            ),
            "doc {doc}: {:?}",
            reply.disposition
        );
        let err: ErrorResponse = serde_json::from_str(&reply.body).expect("typed error body");
        assert_eq!(err.error, code, "doc: {doc}\nbody: {}", reply.body);
    }
    // The service still works afterwards.
    let fine = svc.call(ok);
    assert!(matches!(fine.disposition, Disposition::Ok { .. }));
    svc.shutdown();
}

#[test]
fn full_queue_rejects_with_typed_overload() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    // Unique moderately hard instances so the single worker stays busy
    // (every request is a distinct graph, so each one is a cold solve).
    let mut receivers = Vec::new();
    let mut rejected = 0usize;
    for seed in 0..200u64 {
        let g = synth_graph(5, 5, seed);
        let body = body_of(&request_for(&g, loose_deadline(&g)));
        match svc.submit(body) {
            Ok(rx) => receivers.push(rx),
            Err(reply) => {
                assert!(matches!(reply.disposition, Disposition::Overloaded));
                let err: ErrorResponse =
                    serde_json::from_str(&reply.body).expect("typed overload body");
                assert_eq!(err.error, "overloaded");
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "a 1-deep queue must reject under a 200-burst");
    for rx in receivers {
        let reply = rx.recv().expect("accepted requests are answered");
        assert!(matches!(reply.disposition, Disposition::Ok { .. }));
    }
    assert_eq!(svc.stats().rejected, rejected as u64);
    svc.shutdown();
}

// ----------------------------------------------------------------- HTTP

fn http_call(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header/body split");
    (status, head.to_string(), payload.to_string())
}

#[test]
fn http_frontend_routes_and_shuts_down() {
    let svc = Arc::new(Service::start(ServiceConfig::default()));
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let (code, _, body) = http_call(addr, "GET", "/healthz", "");
    assert_eq!(code, 200);
    assert!(body.contains("true"));

    let req = body_of(&request_for(&g2(), 75.0));
    let (code, head, payload) = http_call(addr, "POST", "/v1/schedule", &req);
    assert_eq!(code, 200, "{payload}");
    assert!(head.contains("X-Cache: miss"), "{head}");
    let resp: ScheduleResponse = serde_json::from_str(&payload).expect("schedule body");
    assert!(resp.makespan <= 75.0 + 1e-9);

    let (code, head, cached) = http_call(addr, "POST", "/v1/schedule", &req);
    assert_eq!(code, 200);
    assert!(head.contains("X-Cache: hit"), "{head}");
    assert_eq!(cached, payload, "HTTP hit replays identical bytes");

    let (code, _, err) = http_call(addr, "POST", "/v1/schedule", "{ nope");
    assert_eq!(code, 400);
    assert!(err.contains("bad_json"));

    let (code, _, stats) = http_call(addr, "GET", "/v1/stats", "");
    assert_eq!(code, 200);
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");

    let (code, _, miss) = http_call(addr, "GET", "/v1/nope", "");
    assert_eq!(code, 404);
    assert!(miss.contains("not_found"));

    let (code, _, down) = http_call(addr, "POST", "/v1/shutdown", "");
    assert_eq!(code, 200);
    assert!(down.contains("shutting_down"));
    server.wait(); // returns because the endpoint tripped the flag
    svc.shutdown();
}
