//! # batsched-core
//!
//! The primary contribution of *"An Iterative Algorithm for Battery-Aware
//! Task Scheduling on Portable Computing Platforms"* (Khan & Vemuri, DATE
//! 2005): simultaneous task sequencing and design-point assignment that
//! minimises Rakhmatov–Vrudhula battery charge σ subject to a deadline.
//!
//! The public surface mirrors the paper's structure:
//!
//! * [`schedule()`] — `BatteryAwareSQNDPAllocation`, the iterative driver;
//! * [`sequence::initial_sequence`] — `SequenceDecEnergy`;
//! * [`sequence::weighted_sequence`] — `FindWeightedSequence` (eq. 4);
//! * [`search::FactorBreakdown`] / [`search::WindowRecord`] — the
//!   suitability factors `B = SR + CR + ENR + CIF + DPF` and the window
//!   machinery of Figures 1–3;
//! * [`Solution::trace`] — per-iteration records from which the paper's
//!   Tables 2 and 3 regenerate.
//!
//! ```
//! use batsched_core::{schedule, SchedulerConfig};
//! use batsched_battery::units::Minutes;
//!
//! let graph = batsched_taskgraph::paper::g2();
//! let solution = schedule(&graph, Minutes::new(75.0), &SchedulerConfig::paper())?;
//! println!("σ = {}, ends at {}", solution.cost, solution.makespan);
//! # Ok::<(), batsched_core::SchedulerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod error;
pub mod prof;
pub mod refine;
pub mod report;
pub mod schedule;
pub mod search;
pub mod sequence;

pub use algorithm::{schedule, schedule_in, IterationRecord, Solution, SolverWorkspace};
pub use config::{FactorMask, InitialWeight, SchedulerConfig};
pub use error::SchedulerError;
pub use prof::Prof;
pub use refine::{
    refine_schedule, refine_schedule_in, schedule_refined, schedule_refined_in, RefineStats,
    Refined,
};
pub use schedule::{battery_cost_of, profile_of, EngineCost, Schedule, ScheduleError};
pub use search::{FactorBreakdown, WindowRecord};

/// Convenient glob-import of the types almost every user needs.
pub mod prelude {
    pub use crate::algorithm::{schedule, schedule_in, Solution, SolverWorkspace};
    pub use crate::config::{FactorMask, InitialWeight, SchedulerConfig};
    pub use crate::error::SchedulerError;
    pub use crate::schedule::Schedule;
    pub use batsched_battery::units::{MilliAmpMinutes, Minutes};
}
