//! The JSONL frontend: one request document per input line, one response
//! document per output line, in order. Works over any `BufRead`/`Write`
//! pair — the CLI wires it to stdin/stdout, tests to in-memory buffers.

use crate::service::{Disposition, Service};
use crate::trace::{self, Span};
use std::io::{self, BufRead, Write};
use std::time::Instant;

/// What a JSONL session processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Lines answered (blank lines are skipped, not counted).
    pub requests: u64,
    /// Answers that were typed errors (client, overload, timeout or
    /// internal).
    pub errors: u64,
    /// Errors that were deadline expiries specifically (also counted in
    /// `errors`).
    pub timeouts: u64,
    /// Answers served from the result cache.
    pub cache_hits: u64,
}

/// Streams requests from `input` through `service`, writing one response
/// line per request to `output` (flushed per line, so pipes see answers
/// promptly). Blank lines are skipped. Returns when `input` reaches EOF.
///
/// # Errors
///
/// Propagates I/O errors from either side; the service itself never fails
/// a session (bad requests become typed error lines).
pub fn run_jsonl<R: BufRead, W: Write>(
    service: &Service,
    input: R,
    output: &mut W,
) -> io::Result<JsonlSummary> {
    let mut summary = JsonlSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let trace_id = trace::make_trace_id(line.as_bytes(), service.next_trace_seq());
        let reply = service.call(line);
        summary.requests += 1;
        match reply.disposition {
            Disposition::Ok { cached } => summary.cache_hits += u64::from(cached),
            Disposition::Timeout => {
                summary.errors += 1;
                summary.timeouts += 1;
            }
            _ => summary.errors += 1,
        }
        let write_started = Instant::now();
        output.write_all(reply.body.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        let write_us = write_started.elapsed().as_micros() as u64;
        let total_us = started.elapsed().as_micros() as u64;
        service.log_span(
            &Span::new(trace_id, &reply, 0, write_us, total_us)
                .with_fleet_worker(service.fleet_worker()),
        );
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::wire::ScheduleRequest;
    use batsched_taskgraph::paper::g2;

    #[test]
    fn jsonl_session_answers_in_order() {
        let svc = Service::start(ServiceConfig::default());
        let req = serde_json::to_string(&ScheduleRequest::new(g2(), 75.0)).unwrap();
        let input = format!("{req}\n\n{req}\nnot json\n");
        let mut out = Vec::new();
        let summary = run_jsonl(&svc, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.cache_hits, 1);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], lines[1], "duplicate answered identically");
        assert!(lines[2].contains("bad_json"));
        svc.shutdown();
    }
}
