//! Property-based tests for the task-graph substrate: every generator
//! produces valid DAGs, every list schedule is topological, serde round
//! trips, and the pareto filter upholds the matrix conventions.

use batsched_battery::units::{MilliAmps, Minutes};
use batsched_taskgraph::analysis::{column_time, max_makespan, min_makespan, GraphStats};
use batsched_taskgraph::design_point::pareto_filter;
use batsched_taskgraph::synth::{
    chain, fork_join, layered, random_dag, series_parallel, synthesize_points, Rounding,
    ScalingScheme, TaskParams,
};
use batsched_taskgraph::topo::{
    descendants_mask, for_each_topological_order, for_each_topological_order_reference,
    is_topological, list_schedule, topological_order,
};
use batsched_taskgraph::{DesignPoint, EnergyMetric, PointId, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = TaskParams> {
    (2usize..6, 50.0f64..900.0, 1.0f64..20.0).prop_map(|(m, i_hi, d_hi)| TaskParams {
        current_range: (10.0, 10.0 + i_hi),
        duration_range: (0.5, 0.5 + d_hi),
        factors: (0..m)
            .map(|j| 1.0 - 0.6 * j as f64 / (m - 1) as f64)
            .collect(),
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::EXACT,
    })
}

/// One graph from each family, driven by a seed.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (arb_params(), any::<u64>(), 0usize..5, 2usize..10).prop_map(|(params, seed, family, n)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => chain(n, &params, &mut rng),
            1 => fork_join(&[n], &params, &mut rng),
            2 => layered(3, n.max(2) / 2 + 1, 0.4, &params, &mut rng),
            3 => series_parallel(2, &params, &mut rng),
            _ => random_dag(n + 2, 0.3, &params, &mut rng),
        }
        .expect("generator parameters are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The in-place order generator visits exactly the orders the retained
    /// recursive reference visits, in the same sequence, under a binding
    /// enumeration cap — every one a valid topological order.
    #[test]
    fn order_generator_matches_reference(g in arb_graph(), limit in 1usize..40) {
        let mut fast = Vec::new();
        let nf = for_each_topological_order(&g, limit, |o| fast.push(o.to_vec()));
        let mut slow = Vec::new();
        let ns = for_each_topological_order_reference(&g, limit, |o| slow.push(o.to_vec()));
        prop_assert_eq!(nf, ns);
        prop_assert_eq!(&fast, &slow);
        prop_assert!(nf <= limit);
        for o in &fast {
            prop_assert!(is_topological(&g, o));
        }
    }

    /// Every generated graph is a valid DAG with uniform design points and
    /// pareto-ordered rows.
    #[test]
    fn generators_produce_valid_graphs(g in arb_graph()) {
        let order = topological_order(&g);
        prop_assert!(is_topological(&g, &order));
        let m = g.point_count();
        for t in g.task_ids() {
            let pts = &g.task(t).points;
            prop_assert_eq!(pts.len(), m);
            for w in pts.windows(2) {
                prop_assert!(w[0].duration.value() <= w[1].duration.value());
                prop_assert!(w[0].current.value() >= w[1].current.value());
            }
        }
    }

    /// Column times are monotone in the column index, so the window
    /// feasibility scan of the scheduler is well-founded.
    #[test]
    fn column_times_are_monotone(g in arb_graph()) {
        for k in 1..g.point_count() {
            prop_assert!(
                column_time(&g, PointId(k - 1)).value()
                    <= column_time(&g, PointId(k)).value() + 1e-9
            );
        }
        prop_assert!(min_makespan(&g).value() <= max_makespan(&g).value() + 1e-9);
    }

    /// Any weight function yields a topological list schedule.
    #[test]
    fn list_schedules_are_topological(g in arb_graph(), seed in any::<u64>()) {
        let weights: Vec<f64> = {
            let mut x = seed | 1;
            g.task_ids().map(|_| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x % 1000) as f64
            }).collect()
        };
        let order = list_schedule(&g, |_, t| weights[t.index()]);
        prop_assert!(is_topological(&g, &order));
    }

    /// Serde round-trips preserve the graph exactly.
    #[test]
    fn serde_round_trip(g in arb_graph()) {
        let json = batsched_taskgraph::io::to_json(&g);
        let back = batsched_taskgraph::io::from_json(&json).unwrap();
        prop_assert_eq!(back, g);
    }

    /// Descendant masks are reflexive and edge-consistent.
    #[test]
    fn descendants_are_consistent(g in arb_graph()) {
        for t in g.task_ids() {
            let mask = descendants_mask(&g, t);
            prop_assert!(mask[t.index()]);
            for (u, v) in g.edges() {
                if mask[u.index()] {
                    prop_assert!(mask[v.index()], "edge {u}->{v} escapes the mask");
                }
            }
        }
    }

    /// GraphStats extrema really bound every design point.
    #[test]
    fn stats_bound_everything(g in arb_graph()) {
        let s = GraphStats::compute(&g, EnergyMetric::Charge);
        for t in g.task_ids() {
            for p in &g.task(t).points {
                prop_assert!(p.current.value() >= s.i_min.value() - 1e-9);
                prop_assert!(p.current.value() <= s.i_max.value() + 1e-9);
                let cr = s.current_ratio(p.current);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&cr));
            }
        }
    }

    /// The pareto filter is idempotent and its output obeys the conventions.
    #[test]
    fn pareto_filter_invariants(
        raw in prop::collection::vec((1.0f64..1000.0, 0.1f64..50.0), 1..15)
    ) {
        let pts: Vec<DesignPoint> = raw
            .into_iter()
            .map(|(i, d)| DesignPoint::new(MilliAmps::new(i), Minutes::new(d)))
            .collect();
        let once = pareto_filter(pts.clone());
        let twice = pareto_filter(once.clone());
        prop_assert_eq!(&once, &twice, "idempotent");
        for w in once.windows(2) {
            prop_assert!(w[0].duration.value() <= w[1].duration.value());
            prop_assert!(w[0].current.value() > w[1].current.value());
        }
        // Nothing in the output is dominated by anything in the input.
        for kept in &once {
            for p in &pts {
                let dominates = p.duration.value() <= kept.duration.value()
                    && p.current.value() < kept.current.value();
                prop_assert!(!dominates, "{kept} dominated by {p}");
            }
        }
    }

    /// Synthesised design-point rows always obey the matrix conventions.
    #[test]
    fn synthesis_rows_are_pareto(
        i_base in 1.0f64..2000.0,
        d_base in 0.1f64..100.0,
        m in 2usize..8,
        inverse in any::<bool>(),
    ) {
        let factors: Vec<f64> = (0..m).map(|j| 2.0 - 1.5 * j as f64 / (m - 1) as f64).collect();
        let scheme = if inverse { ScalingScheme::InverseDuration } else { ScalingScheme::ReversedDuration };
        let pts = synthesize_points(i_base, d_base, &factors, scheme, Rounding::EXACT).unwrap();
        prop_assert_eq!(pts.len(), m);
        for w in pts.windows(2) {
            prop_assert!(w[0].duration.value() < w[1].duration.value() + 1e-12);
            prop_assert!(w[0].current.value() > w[1].current.value() - 1e-12);
        }
    }
}
