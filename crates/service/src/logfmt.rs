//! Structured log emission: severity levels, the `--log-json` sink, and
//! the rate-limited JSONL span writer.
//!
//! One request = one JSON line (see [`crate::trace::Span`]). The writer is
//! deliberately boring: a mutex around a buffered sink, a per-second token
//! window so a request flood cannot turn the log into the bottleneck, and
//! a dropped-line note whenever the limiter engaged so the gap is visible
//! in the log itself rather than silent.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The service failed a request for an internal reason.
    Error,
    /// The request failed in a way the caller (or operator) should see.
    Warn,
    /// A request completed normally.
    Info,
    /// Extra detail; nothing emits at this level yet, but the filter
    /// accepts it so `--log-level debug` is future-proof.
    Debug,
}

impl Level {
    /// Parses the CLI spelling (`error`, `warn`, `info`, `debug`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Where span lines go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogTarget {
    /// Interleave with diagnostics on standard error.
    Stderr,
    /// Append to a file (created if missing).
    File(PathBuf),
}

impl LogTarget {
    /// Parses the CLI spelling: the literal `stderr`, else a file path.
    pub fn parse(s: &str) -> LogTarget {
        if s == "stderr" {
            LogTarget::Stderr
        } else {
            LogTarget::File(PathBuf::from(s))
        }
    }
}

enum Sink {
    Stderr,
    File(BufWriter<File>),
}

struct LogInner {
    sink: Sink,
    window_start: Instant,
    emitted_in_window: u32,
    dropped_in_window: u64,
}

/// A rate-limited JSONL sink for request spans.
///
/// `log` is called once per completed request from the frontends; lines
/// below `min_level` severity are filtered, and at most `limit_per_sec`
/// lines are written per one-second window. When a window overflowed, the
/// first write of the next window is preceded by a synthetic
/// `{"level":"warn","event":"spans_dropped",...}` line carrying the count.
pub struct SpanLog {
    min_level: Level,
    limit_per_sec: u32,
    dropped_total: AtomicU64,
    inner: Mutex<LogInner>,
}

impl SpanLog {
    /// Opens the sink (creating/appending a file target).
    ///
    /// # Errors
    ///
    /// File-system errors opening a [`LogTarget::File`].
    pub fn open(target: &LogTarget, min_level: Level, limit_per_sec: u32) -> io::Result<SpanLog> {
        let sink = match target {
            LogTarget::Stderr => Sink::Stderr,
            LogTarget::File(path) => Sink::File(BufWriter::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            )),
        };
        Ok(SpanLog {
            min_level,
            limit_per_sec,
            dropped_total: AtomicU64::new(0),
            inner: Mutex::new(LogInner {
                sink,
                window_start: Instant::now(),
                emitted_in_window: 0,
                dropped_in_window: 0,
            }),
        })
    }

    /// Emits one pre-rendered JSON line at `level`. Returns `true` when
    /// the line was written, `false` when filtered or rate-limited.
    pub fn log(&self, level: Level, line: &str) -> bool {
        if level > self.min_level {
            return false;
        }
        let mut inner = self.inner.lock().expect("span log lock");
        if inner.window_start.elapsed() >= Duration::from_secs(1) {
            inner.window_start = Instant::now();
            inner.emitted_in_window = 0;
            if inner.dropped_in_window > 0 {
                let note = format!(
                    "{{\"level\":\"warn\",\"event\":\"spans_dropped\",\"count\":{}}}",
                    inner.dropped_in_window
                );
                inner.dropped_in_window = 0;
                inner.emitted_in_window += 1;
                write_line(&mut inner.sink, &note);
            }
        }
        if inner.emitted_in_window >= self.limit_per_sec {
            inner.dropped_in_window += 1;
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.emitted_in_window += 1;
        write_line(&mut inner.sink, line);
        true
    }

    /// Total span lines suppressed by the rate limiter since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }
}

fn write_line(sink: &mut Sink, line: &str) {
    // A failing log sink must never fail a request; errors are swallowed
    // after one best-effort stderr note would itself risk recursion, so
    // they are simply ignored.
    match sink {
        Sink::Stderr => {
            let stderr = io::stderr();
            let mut h = stderr.lock();
            let _ = writeln!(h, "{line}");
        }
        Sink::File(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("batsched_logfmt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Info.name(), "info");
    }

    #[test]
    fn target_parse() {
        assert_eq!(LogTarget::parse("stderr"), LogTarget::Stderr);
        assert_eq!(
            LogTarget::parse("/tmp/x.jsonl"),
            LogTarget::File(PathBuf::from("/tmp/x.jsonl"))
        );
    }

    #[test]
    fn writes_lines_and_filters_by_level() {
        let path = tmp("filter");
        let log = SpanLog::open(&LogTarget::File(path.clone()), Level::Warn, 100).unwrap();
        assert!(log.log(Level::Error, "{\"a\":1}"));
        assert!(log.log(Level::Warn, "{\"b\":2}"));
        assert!(!log.log(Level::Info, "{\"c\":3}"), "info > warn: filtered");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(log.dropped(), 0, "level filtering is not dropping");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rate_limit_drops_and_counts() {
        let path = tmp("ratelimit");
        let log = SpanLog::open(&LogTarget::File(path.clone()), Level::Info, 2).unwrap();
        for i in 0..5 {
            log.log(Level::Info, &format!("{{\"i\":{i}}}"));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "window admits exactly the limit");
        assert_eq!(log.dropped(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
