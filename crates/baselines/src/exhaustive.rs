//! Exact optimum by exhaustive enumeration — ground truth for small graphs.
//!
//! Enumerates every topological order and, for each, every deadline-feasible
//! design-point assignment (with partial-sum pruning), scoring each complete
//! schedule with the RV battery model. Exponential, so construction bounds
//! the search-space size.
//!
//! The assignment DFS varies the *deepest* positions fastest, so consecutive
//! complete schedules share long **prefixes** — exactly the access pattern
//! the σ engine's suffix cache cannot exploit. The default scoring path
//! therefore carries a [`PrefixSigma`] stack along the DFS: O(terms) work
//! per tree edge and per leaf, instead of an O(n·terms) full re-evaluation
//! plus a fresh assignment allocation per leaf. The pre-cache path is
//! retained behind [`Exhaustive::use_prefix_cache`] as the equivalence
//! reference and bench baseline.

use crate::Scheduler;
use batsched_battery::eval::PrefixSigma;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::schedule::{entry_id, graph_evaluator};
use batsched_core::{EngineCost, Schedule, SchedulerError};
use batsched_taskgraph::topo::for_each_topological_order;
use batsched_taskgraph::{PointId, TaskGraph, TaskId};

/// Brute-force optimal scheduler for small instances.
#[derive(Debug, Clone)]
pub struct Exhaustive {
    /// Maximum number of topological orders to visit.
    pub max_orders: usize,
    /// Maximum number of complete assignments to score per order.
    pub max_assignments_per_order: usize,
    /// Battery model used for scoring.
    pub model: RvModel,
    /// Score leaves through the prefix-keyed σ stack (the default). The
    /// `false` path re-evaluates every complete assignment through the
    /// suffix engine, as the pre-cache implementation did — kept for
    /// equivalence tests and as the bench baseline.
    pub use_prefix_cache: bool,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self {
            max_orders: 50_000,
            max_assignments_per_order: 200_000,
            model: RvModel::date05(),
            use_prefix_cache: true,
        }
    }
}

/// DFS state of the prefix-σ scoring path, hoisted out of the per-order
/// closure so nothing is allocated per order or per leaf.
struct PrefixDfs<'a> {
    g: &'a TaskGraph,
    eval: &'a batsched_battery::eval::SigmaEvaluator,
    pfx: PrefixSigma,
    assign: Vec<usize>,
    d: f64,
    m: usize,
    cap: usize,
    visited: usize,
    found: bool,
    best_cost: f64,
    best_order: Vec<TaskId>,
    best_assign: Vec<usize>,
}

impl PrefixDfs<'_> {
    fn dfs(&mut self, order: &[TaskId], suffix_min: &[f64], pos: usize, elapsed: f64) {
        if self.visited >= self.cap {
            return;
        }
        if pos == order.len() {
            self.visited += 1;
            let (cost, _) = self.pfx.sigma();
            if !self.found || cost.value() < self.best_cost {
                self.found = true;
                self.best_cost = cost.value();
                self.best_order.clear();
                self.best_order.extend_from_slice(order);
                self.best_assign.clear();
                self.best_assign
                    .extend_from_slice(&self.assign[..order.len()]);
            }
            return;
        }
        let t = order[pos];
        for j in 0..self.m {
            let dur = self.g.duration(t, PointId(j)).value();
            if elapsed + dur + suffix_min[pos + 1] <= self.d + 1e-9 {
                self.assign[pos] = j;
                self.pfx.push(self.eval, entry_id(t, self.m, PointId(j)));
                self.dfs(order, suffix_min, pos + 1, elapsed + dur);
                self.pfx.pop();
            }
        }
    }
}

impl Exhaustive {
    /// True optimum cost alongside the schedule (handy for assertions).
    ///
    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when nothing fits the deadline.
    pub fn best(
        &self,
        g: &TaskGraph,
        deadline: Minutes,
    ) -> Result<(Schedule, f64), SchedulerError> {
        if !(deadline.is_finite() && deadline.value() > 0.0) {
            return Err(SchedulerError::InvalidDeadline { deadline });
        }
        let n = g.task_count();
        let d = deadline.value();
        // Cheapest remaining time per suffix for pruning.
        let min_dur: Vec<f64> = g
            .task_ids()
            .map(|t| g.duration(t, PointId(0)).value())
            .collect();
        let mut suffix_min = vec![0.0; n + 1];

        let found = if self.use_prefix_cache {
            self.best_prefix(g, d, &min_dur, &mut suffix_min)
        } else {
            self.best_reference(g, d, &min_dur, &mut suffix_min)
        };

        match found {
            Some((order, assignment, cost)) => Ok((Schedule::new(order, assignment), cost)),
            None => Err(SchedulerError::DeadlineInfeasible {
                fastest: batsched_taskgraph::analysis::min_makespan(g),
                deadline,
            }),
        }
    }

    /// The prefix-σ scoring path: push/pop the DFS edge's entry, read a
    /// complete schedule's σ off the stack top in O(terms).
    fn best_prefix(
        &self,
        g: &TaskGraph,
        d: f64,
        min_dur: &[f64],
        suffix_min: &mut [f64],
    ) -> Option<(Vec<TaskId>, Vec<PointId>, f64)> {
        let n = g.task_count();
        let eval = graph_evaluator(g, &self.model);
        let mut state = PrefixDfs {
            g,
            eval: &eval,
            pfx: PrefixSigma::new(),
            assign: vec![0; n],
            d,
            m: g.point_count(),
            cap: self.max_assignments_per_order,
            visited: 0,
            found: false,
            best_cost: f64::INFINITY,
            best_order: Vec::with_capacity(n),
            best_assign: Vec::with_capacity(n),
        };
        for_each_topological_order(g, self.max_orders, |order| {
            for i in (0..n).rev() {
                suffix_min[i] = suffix_min[i + 1] + min_dur[order[i].index()];
            }
            state.visited = 0;
            state.dfs(order, suffix_min, 0, 0.0);
            debug_assert_eq!(state.pfx.depth(), 0, "DFS unwinds the prefix stack");
        });
        if !state.found {
            return None;
        }
        let mut assignment = vec![PointId(0); n];
        for (p, &t) in state.best_order.iter().enumerate() {
            assignment[t.index()] = PointId(state.best_assign[p]);
        }
        Some((state.best_order, assignment, state.best_cost))
    }

    /// The retained pre-cache scoring path: per-leaf task-indexed
    /// assignment construction plus a full suffix-engine evaluation —
    /// the equivalence reference and the `exhaustive_speedup` baseline.
    fn best_reference(
        &self,
        g: &TaskGraph,
        d: f64,
        min_dur: &[f64],
        suffix_min: &mut [f64],
    ) -> Option<(Vec<TaskId>, Vec<PointId>, f64)> {
        let n = g.task_count();
        let m = g.point_count();
        let mut best: Option<(Vec<TaskId>, Vec<PointId>, f64)> = None;
        let mut engine = EngineCost::new(g, &self.model);

        for_each_topological_order(g, self.max_orders, |order| {
            for i in (0..n).rev() {
                suffix_min[i] = suffix_min[i + 1] + min_dur[order[i].index()];
            }
            let mut assign = vec![0usize; n];
            let mut visited = 0usize;
            #[allow(clippy::too_many_arguments)]
            fn dfs(
                g: &TaskGraph,
                engine: &mut EngineCost,
                order: &[TaskId],
                suffix_min: &[f64],
                d: f64,
                m: usize,
                pos: usize,
                elapsed: f64,
                assign: &mut Vec<usize>,
                visited: &mut usize,
                cap: usize,
                best: &mut Option<(Vec<TaskId>, Vec<PointId>, f64)>,
            ) {
                if *visited >= cap {
                    return;
                }
                if pos == order.len() {
                    *visited += 1;
                    let assignment: Vec<PointId> = {
                        let mut v = vec![PointId(0); order.len()];
                        for (p, &t) in order.iter().enumerate() {
                            v[t.index()] = PointId(assign[p]);
                        }
                        v
                    };
                    let (cost, _) = engine.cost(order, &assignment);
                    if best.as_ref().is_none_or(|&(_, _, c)| cost.value() < c) {
                        *best = Some((order.to_vec(), assignment, cost.value()));
                    }
                    return;
                }
                let t = order[pos];
                for j in 0..m {
                    let dur = g.duration(t, PointId(j)).value();
                    if elapsed + dur + suffix_min[pos + 1] <= d + 1e-9 {
                        assign[pos] = j;
                        dfs(
                            g,
                            engine,
                            order,
                            suffix_min,
                            d,
                            m,
                            pos + 1,
                            elapsed + dur,
                            assign,
                            visited,
                            cap,
                            best,
                        );
                    }
                }
            }
            dfs(
                g,
                &mut engine,
                order,
                suffix_min,
                d,
                m,
                0,
                0.0,
                &mut assign,
                &mut visited,
                self.max_assignments_per_order,
                &mut best,
            );
        });
        best
    }
}

impl Scheduler for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        self.best(g, deadline).map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::units::MilliAmps;
    use batsched_taskgraph::DesignPoint;

    fn dp(i: f64, d: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(i), Minutes::new(d))
    }

    /// Source + two independent middles + sink, 2 points each.
    fn small() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(300.0, 1.0), dp(60.0, 2.5)]);
        let x = b.task("X", vec![dp(500.0, 2.0), dp(90.0, 4.0)]);
        let y = b.task("Y", vec![dp(150.0, 1.5), dp(40.0, 3.0)]);
        let z = b.task("Z", vec![dp(250.0, 1.0), dp(50.0, 2.0)]);
        b.edge(a, x).edge(a, y);
        b.parents(z, [x, y]);
        b.build().unwrap()
    }

    #[test]
    fn finds_a_valid_optimum() {
        let g = small();
        let d = Minutes::new(9.0);
        let (s, cost) = Exhaustive::default().best(&g, d).unwrap();
        s.validate(&g, Some(d)).unwrap();
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn optimum_never_beaten_by_heuristics() {
        use crate::{ChowdhuryScaling, KhanVemuri, RakhmatovDp};
        let g = small();
        let model = RvModel::date05();
        for d in [6.0, 8.0, 10.0, 11.5] {
            let dl = Minutes::new(d);
            let (_, opt) = Exhaustive::default().best(&g, dl).unwrap();
            for algo in [
                &KhanVemuri::paper() as &dyn Scheduler,
                &RakhmatovDp::default(),
                &ChowdhuryScaling,
            ] {
                let s = algo.schedule(&g, dl).unwrap();
                let c = s.battery_cost(&g, &model).value();
                assert!(
                    c >= opt - 1e-6,
                    "{} beat the optimum at d={d}: {c} < {opt}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn prefix_cache_matches_reference_path() {
        let g = small();
        for d in [5.5, 6.0, 8.0, 10.0, 11.5] {
            let dl = Minutes::new(d);
            let (fast, fc) = Exhaustive::default().best(&g, dl).unwrap();
            let reference = Exhaustive {
                use_prefix_cache: false,
                ..Default::default()
            };
            let (slow, sc) = reference.best(&g, dl).unwrap();
            assert_eq!(fast, slow, "d={d}");
            assert!((fc - sc).abs() <= 1e-9 * sc.max(1.0), "d={d}: {fc} vs {sc}");
        }
    }

    #[test]
    fn infeasible_deadline_errors() {
        let g = small();
        for use_prefix_cache in [true, false] {
            let e = Exhaustive {
                use_prefix_cache,
                ..Default::default()
            };
            assert!(matches!(
                e.best(&g, Minutes::new(4.0)),
                Err(SchedulerError::DeadlineInfeasible { .. })
            ));
        }
    }

    #[test]
    fn tight_deadline_forces_the_fast_assignment() {
        let g = small();
        // Fastest total is 5.5.
        let (s, _) = Exhaustive::default().best(&g, Minutes::new(5.5)).unwrap();
        assert!(s.assignment().iter().all(|p| p.index() == 0));
    }
}
