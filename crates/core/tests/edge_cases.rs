//! Degenerate-instance coverage: the corners the paper never exercises but
//! a library must survive — single tasks, single design points, identical
//! currents, zero-current points, exactly-tight deadlines.

use batsched_battery::units::{MilliAmps, Minutes};
use batsched_core::{schedule, SchedulerConfig, SchedulerError};
use batsched_taskgraph::{DesignPoint, PointId, TaskGraph};

fn dp(i: f64, d: f64) -> DesignPoint {
    DesignPoint::new(MilliAmps::new(i), Minutes::new(d))
}

#[test]
fn single_task_single_point() {
    let mut b = TaskGraph::builder();
    b.task("only", vec![dp(100.0, 5.0)]);
    let g = b.build().unwrap();
    let sol = schedule(&g, Minutes::new(5.0), &SchedulerConfig::paper()).unwrap();
    sol.schedule.validate(&g, Some(Minutes::new(5.0))).unwrap();
    assert_eq!(sol.makespan, Minutes::new(5.0));
    assert!(matches!(
        schedule(&g, Minutes::new(4.9), &SchedulerConfig::paper()),
        Err(SchedulerError::DeadlineInfeasible { .. })
    ));
}

#[test]
fn single_task_many_points_picks_the_leanest_feasible() {
    let mut b = TaskGraph::builder();
    b.task("only", vec![dp(400.0, 1.0), dp(100.0, 4.0), dp(20.0, 10.0)]);
    let g = b.build().unwrap();
    // d = 12: the 10-minute leanest point fits.
    let sol = schedule(&g, Minutes::new(12.0), &SchedulerConfig::paper()).unwrap();
    assert_eq!(sol.schedule.assignment()[0], PointId(2));
    // d = 5: only the 4-minute point (or faster) fits.
    let sol = schedule(&g, Minutes::new(5.0), &SchedulerConfig::paper()).unwrap();
    assert!(sol.schedule.assignment()[0].index() <= 1);
    sol.schedule.validate(&g, Some(Minutes::new(5.0))).unwrap();
}

#[test]
fn chain_with_single_design_point_has_no_choices() {
    let mut b = TaskGraph::builder();
    let a = b.task("a", vec![dp(300.0, 2.0)]);
    let c = b.task("b", vec![dp(200.0, 3.0)]);
    let e = b.task("c", vec![dp(100.0, 1.0)]);
    b.edge(a, c).edge(c, e);
    let g = b.build().unwrap();
    let sol = schedule(&g, Minutes::new(6.0), &SchedulerConfig::paper()).unwrap();
    assert_eq!(sol.makespan, Minutes::new(6.0));
    assert!(sol.schedule.assignment().iter().all(|p| p.index() == 0));
    // One iteration pair suffices; no window choices exist.
    for it in &sol.trace {
        assert_eq!(it.windows.len(), 1);
    }
}

#[test]
fn identical_currents_degenerate_cr_to_zero() {
    // All design points share one current: CR's normaliser is zero and must
    // not produce NaN suitability values.
    let mut b = TaskGraph::builder();
    for name in ["x", "y", "z"] {
        b.task(name, vec![dp(100.0, 1.0), dp(100.0, 2.0)]);
    }
    let g = b.build().unwrap();
    let sol = schedule(&g, Minutes::new(5.0), &SchedulerConfig::paper()).unwrap();
    sol.schedule.validate(&g, Some(Minutes::new(5.0))).unwrap();
    assert!(sol.cost.is_finite());
}

#[test]
fn zero_current_points_are_legal() {
    // An "idle" design point drawing nothing (e.g. power-gated accelerator).
    let mut b = TaskGraph::builder();
    b.task("work", vec![dp(500.0, 1.0), dp(0.0, 9.0)]);
    b.task("more", vec![dp(400.0, 1.0), dp(10.0, 6.0)]);
    let g = b.build().unwrap();
    let sol = schedule(&g, Minutes::new(15.0), &SchedulerConfig::paper()).unwrap();
    sol.schedule.validate(&g, Some(Minutes::new(15.0))).unwrap();
    assert!(sol.cost.value() >= 0.0);
}

#[test]
fn exactly_tight_deadline_at_the_fastest_makespan() {
    let mut b = TaskGraph::builder();
    let a = b.task("a", vec![dp(300.0, 2.5), dp(60.0, 5.0)]);
    let c = b.task("b", vec![dp(200.0, 1.5), dp(40.0, 3.0)]);
    b.edge(a, c);
    let g = b.build().unwrap();
    let sol = schedule(&g, Minutes::new(4.0), &SchedulerConfig::paper()).unwrap();
    assert!((sol.makespan.value() - 4.0).abs() < 1e-9);
    assert!(sol.schedule.assignment().iter().all(|p| p.index() == 0));
}

#[test]
fn wide_parallel_antichain_schedules_cleanly() {
    // 12 independent tasks: every order is legal; the scheduler must still
    // converge and meet the deadline.
    let mut b = TaskGraph::builder();
    for k in 0..12 {
        let base = 100.0 + 60.0 * k as f64;
        b.task(
            format!("t{k}"),
            vec![dp(base, 1.0), dp(base / 4.0, 2.0), dp(base / 16.0, 4.0)],
        );
    }
    let g = b.build().unwrap();
    let sol = schedule(&g, Minutes::new(30.0), &SchedulerConfig::paper()).unwrap();
    sol.schedule.validate(&g, Some(Minutes::new(30.0))).unwrap();
    // The battery model rewards non-increasing current order; with all
    // orders legal, the found order must not be strongly increasing:
    let currents: Vec<f64> = sol
        .schedule
        .order()
        .iter()
        .map(|&t| g.current(t, sol.schedule.point_of(t)).value())
        .collect();
    let rises = currents.windows(2).filter(|w| w[0] < w[1]).count();
    assert!(
        rises <= currents.len() / 2,
        "mostly non-increasing, got {currents:?}"
    );
}

#[test]
fn huge_deadline_saturates_at_all_leanest() {
    let g = batsched_taskgraph::paper::g3();
    let sol = schedule(&g, Minutes::new(1e6), &SchedulerConfig::paper()).unwrap();
    let m = g.point_count();
    let lean = sol
        .schedule
        .assignment()
        .iter()
        .filter(|p| p.index() == m - 1)
        .count();
    assert!(
        lean >= g.task_count() - 1,
        "with unlimited slack nearly everything sits at the leanest point"
    );
}

#[test]
fn max_iterations_one_still_returns_a_solution() {
    let g = batsched_taskgraph::paper::g2();
    let cfg = SchedulerConfig {
        max_iterations: 1,
        ..SchedulerConfig::paper()
    };
    let sol = schedule(&g, Minutes::new(75.0), &cfg).unwrap();
    assert_eq!(sol.iterations, 1);
    sol.schedule.validate(&g, Some(Minutes::new(75.0))).unwrap();
}
