//! The discrete-event executor: runs a schedule on a [`Platform`] against a
//! battery, producing an event log, a state-of-charge trace and a verdict.

use crate::platform::Platform;
use batsched_battery::model::BatteryModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_core::Schedule;
use batsched_taskgraph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulation events in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A task began executing.
    TaskStarted {
        /// The task.
        task: TaskId,
        /// Start instant.
        at: Minutes,
    },
    /// A task finished.
    TaskCompleted {
        /// The task.
        task: TaskId,
        /// Completion instant.
        at: Minutes,
        /// Apparent battery charge consumed so far.
        sigma: MilliAmpMinutes,
    },
    /// A design-point switch / bitstream reconfiguration occupied the
    /// platform.
    Transition {
        /// Switch start.
        at: Minutes,
        /// Switch duration.
        duration: Minutes,
    },
    /// The battery's apparent charge crossed its rated capacity.
    BatteryDepleted {
        /// Estimated depletion instant.
        at: Minutes,
    },
    /// The deadline passed while work remained.
    DeadlineMissed {
        /// The deadline.
        deadline: Minutes,
    },
}

/// One state-of-charge sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocSample {
    /// Sample instant.
    pub at: Minutes,
    /// Apparent charge consumed by `at`.
    pub sigma: MilliAmpMinutes,
    /// Remaining capacity (`capacity − sigma`, floored at zero).
    pub remaining: MilliAmpMinutes,
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Ordered event log.
    pub events: Vec<SimEvent>,
    /// `true` when every task completed before battery death and deadline.
    pub success: bool,
    /// Depletion instant, when the battery died mid-mission.
    pub depleted_at: Option<Minutes>,
    /// Total execution time including transitions.
    pub makespan: Minutes,
    /// Apparent charge at the end of the mission.
    pub final_sigma: MilliAmpMinutes,
    /// Uniform state-of-charge samples for plotting.
    pub soc_trace: Vec<SocSample>,
}

impl SimReport {
    /// Renders the state-of-charge trace as CSV (`minutes,sigma,remaining`).
    pub fn soc_csv(&self) -> String {
        let mut out = String::from("minutes,sigma_mamin,remaining_mamin\n");
        for s in &self.soc_trace {
            out.push_str(&format!(
                "{:.3},{:.3},{:.3}\n",
                s.at.value(),
                s.sigma.value(),
                s.remaining.value()
            ));
        }
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: makespan {:.1}, sigma {:.0}",
            if self.success { "success" } else { "FAILED" },
            self.makespan,
            self.final_sigma
        )?;
        if let Some(at) = self.depleted_at {
            write!(f, ", battery depleted at {at:.1}")?;
        }
        Ok(())
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulator {
    /// Platform model (transition overheads, idle draw).
    pub platform: Platform,
    /// Rated battery capacity α.
    pub capacity: MilliAmpMinutes,
    /// Optional deadline to check during execution.
    pub deadline: Option<Minutes>,
    /// Number of uniform state-of-charge samples in the report.
    pub soc_samples: usize,
}

impl Simulator {
    /// A simulator on the paper's idealised platform.
    pub fn paper(capacity: MilliAmpMinutes, deadline: Option<Minutes>) -> Self {
        Self {
            platform: Platform::paper(),
            capacity,
            deadline,
            soc_samples: 64,
        }
    }

    /// Builds the physical load profile a schedule induces on this platform
    /// (task intervals plus transition intervals).
    pub fn profile(&self, g: &TaskGraph, schedule: &Schedule) -> LoadProfile {
        let mut p = LoadProfile::new();
        let mut prev_col: Option<usize> = None;
        for &t in schedule.order() {
            let col = schedule.point_of(t).index();
            if let Some(prev) = prev_col {
                let tt = self.platform.transition_time(prev, col);
                if tt.value() > 0.0 {
                    if self.platform.transition.current.value() > 0.0 {
                        p.push(tt, self.platform.transition.current)
                            .expect("transition interval is positive");
                    } else {
                        p.push_rest(tt).expect("transition interval is positive");
                    }
                }
            }
            let pt = g.point(t, schedule.point_of(t));
            p.push(pt.duration, pt.current)
                .expect("validated design points are positive-duration");
            prev_col = Some(col);
        }
        p
    }

    /// Executes `schedule` on `g` against `model`.
    pub fn run<M: BatteryModel + ?Sized>(
        &self,
        g: &TaskGraph,
        schedule: &Schedule,
        model: &M,
    ) -> SimReport {
        let profile = self.profile(g, schedule);
        let mut events = Vec::new();
        let mut clock = Minutes::ZERO;
        let mut prev_col: Option<usize> = None;

        // Battery death instant, if any, over the full profile.
        let depleted_at = model.lifetime(&profile, self.capacity);

        let mut success = true;
        let mut interrupted_at: Option<Minutes> = None;
        for &t in schedule.order() {
            let col = schedule.point_of(t).index();
            if let Some(prev) = prev_col {
                let tt = self.platform.transition_time(prev, col);
                if tt.value() > 0.0 {
                    events.push(SimEvent::Transition {
                        at: clock,
                        duration: tt,
                    });
                    clock += tt;
                }
            }
            events.push(SimEvent::TaskStarted { task: t, at: clock });
            let end = clock + g.duration(t, schedule.point_of(t));
            // Battery death mid-task aborts the mission.
            if let Some(dead) = depleted_at {
                if dead.value() < end.value() {
                    events.push(SimEvent::BatteryDepleted { at: dead });
                    success = false;
                    interrupted_at = Some(dead);
                    break;
                }
            }
            clock = end;
            events.push(SimEvent::TaskCompleted {
                task: t,
                at: clock,
                sigma: model.apparent_charge(&profile, clock),
            });
            prev_col = Some(col);
        }

        let makespan = interrupted_at.unwrap_or(clock);
        if success {
            if let Some(d) = self.deadline {
                if makespan.value() > d.value() + 1e-9 {
                    events.push(SimEvent::DeadlineMissed { deadline: d });
                    success = false;
                }
            }
        }

        // Uniform SoC samples over [0, makespan], computed in one sweep —
        // the RV model's incremental sweep makes this O((S + K)·M) instead
        // of O(S·K·M).
        let samples = self.soc_samples.max(2);
        let times: Vec<Minutes> = (0..samples)
            .map(|k| Minutes::new(makespan.value() * k as f64 / (samples - 1) as f64))
            .collect();
        let sigmas = model.apparent_charge_sweep(&profile, &times);
        let soc_trace: Vec<SocSample> = times
            .into_iter()
            .zip(sigmas)
            .map(|(at, sigma)| SocSample {
                at,
                sigma,
                remaining: (self.capacity - sigma).max(MilliAmpMinutes::ZERO),
            })
            .collect();

        SimReport {
            events,
            success,
            depleted_at: if success { None } else { depleted_at },
            makespan,
            final_sigma: model.apparent_charge(&profile, makespan),
            soc_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::rv::RvModel;
    use batsched_battery::units::MilliAmps;
    use batsched_core::SchedulerConfig;
    use batsched_taskgraph::paper::g2;

    fn good_schedule(g: &TaskGraph) -> Schedule {
        batsched_core::schedule(g, Minutes::new(75.0), &SchedulerConfig::paper())
            .unwrap()
            .schedule
    }

    #[test]
    fn successful_mission_reports_success() {
        let g = g2();
        let s = good_schedule(&g);
        let sim = Simulator::paper(MilliAmpMinutes::new(50_000.0), Some(Minutes::new(75.0)));
        let model = RvModel::date05();
        let r = sim.run(&g, &s, &model);
        assert!(r.success, "{r}");
        assert_eq!(r.depleted_at, None);
        assert!((r.makespan.value() - s.makespan(&g).value()).abs() < 1e-9);
        // Events: one start + one complete per task.
        let starts = r
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::TaskStarted { .. }))
            .count();
        let dones = r
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::TaskCompleted { .. }))
            .count();
        assert_eq!(starts, g.task_count());
        assert_eq!(dones, g.task_count());
    }

    #[test]
    fn small_battery_dies_mid_mission() {
        let g = g2();
        let s = good_schedule(&g);
        let model = RvModel::date05();
        let full_cost = s.battery_cost(&g, &model);
        let sim = Simulator::paper(full_cost * 0.4, None);
        let r = sim.run(&g, &s, &model);
        assert!(!r.success);
        assert!(r.depleted_at.is_some());
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::BatteryDepleted { .. })));
        assert!(r.makespan.value() < s.makespan(&g).value());
    }

    #[test]
    fn deadline_miss_is_reported() {
        let g = g2();
        let s = good_schedule(&g); // ends ~75
        let sim = Simulator::paper(MilliAmpMinutes::new(50_000.0), Some(Minutes::new(60.0)));
        let model = RvModel::date05();
        let r = sim.run(&g, &s, &model);
        assert!(!r.success);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::DeadlineMissed { .. })));
    }

    #[test]
    fn transition_overheads_extend_the_makespan() {
        let g = g2();
        let s = good_schedule(&g);
        let model = RvModel::date05();
        let ideal = Simulator::paper(MilliAmpMinutes::new(50_000.0), None).run(&g, &s, &model);
        let mut dvs_sim = Simulator::paper(MilliAmpMinutes::new(50_000.0), None);
        dvs_sim.platform = Platform::dvs(Minutes::new(0.2), MilliAmps::new(80.0));
        let dvs = dvs_sim.run(&g, &s, &model);
        assert!(dvs.makespan.value() >= ideal.makespan.value());
        assert!(dvs.final_sigma.value() > ideal.final_sigma.value());
        let mut fpga_sim = Simulator::paper(MilliAmpMinutes::new(50_000.0), None);
        fpga_sim.platform = Platform::fpga(Minutes::new(0.5), MilliAmps::new(150.0));
        let fpga = fpga_sim.run(&g, &s, &model);
        assert!(fpga.makespan.value() > dvs.makespan.value());
    }

    #[test]
    fn soc_trace_is_consistent_and_csv_renders() {
        // σ is NOT globally monotone — after a heavy task hands over to a
        // light one, the heavy task's unavailable charge recovers faster
        // than the light task draws (the §3 recovery effect) — so we check
        // consistency, not monotonicity.
        let g = g2();
        let s = good_schedule(&g);
        let model = RvModel::date05();
        let sim = Simulator::paper(MilliAmpMinutes::new(50_000.0), None);
        let r = sim.run(&g, &s, &model);
        assert!(r.soc_trace.len() >= 2);
        for w in r.soc_trace.windows(2) {
            assert!(w[1].at.value() > w[0].at.value());
            assert!(w[1].sigma.value() >= 0.0);
            assert!(
                (w[1].remaining.value() - (50_000.0 - w[1].sigma.value()).max(0.0)).abs() < 1e-9
            );
        }
        // σ always dominates the charge actually delivered so far.
        let profile = sim.profile(&g, &s);
        for sample in &r.soc_trace {
            assert!(sample.sigma.value() >= profile.direct_charge_until(sample.at).value() - 1e-9);
        }
        // Last sample sits at the makespan and matches the final σ.
        let last = r.soc_trace.last().unwrap();
        assert!((last.at.value() - r.makespan.value()).abs() < 1e-9);
        assert!((last.sigma.value() - r.final_sigma.value()).abs() < 1e-9);
        let csv = r.soc_csv();
        assert!(csv.lines().count() == r.soc_trace.len() + 1);
        assert!(csv.starts_with("minutes,"));
    }
}
