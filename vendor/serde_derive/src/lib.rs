//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, parsing the item's token stream by
//! hand (no `syn`/`quote` available offline):
//!
//! * named-field structs → JSON objects;
//! * single-field tuple structs → transparent (the inner value);
//! * multi-field tuple structs → JSON arrays;
//! * unit structs → `null`;
//! * enums: unit variants → strings, data variants → `{"Variant": payload}`;
//! * container attributes `#[serde(transparent)]` and
//!   `#[serde(try_from = "T", into = "T")]`.
//!
//! Generics are not supported (the workspace derives on concrete types
//! only).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ model

struct Field {
    name: String,
    ty: String,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let mut transparent = false;
    let mut try_from = None;
    let mut into = None;

    // Leading attributes (doc comments, serde container attributes, ...).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut transparent, &mut try_from, &mut into);
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "the vendored serde derive does not support generic type `{name}`"
        );
    }

    let shape = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        }
    } else if keyword == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        }
    } else {
        panic!("cannot derive serde impls for `{keyword} {name}`");
    };

    Item {
        name,
        shape,
        transparent,
        try_from,
        into,
    }
}

fn parse_serde_attr(
    stream: TokenStream,
    transparent: &mut bool,
    try_from: &mut Option<String>,
    into: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    // Looking for: serde ( ... )
    let [TokenTree::Ident(id), TokenTree::Group(g)] = &tokens[..] else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0usize;
    while j < inner.len() {
        if let TokenTree::Ident(key) = &inner[j] {
            match key.to_string().as_str() {
                "transparent" => *transparent = true,
                "try_from" | "into" => {
                    let is_try_from = key.to_string() == "try_from";
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(j + 1), inner.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            let text = lit.to_string();
                            let ty = text.trim_matches('"').to_string();
                            if is_try_from {
                                *try_from = Some(ty);
                            } else {
                                *into = Some(ty);
                            }
                            j += 2;
                        }
                    }
                }
                other => panic!("unsupported serde attribute `{other}`"),
            }
        }
        j += 1;
    }
}

/// Skips attributes and visibility at `*i`, returning whether tokens remain.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            Some(_) => return true,
            None => return false,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while skip_attrs_and_vis(&tokens, &mut i) {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            ty.push_str(&tokens[i].to_string());
            ty.push(' ');
            i += 1;
        }
        fields.push(Field {
            name,
            ty: ty.trim().to_string(),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while skip_attrs_and_vis(&tokens, &mut i) {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.into {
        format!(
            "let __raw: {into} = ::std::clone::Clone::clone(self).into();\n\
             ::serde::Serialize::to_value(&__raw)"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) if item.transparent && fields.len() == 1 => {
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            }
            Shape::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{0}\"), \
                             ::serde::Serialize::to_value(&self.{0}))",
                            f.name
                        )
                    })
                    .collect();
                format!(
                    "::serde::json::Value::Obj(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let entries: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!(
                    "::serde::json::Value::Arr(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Shape::Unit => "::serde::json::Value::Null".to_string(),
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Unit => format!(
                                "{name}::{vn} => ::serde::json::Value::Str(\
                                 ::std::string::String::from(\"{vn}\")),"
                            ),
                            VariantKind::Named(fields) => {
                                let binds: Vec<String> =
                                    fields.iter().map(|f| f.name.clone()).collect();
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from(\"{0}\"), \
                                             ::serde::Serialize::to_value({0}))",
                                            f.name
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vn} {{ {binds} }} => \
                                     ::serde::json::Value::Obj(::std::vec![\
                                     (::std::string::String::from(\"{vn}\"), \
                                     ::serde::json::Value::Obj(::std::vec![{entries}]))]),",
                                    binds = binds.join(", "),
                                    entries = entries.join(", ")
                                )
                            }
                            VariantKind::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|k| format!("__f{k}")).collect();
                                let payload = if *n == 1 {
                                    "::serde::Serialize::to_value(__f0)".to_string()
                                } else {
                                    let entries: Vec<String> = binds
                                        .iter()
                                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                                        .collect();
                                    format!(
                                        "::serde::json::Value::Arr(::std::vec![{}])",
                                        entries.join(", ")
                                    )
                                };
                                format!(
                                    "{name}::{vn}({binds}) => \
                                     ::serde::json::Value::Obj(::std::vec![\
                                     (::std::string::String::from(\"{vn}\"), {payload})]),",
                                    binds = binds.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(try_from) = &item.try_from {
        format!(
            "let __raw: {try_from} = ::serde::Deserialize::from_value(__v)?;\n\
             ::std::convert::TryFrom::try_from(__raw)\
             .map_err(::serde::json::Error::custom_display)"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) if item.transparent && fields.len() == 1 => {
                format!(
                    "::std::result::Result::Ok({name} {{ {0}: \
                     ::serde::Deserialize::from_value(__v)? }})",
                    fields[0].name
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{0}: ::serde::json::field::<{1}>(__obj, \"{0}\")?",
                            f.name, f.ty
                        )
                    })
                    .collect();
                format!(
                    "let __obj = __v.as_obj().ok_or_else(|| \
                     ::serde::json::Error::custom(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Shape::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Shape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                format!(
                    "let __items = match __v {{\n\
                     ::serde::json::Value::Arr(items) if items.len() == {n} => items,\n\
                     _ => return ::std::result::Result::Err(\
                     ::serde::json::Error::custom(\"expected {n}-element array for {name}\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                )
            }
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
            Shape::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Unit => None,
                            VariantKind::Named(fields) => {
                                let inits: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "{0}: ::serde::json::field::<{1}>(__payload_obj, \"{0}\")?",
                                            f.name, f.ty
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vn}\" => {{\n\
                                     let __payload_obj = __payload.as_obj().ok_or_else(|| \
                                     ::serde::json::Error::custom(\
                                     \"expected object payload for {name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}",
                                    inits.join(", ")
                                ))
                            }
                            VariantKind::Tuple(1) => Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(\
                                 {name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                            )),
                            VariantKind::Tuple(n) => {
                                let inits: Vec<String> = (0..*n)
                                    .map(|k| {
                                        format!(
                                            "::serde::Deserialize::from_value(&__payload_items[{k}])?"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vn}\" => {{\n\
                                     let __payload_items = match __payload {{\n\
                                     ::serde::json::Value::Arr(items) if items.len() == {n} => items,\n\
                                     _ => return ::std::result::Result::Err(\
                                     ::serde::json::Error::custom(\
                                     \"expected array payload for {name}::{vn}\")),\n\
                                     }};\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n}}",
                                    inits.join(", ")
                                ))
                            }
                        }
                    })
                    .collect();
                format!(
                    "match __v {{\n\
                     ::serde::json::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit}\n\
                     _ => ::std::result::Result::Err(::serde::json::Error::custom(\
                     \"unknown variant of {name}\")),\n\
                     }},\n\
                     ::serde::json::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __payload) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                     {data}\n\
                     _ => ::std::result::Result::Err(::serde::json::Error::custom(\
                     \"unknown variant of {name}\")),\n\
                     }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::json::Error::custom(\
                     \"expected enum representation for {name}\")),\n\
                     }}",
                    unit = unit_arms.join("\n"),
                    data = data_arms.join("\n"),
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::json::Error> {{\n{body}\n}}\n}}\n"
    )
}
