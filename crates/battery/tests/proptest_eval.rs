//! Property-based equivalence of the incremental σ-evaluation engine
//! against the naive Rakhmatov–Vrudhula implementation: for arbitrary
//! entry catalogues, sequences, single-entry swaps and sample sweeps, the
//! engine must match [`RvModel::sigma`] to ≤ 1e-9 relative error.

use batsched_battery::eval::{PrefixSigma, SigmaEvaluator, SigmaScratch};
use batsched_battery::profile::LoadProfile;
use batsched_battery::rv::RvModel;
use batsched_battery::units::{MilliAmps, Minutes};
use proptest::prelude::*;

const REL_TOL: f64 = 1e-9;

/// Entry catalogues: 1–12 (duration, current) pairs with schedule-like
/// magnitudes (durations 0.1–40 min, currents 1–1000 mA).
fn arb_entries() -> impl Strategy<Value = Vec<(Minutes, MilliAmps)>> {
    prop::collection::vec((0.1f64..40.0, 1.0f64..1000.0), 1..12).prop_map(|raw| {
        raw.into_iter()
            .map(|(d, i)| (Minutes::new(d), MilliAmps::new(i)))
            .collect()
    })
}

fn naive_sigma(model: &RvModel, entries: &[(Minutes, MilliAmps)], seq: &[u32]) -> (f64, f64) {
    let p = LoadProfile::from_steps(seq.iter().map(|&e| entries[e as usize])).unwrap();
    (model.sigma(&p, p.end()).value(), p.end().value())
}

fn assert_rel_close(engine: f64, naive: f64) {
    assert!(
        (engine - naive).abs() <= REL_TOL * naive.abs().max(1.0),
        "engine {engine} vs naive {naive}"
    );
}

fn seq_from(picks: &[u32], entries: usize) -> Vec<u32> {
    picks.iter().map(|&p| p % entries as u32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fresh evaluation of an arbitrary sequence matches the naive path.
    #[test]
    fn engine_matches_naive_sigma(
        entries in arb_entries(),
        picks in prop::collection::vec(0u32..64, 1..40),
        beta in 0.05f64..1.5,
        terms in 1usize..20,
    ) {
        let model = RvModel::new(beta, terms).unwrap();
        let eval = SigmaEvaluator::new(&model, entries.clone());
        let seq = seq_from(&picks, entries.len());
        let (sigma, mk) = eval.sigma_seq_once(&seq);
        let (naive, naive_mk) = naive_sigma(&model, &entries, &seq);
        assert_rel_close(sigma.value(), naive);
        prop_assert!((mk.value() - naive_mk).abs() <= 1e-9 * naive_mk.max(1.0));
    }

    /// The prefix-keyed σ stack matches the naive path at every prefix of
    /// an arbitrary sequence, growing and shrinking DFS-style (push all,
    /// then pop-and-repush the tail) without drift.
    #[test]
    fn prefix_sigma_matches_naive_at_every_depth(
        entries in arb_entries(),
        picks in prop::collection::vec(0u32..64, 1..24),
        beta in 0.05f64..1.5,
        terms in 1usize..20,
    ) {
        let model = RvModel::new(beta, terms).unwrap();
        let eval = SigmaEvaluator::new(&model, entries.clone());
        let seq = seq_from(&picks, entries.len());
        let mut pfx = PrefixSigma::new();
        for (k, &e) in seq.iter().enumerate() {
            pfx.push(&eval, e);
            let (sigma, mk) = pfx.sigma();
            let (naive, naive_mk) = naive_sigma(&model, &entries, &seq[..=k]);
            assert_rel_close(sigma.value(), naive);
            prop_assert!((mk.value() - naive_mk).abs() <= 1e-9 * naive_mk.max(1.0));
        }
        // Retract half the stack and rebuild it with different entries:
        // the stack rows below the pop point must still be exact.
        let keep = seq.len() / 2;
        for _ in keep..seq.len() {
            pfx.pop();
        }
        let mut rebuilt: Vec<u32> = seq[..keep].to_vec();
        for &e in seq.iter().rev() {
            rebuilt.push(e);
            pfx.push(&eval, e);
        }
        let (sigma, _) = pfx.sigma();
        let (naive, _) = naive_sigma(&model, &entries, &rebuilt);
        assert_rel_close(sigma.value(), naive);
    }

    /// A chain of single-position swaps through one shared scratch stays
    /// equivalent at every step — the suffix cache never serves stale sums.
    #[test]
    fn swap_chains_stay_equivalent(
        entries in arb_entries(),
        picks in prop::collection::vec(0u32..64, 2..24),
        swaps in prop::collection::vec((0u32..64, 0u32..64), 1..16),
    ) {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries.clone());
        let mut scratch = SigmaScratch::new();
        let mut seq = seq_from(&picks, entries.len());
        for &(pos, replacement) in &swaps {
            let pos = pos as usize % seq.len();
            seq[pos] = replacement % entries.len() as u32;
            let (sigma, _) = eval.sigma_seq(&seq, &mut scratch);
            let (naive, _) = naive_sigma(&model, &entries, &seq);
            assert_rel_close(sigma.value(), naive);
        }
    }

    /// Adjacent transpositions (the refine/annealing move) through one
    /// scratch stay equivalent.
    #[test]
    fn adjacent_transpositions_stay_equivalent(
        entries in arb_entries(),
        picks in prop::collection::vec(0u32..64, 2..24),
        swap_positions in prop::collection::vec(0u32..64, 1..16),
    ) {
        let model = RvModel::date05();
        let eval = SigmaEvaluator::new(&model, entries.clone());
        let mut scratch = SigmaScratch::new();
        let mut seq = seq_from(&picks, entries.len());
        eval.sigma_seq(&seq, &mut scratch);
        for &k in &swap_positions {
            let k = k as usize % (seq.len() - 1);
            seq.swap(k, k + 1);
            let (sigma, _) = eval.sigma_seq(&seq, &mut scratch);
            let (naive, _) = naive_sigma(&model, &entries, &seq);
            assert_rel_close(sigma.value(), naive);
        }
    }

    /// The simulator's sweep matches pointwise σ on arbitrary profiles
    /// (including rest gaps) and arbitrary ascending sample grids.
    #[test]
    fn sweep_matches_pointwise(
        steps in prop::collection::vec((0.0f64..800.0, 0.1f64..20.0), 1..15),
        sample_count in 2usize..40,
        horizon_factor in 1.0f64..3.0,
    ) {
        let model = RvModel::date05();
        let p = LoadProfile::from_steps(
            steps.iter().map(|&(i, d)| (Minutes::new(d), MilliAmps::new(i))),
        ).unwrap();
        let horizon = p.end().value() * horizon_factor;
        let times: Vec<Minutes> = (0..sample_count)
            .map(|k| Minutes::new(horizon * k as f64 / (sample_count - 1) as f64))
            .collect();
        let swept = model.sigma_sweep(&p, &times);
        for (at, got) in times.iter().zip(&swept) {
            let want = model.sigma(&p, *at).value();
            assert_rel_close(got.value(), want);
        }
    }
}
