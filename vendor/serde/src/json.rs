//! A small JSON value model, parser and printer.
//!
//! Backs the vendored `serde`/`serde_json` shims. The printer uses Rust's
//! shortest-roundtrip `f64` formatting (`12.5` prints as `12.5`, `12.0` as
//! `12`), and the parser accepts the full JSON number grammar.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers are stored exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization / deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Builds an error from anything displayable (used by derived
    /// `try_from` container impls).
    pub fn custom_display<E: fmt::Display>(e: E) -> Self {
        Self(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Fetches and deserializes a field of an object; `Option` fields tolerate
/// a missing key (matching serde's behaviour for optional fields).
pub fn field<T: crate::Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

// ---------------------------------------------------------------- printing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

/// Renders a value as compact JSON.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) => write_num(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Renders a value as two-space-indented JSON.
pub fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=depth {
                    out.push_str("  ");
                }
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push(']');
        }
        Value::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=depth {
                    out.push_str("  ");
                }
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected token")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 3; // loop advance adds the 4th
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}
