//! Scheduler configuration: battery parameters, weight rules, ablations.

use crate::error::SchedulerError;
use batsched_battery::rv::RvModel;
use batsched_taskgraph::EnergyMetric;
use serde::{Deserialize, Serialize};

/// Weight rule for the *initial* sequence (`SequenceDecEnergy` in the
/// paper). §4.1 says "average energy", but the published Table 2 sequence
/// S1 follows decreasing average current — see `DESIGN.md` §4.1. All three
/// readings are provided; [`InitialWeight::AverageCurrent`] reproduces the
/// paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InitialWeight {
    /// Decreasing mean design-point current (reproduces Table 2).
    #[default]
    AverageCurrent,
    /// Decreasing mean design-point energy (the §4.1 prose).
    AverageEnergy,
    /// Decreasing mean design-point power (`I·V`).
    AveragePower,
}

/// Enables/disables individual terms of the suitability function
/// `B = SR + CR + ENR + CIF + DPF` for ablation studies.
///
/// Disabling `dpf` removes only its *finite* contribution: the infinite
/// deadline-violation veto always applies, otherwise the search could fix
/// infeasible design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactorMask {
    /// Slack ratio term.
    pub sr: bool,
    /// Current ratio term.
    pub cr: bool,
    /// Energy ratio term.
    pub enr: bool,
    /// Current-increase-fraction term.
    pub cif: bool,
    /// Design-point-fraction term (finite part only; see type docs).
    pub dpf: bool,
}

impl Default for FactorMask {
    fn default() -> Self {
        Self::ALL
    }
}

impl FactorMask {
    /// All five factors active — the paper's B.
    pub const ALL: Self = Self {
        sr: true,
        cr: true,
        enr: true,
        cif: true,
        dpf: true,
    };

    /// A mask with exactly one factor disabled; `index` follows the order
    /// SR, CR, ENR, CIF, DPF.
    ///
    /// # Panics
    ///
    /// Panics when `index >= 5`.
    pub fn without(index: usize) -> Self {
        let mut m = Self::ALL;
        match index {
            0 => m.sr = false,
            1 => m.cr = false,
            2 => m.enr = false,
            3 => m.cif = false,
            4 => m.dpf = false,
            _ => panic!("factor index {index} out of range (0..5)"),
        }
        m
    }

    /// Names matching [`Self::without`] indices.
    pub const NAMES: [&'static str; 5] = ["SR", "CR", "ENR", "CIF", "DPF"];
}

/// Full configuration of the iterative scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Battery diffusion parameter β (`min^{-1/2}`); paper uses 0.273.
    pub beta: f64,
    /// RV-model series truncation; paper uses 10.
    pub series_terms: usize,
    /// Energy metric for weights and ENR (see `DESIGN.md` §4.2).
    pub metric: EnergyMetric,
    /// Initial-sequence weight rule.
    pub initial_weight: InitialWeight,
    /// Suitability-factor ablation mask.
    pub factor_mask: FactorMask,
    /// Safety cap on outer iterations (the paper's loop terminates on
    /// non-improvement; the cap guards pathological inputs).
    pub max_iterations: usize,
}

impl Default for SchedulerConfig {
    /// The paper's configuration.
    fn default() -> Self {
        Self {
            beta: batsched_taskgraph::paper::PAPER_BETA,
            series_terms: batsched_battery::rv::DATE05_TERMS,
            metric: EnergyMetric::Charge,
            initial_weight: InitialWeight::AverageCurrent,
            factor_mask: FactorMask::ALL,
            max_iterations: 64,
        }
    }
}

impl SchedulerConfig {
    /// The exact configuration used for the paper's experiments.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builds the RV battery model for this configuration.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::InvalidConfig`] when β or the series length are out
    /// of range.
    pub fn battery_model(&self) -> Result<RvModel, SchedulerError> {
        RvModel::new(self.beta, self.series_terms).map_err(|e| SchedulerError::InvalidConfig {
            reason: e.to_string(),
        })
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::InvalidConfig`] with the first problem found.
    pub fn validate(&self) -> Result<(), SchedulerError> {
        self.battery_model()?;
        if self.max_iterations == 0 {
            return Err(SchedulerError::InvalidConfig {
                reason: "max_iterations must be at least 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_setup() {
        let c = SchedulerConfig::default();
        assert_eq!(c.beta, 0.273);
        assert_eq!(c.series_terms, 10);
        assert_eq!(c.metric, EnergyMetric::Charge);
        assert_eq!(c.initial_weight, InitialWeight::AverageCurrent);
        assert_eq!(c.factor_mask, FactorMask::ALL);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_beta_is_rejected() {
        let c = SchedulerConfig {
            beta: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SchedulerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn zero_iterations_rejected() {
        let c = SchedulerConfig {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SchedulerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn factor_mask_without() {
        for i in 0..5 {
            let m = FactorMask::without(i);
            let flags = [m.sr, m.cr, m.enr, m.cif, m.dpf];
            assert_eq!(flags.iter().filter(|&&b| !b).count(), 1);
            assert!(!flags[i]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn factor_mask_index_out_of_range() {
        let _ = FactorMask::without(5);
    }
}
