//! The two evaluation workloads of the DATE'05 paper.
//!
//! * [`g3`] — the illustrative fork-join graph of §4.2: 15 tasks, 5 design
//!   points, data exactly as printed in **Table 1** (hard-coded and verified
//!   against re-synthesis from the published scaling factors).
//! * [`g2`] — the robotic-arm-controller case study of §5: 9 tasks, 4 design
//!   points, data exactly as printed in **Figure 5**. The paper's figure
//!   shows the DAG only as an image; the precedence edges here are a
//!   documented reconstruction (see `DESIGN.md` §4.7) — with sequential
//!   execution the makespan is edge-independent, so feasibility at every
//!   deadline is unaffected.
//!
//! The paper's deadline/β parameters are exposed as constants so the
//! reproduction harness and tests share one source of truth.

use crate::design_point::DesignPoint;
use crate::graph::{TaskGraph, TaskId};
use crate::synth::{synthesize_points, Rounding, ScalingScheme};
use batsched_battery::units::{MilliAmps, Minutes, Volts};

/// β used for every experiment in the paper (§4.2).
pub const PAPER_BETA: f64 = 0.273;

/// Deadline of the §4.2 illustrative example on G3 (minutes).
pub const G3_EXAMPLE_DEADLINE: f64 = 230.0;

/// The three Table 4 deadlines for G3 (minutes).
pub const G3_TABLE4_DEADLINES: [f64; 3] = [100.0, 150.0, 230.0];

/// The three Table 4 deadlines for G2 (minutes).
pub const G2_TABLE4_DEADLINES: [f64; 3] = [55.0, 75.0, 95.0];

/// G3 voltage-scaling factors with respect to V1 (§4.2).
pub const G3_FACTORS: [f64; 5] = [1.0, 0.85, 0.68, 0.51, 0.33];

/// G2 voltage-scaling factors with respect to V4 (§5).
pub const G2_FACTORS: [f64; 4] = [2.5, 5.0 / 3.0, 1.25, 1.0];

/// Table 1 of the paper: `(name, [(I mA, D min); 5], parents)`.
///
/// Stored verbatim so golden tests can diff the synthesised instance
/// against the published one.
#[allow(clippy::type_complexity)] // verbatim table shape from the paper
pub const G3_TABLE1: [(&str, [(f64, f64); 5], &[usize]); 15] = [
    (
        "T1",
        [
            (917., 7.3),
            (563., 11.2),
            (288., 15.0),
            (122., 18.7),
            (33., 22.0),
        ],
        &[],
    ),
    (
        "T2",
        [
            (519., 11.2),
            (319., 17.3),
            (163., 23.1),
            (69., 28.9),
            (19., 34.0),
        ],
        &[0],
    ),
    (
        "T3",
        [
            (611., 5.9),
            (375., 9.2),
            (192., 12.2),
            (81., 15.3),
            (22., 18.0),
        ],
        &[0],
    ),
    (
        "T4",
        [
            (938., 5.3),
            (576., 8.2),
            (295., 10.9),
            (124., 13.6),
            (34., 16.0),
        ],
        &[0],
    ),
    (
        "T5",
        [
            (781., 4.0),
            (480., 6.1),
            (246., 8.2),
            (104., 10.2),
            (28., 12.0),
        ],
        &[0],
    ),
    (
        "T6",
        [
            (800., 4.6),
            (491., 7.1),
            (252., 9.5),
            (106., 11.9),
            (29., 14.0),
        ],
        &[1, 2],
    ),
    (
        "T7",
        [
            (720., 7.3),
            (442., 11.2),
            (226., 15.0),
            (96., 18.7),
            (26., 22.0),
        ],
        &[3, 4],
    ),
    (
        "T8",
        [
            (600., 5.3),
            (368., 8.2),
            (189., 10.9),
            (80., 13.6),
            (22., 16.0),
        ],
        &[5, 6],
    ),
    (
        "T9",
        [
            (650., 4.6),
            (399., 7.1),
            (204., 9.5),
            (86., 11.9),
            (23., 14.0),
        ],
        &[7],
    ),
    (
        "T10",
        [
            (710., 5.9),
            (436., 9.2),
            (223., 12.2),
            (94., 15.3),
            (26., 18.0),
        ],
        &[7],
    ),
    (
        "T11",
        [
            (500., 6.6),
            (307., 10.2),
            (157., 13.6),
            (66., 17.0),
            (18., 20.0),
        ],
        &[8],
    ),
    (
        "T12",
        [
            (510., 4.6),
            (313., 7.1),
            (160., 9.5),
            (68., 11.9),
            (18., 14.0),
        ],
        &[9],
    ),
    (
        "T13",
        [
            (700., 4.0),
            (430., 6.1),
            (220., 8.2),
            (93., 10.2),
            (25., 12.0),
        ],
        &[8],
    ),
    (
        "T14",
        [
            (400., 5.3),
            (246., 8.2),
            (126., 10.9),
            (53., 13.6),
            (14., 16.0),
        ],
        &[10, 11, 12],
    ),
    (
        "T15",
        [
            (380., 3.3),
            (233., 5.1),
            (119., 6.8),
            (50., 8.5),
            (14., 10.0),
        ],
        &[13],
    ),
];

/// Per-task G3 base data `(base current at DP1, worst-case duration at DP5)`
/// from which Table 1 regenerates under [`ScalingScheme::ReversedDuration`].
pub const G3_BASES: [(f64, f64); 15] = [
    (917.0, 22.0),
    (519.0, 34.0),
    (611.0, 18.0),
    (938.0, 16.0),
    (781.0, 12.0),
    (800.0, 14.0),
    (720.0, 22.0),
    (600.0, 16.0),
    (650.0, 14.0),
    (710.0, 18.0),
    (500.0, 20.0),
    (510.0, 14.0),
    (700.0, 12.0),
    (400.0, 16.0),
    (380.0, 10.0),
];

/// Figure 5 of the paper: `(name, [(I mA, D min); 4])`.
pub const G2_FIGURE5: [(&str, [(f64, f64); 4]); 9] = [
    ("N1", [(938., 8.8), (278., 13.2), (117., 17.6), (60., 22.0)]),
    ("N2", [(781., 1.2), (231., 1.9), (98., 2.5), (50., 3.1)]),
    ("N3", [(781., 8.1), (231., 12.1), (98., 16.2), (50., 20.2)]),
    ("N4", [(656., 3.6), (194., 5.4), (82., 7.2), (42., 9.0)]),
    ("N5", [(781., 6.5), (231., 9.8), (98., 13.0), (50., 16.3)]),
    ("N6", [(531., 3.5), (157., 5.3), (66., 7.0), (34., 8.8)]),
    ("N7", [(531., 3.5), (157., 5.3), (66., 7.0), (34., 8.8)]),
    ("N8", [(531., 3.5), (157., 5.3), (66., 7.0), (34., 8.8)]),
    ("N9", [(531., 3.5), (157., 5.3), (66., 7.0), (34., 8.8)]),
];

/// Per-task G2 base data `(current at DP4, duration at DP4)` from which
/// Figure 5 regenerates under [`ScalingScheme::InverseDuration`].
pub const G2_BASES: [(f64, f64); 9] = [
    (60.0, 22.0),
    (50.0, 3.1),
    (50.0, 20.2),
    (42.0, 9.0),
    (50.0, 16.3),
    (34.0, 8.8),
    (34.0, 8.8),
    (34.0, 8.8),
    (34.0, 8.8),
];

/// Reconstructed G2 precedence edges (0-based ids; see module docs).
pub const G2_EDGES: [(usize, usize); 10] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 4),
    (2, 4),
    (3, 5),
    (4, 6),
    (5, 6),
    (6, 7),
    (6, 8),
];

fn voltage_for(column: usize, factors: &[f64]) -> Volts {
    Volts::new(factors[column])
}

/// Builds G3 exactly as printed in Table 1.
pub fn g3() -> TaskGraph {
    let mut b = TaskGraph::builder();
    let mut ids = Vec::with_capacity(G3_TABLE1.len());
    for (name, points, _) in &G3_TABLE1 {
        let pts = points
            .iter()
            .enumerate()
            .map(|(j, &(i, d))| {
                DesignPoint::with_voltage(
                    MilliAmps::new(i),
                    Minutes::new(d),
                    voltage_for(j, &G3_FACTORS),
                )
            })
            .collect();
        ids.push(b.task(*name, pts));
    }
    for (child, (_, _, parents)) in G3_TABLE1.iter().enumerate() {
        for &p in *parents {
            b.edge(ids[p], ids[child]);
        }
    }
    b.build().expect("G3 table data is valid by construction")
}

/// Builds G3 from `G3_BASES` via the published scaling rule — must equal
/// [`g3`] element-wise (asserted in tests and the Table 1 repro binary).
pub fn g3_synthesized() -> TaskGraph {
    let mut b = TaskGraph::builder();
    let mut ids = Vec::with_capacity(G3_BASES.len());
    for (idx, &(i_base, d_wc)) in G3_BASES.iter().enumerate() {
        let pts = synthesize_points(
            i_base,
            d_wc,
            &G3_FACTORS,
            ScalingScheme::ReversedDuration,
            Rounding::PAPER,
        )
        .expect("paper factors are valid");
        ids.push(b.task(G3_TABLE1[idx].0, pts));
    }
    for (child, (_, _, parents)) in G3_TABLE1.iter().enumerate() {
        for &p in *parents {
            b.edge(ids[p], ids[child]);
        }
    }
    b.build().expect("synthesised G3 is valid")
}

/// Builds G2 exactly as printed in Figure 5 (edges reconstructed).
pub fn g2() -> TaskGraph {
    let mut b = TaskGraph::builder();
    let mut ids = Vec::with_capacity(G2_FIGURE5.len());
    for (name, points) in &G2_FIGURE5 {
        let pts = points
            .iter()
            .enumerate()
            .map(|(j, &(i, d))| {
                DesignPoint::with_voltage(
                    MilliAmps::new(i),
                    Minutes::new(d),
                    voltage_for(j, &G2_FACTORS),
                )
            })
            .collect();
        ids.push(b.task(*name, pts));
    }
    for &(u, v) in &G2_EDGES {
        b.edge(ids[u], ids[v]);
    }
    b.build().expect("G2 figure data is valid by construction")
}

/// Builds G2 from `G2_BASES` via the published scaling rule — must equal
/// [`g2`] element-wise.
pub fn g2_synthesized() -> TaskGraph {
    let mut b = TaskGraph::builder();
    let mut ids = Vec::with_capacity(G2_BASES.len());
    let s1 = G2_FACTORS[0];
    for (idx, &(i_base_dp4, d_base)) in G2_BASES.iter().enumerate() {
        // `synthesize_points` anchors current at the fastest point.
        let i_fast = i_base_dp4 * s1.powi(3);
        let pts = synthesize_points(
            i_fast,
            d_base,
            &G2_FACTORS,
            ScalingScheme::InverseDuration,
            Rounding::PAPER,
        )
        .expect("paper factors are valid");
        ids.push(b.task(G2_FIGURE5[idx].0, pts));
    }
    for &(u, v) in &G2_EDGES {
        b.edge(ids[u], ids[v]);
    }
    b.build().expect("synthesised G2 is valid")
}

/// Task id for the paper's 1-based task numbering (`t(1)` is `T1`).
///
/// # Panics
///
/// Panics when `one_based` is 0 — the paper never uses a task 0.
pub fn t(one_based: usize) -> TaskId {
    assert!(one_based >= 1, "paper task numbering is 1-based");
    TaskId(one_based - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{column_time, max_makespan, min_makespan};
    use crate::graph::PointId;

    #[test]
    fn g3_shape() {
        let g = g3();
        assert_eq!(g.task_count(), 15);
        assert_eq!(g.point_count(), 5);
        assert_eq!(g.edge_count(), 19);
        assert_eq!(g.sources(), vec![t(1)]);
        assert_eq!(g.sinks(), vec![t(15)]);
    }

    #[test]
    fn g3_synthesis_reproduces_table1_exactly() {
        let printed = g3();
        let synth = g3_synthesized();
        assert_eq!(printed, synth, "Table 1 regenerates from the scaling rule");
    }

    #[test]
    fn g3_column_times_match_hand_sums() {
        let g = g3();
        // Column 4 (DP5, leanest): sum of worst-case durations = 258.0.
        assert!((column_time(&g, PointId(4)).value() - 258.0).abs() < 1e-9);
        // Column 3 (DP4): hand sum 219.3 — the paper's S1 feasibility pivot.
        assert!((column_time(&g, PointId(3)).value() - 219.3).abs() < 1e-9);
        assert!(min_makespan(&g).value() < G3_EXAMPLE_DEADLINE);
        assert!(max_makespan(&g).value() > G3_EXAMPLE_DEADLINE);
    }

    #[test]
    fn g2_shape() {
        let g = g2();
        assert_eq!(g.task_count(), 9);
        assert_eq!(g.point_count(), 4);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.sources(), vec![t(1)]);
        assert_eq!(g.sinks().len(), 2); // N8, N9 feed the EXIT pseudo-node
    }

    #[test]
    fn g2_synthesis_reproduces_figure5_exactly() {
        let printed = g2();
        let synth = g2_synthesized();
        assert_eq!(printed, synth, "Figure 5 regenerates from the scaling rule");
    }

    #[test]
    fn g2_deadlines_are_feasible_at_full_throttle() {
        let g = g2();
        // DP1 everywhere: 42.2 min — under every Table 4 deadline.
        assert!((min_makespan(&g).value() - 42.2).abs() < 1e-9);
        for d in G2_TABLE4_DEADLINES {
            assert!(min_makespan(&g).value() <= d);
        }
        // DP4 everywhere: 105.8 min — over every Table 4 deadline, so the
        // design-point choice is a real decision at each of them.
        assert!((max_makespan(&g).value() - 105.8).abs() < 1e-9);
        for d in G2_TABLE4_DEADLINES {
            assert!(max_makespan(&g).value() > d);
        }
    }

    #[test]
    fn paper_indexing_helper() {
        assert_eq!(t(1), TaskId(0));
        assert_eq!(t(15), TaskId(14));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn paper_indexing_rejects_zero() {
        let _ = t(0);
    }

    #[test]
    fn g3_tasks_resolve_by_name() {
        let g = g3();
        for (i, (name, _, _)) in G3_TABLE1.iter().enumerate() {
            assert_eq!(g.find(name), Some(TaskId(i)));
        }
    }
}
