//! Fixture-corpus tests: every rule is pinned to exact `(rule, line)`
//! findings on a positive/negative fixture pair, the suppression grammar
//! (trailing, standalone, wrapped, stale, malformed) is exercised
//! end-to-end, the `--json` shape is frozen, and the real workspace must
//! sweep clean inside the 2-second budget.

use batsched_lint::{classify, report, FileClass, Linter, RULES};
use std::path::Path;

const PANIC_PATH: &str = include_str!("fixtures/panic_path.rs");
const NESTED_LOCK: &str = include_str!("fixtures/nested_lock.rs");
const UNCAPPED: &str = include_str!("fixtures/uncapped_alloc.rs");
const NONDET: &str = include_str!("fixtures/nondet_iter.rs");
const HYGIENE: &str = include_str!("fixtures/hygiene.rs");
const HYGIENE_OK: &str = include_str!("fixtures/hygiene_ok.rs");
const ALLOWS: &str = include_str!("fixtures/allows.rs");
const ALLOWS_BAD: &str = include_str!("fixtures/allows_bad.rs");

fn serving() -> FileClass {
    FileClass {
        serving: true,
        ..FileClass::default()
    }
}

fn decoder() -> FileClass {
    FileClass {
        decoder: true,
        ..FileClass::default()
    }
}

fn bit_identity() -> FileClass {
    FileClass {
        bit_identity: true,
        ..FileClass::default()
    }
}

fn crate_root() -> FileClass {
    FileClass {
        crate_root: true,
        ..FileClass::default()
    }
}

/// Findings as `(rule, line)` pairs, in the linter's sorted order.
fn lint(class: &FileClass, src: &str) -> Vec<(String, u32)> {
    Linter::new()
        .lint_source("fixture.rs", class, src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

fn pairs(expected: &[(&str, u32)]) -> Vec<(String, u32)> {
    expected.iter().map(|&(r, l)| (r.to_string(), l)).collect()
}

#[test]
fn panic_path_fixture_exact_findings() {
    let got = lint(&serving(), PANIC_PATH);
    let want = pairs(&[
        ("panic-path", 4),  // .unwrap()
        ("panic-path", 8),  // .expect(…)
        ("panic-path", 13), // panic!
        ("panic-path", 15), // unreachable!
        ("panic-path", 19), // xs[i]
    ]);
    assert_eq!(
        got, want,
        "bounded/checked access and #[cfg(test)] code must stay clean"
    );
}

#[test]
fn panic_path_is_class_gated() {
    // The same source under a non-serving classification: no findings.
    assert_eq!(lint(&FileClass::default(), PANIC_PATH), pairs(&[]));
}

#[test]
fn nested_lock_fixture_exact_findings() {
    let got = lint(&FileClass::default(), NESTED_LOCK);
    let want = pairs(&[("nested-lock", 6)]);
    assert_eq!(
        got, want,
        "scoped, dropped, temporary and stdio locks must not be flagged"
    );
}

#[test]
fn uncapped_alloc_fixture_exact_findings() {
    let got = lint(&decoder(), UNCAPPED);
    let want = pairs(&[
        ("uncapped-wire-alloc", 6),  // with_capacity(n_terms), no cap
        ("uncapped-wire-alloc", 10), // vec![0u8; count], no cap
    ]);
    assert_eq!(
        got, want,
        "MAX_*-compared, .len()-bounded, .min()-clamped and constant sizes are fine"
    );
}

#[test]
fn nondet_iter_fixture_exact_findings() {
    let got = lint(&bit_identity(), NONDET);
    let want = pairs(&[
        ("nondeterministic-iter", 4), // use …::HashMap
        ("nondeterministic-iter", 6), // HashMap in a signature
    ]);
    assert_eq!(
        got, want,
        "BTreeMap and #[cfg(test)] HashSet must stay clean"
    );
}

#[test]
fn hygiene_fixture_exact_findings() {
    let got = lint(&crate_root(), HYGIENE);
    let want = pairs(&[
        ("crate-hygiene", 1),  // missing #![forbid(unsafe_code)]
        ("crate-hygiene", 4),  // todo!
        ("crate-hygiene", 8),  // dbg!
        ("crate-hygiene", 12), // std::process::exit
    ]);
    assert_eq!(got, want);
}

#[test]
fn hygiene_clean_crate_root_passes() {
    assert_eq!(lint(&crate_root(), HYGIENE_OK), pairs(&[]));
}

#[test]
fn hygiene_exit_is_allowed_in_cli() {
    let class = FileClass {
        crate_root: true,
        exempt_exit: true,
        ..FileClass::default()
    };
    let got = lint(&class, HYGIENE);
    let want = pairs(&[
        ("crate-hygiene", 1),
        ("crate-hygiene", 4),
        ("crate-hygiene", 8),
    ]);
    assert_eq!(got, want, "only the exit finding is waived for crates/cli");
}

#[test]
fn suppressions_trailing_and_standalone_and_wrapped() {
    // Two of the three unwraps carry a well-formed allow (one trailing,
    // one standalone with a wrapped reason); only the third surfaces.
    let got = lint(&serving(), ALLOWS);
    let want = pairs(&[("panic-path", 14)]);
    assert_eq!(got, want);
}

#[test]
fn stale_and_malformed_allows_are_findings() {
    let got = lint(&serving(), ALLOWS_BAD);
    let want = pairs(&[
        ("stale-allow", 4),      // allow with nothing to suppress
        ("malformed-allow", 9),  // unknown rule name
        ("panic-path", 10),      // …so the unwrap under it still fires
        ("malformed-allow", 14), // missing `: <reason>`
        ("panic-path", 15),      // …so this unwrap fires too
    ]);
    assert_eq!(got, want);
}

#[test]
fn disabling_a_rule_silences_exactly_that_rule() {
    // (rule, class, fixture) triples: disabling the rule must erase its
    // findings; every rule must have at least one fixture finding to
    // erase, so a rule that silently stopped running fails this test.
    let table: [(&str, FileClass, &str); 5] = [
        ("panic-path", serving(), PANIC_PATH),
        ("nested-lock", FileClass::default(), NESTED_LOCK),
        ("uncapped-wire-alloc", decoder(), UNCAPPED),
        ("nondeterministic-iter", bit_identity(), NONDET),
        ("crate-hygiene", crate_root(), HYGIENE),
    ];
    for (rule, class, src) in table {
        let on = Linter::new().lint_source("fixture.rs", &class, src);
        assert!(
            on.iter().any(|f| f.rule == rule),
            "fixture for {rule} must produce at least one finding"
        );
        let mut linter = Linter::new();
        assert!(linter.disable(rule), "{rule} must be a registry name");
        let off = linter.lint_source("fixture.rs", &class, src);
        assert!(
            off.iter().all(|f| f.rule != rule),
            "disabling {rule} must silence it"
        );
    }
}

#[test]
fn disable_rejects_unknown_rule_names() {
    let mut linter = Linter::new();
    assert!(!linter.disable("no-such-rule"));
}

#[test]
fn disabled_rules_do_not_report_stale_allows() {
    // An allow for a disabled rule is neither used nor stale: re-enabling
    // the rule must not require re-annotating the codebase.
    let mut linter = Linter::new();
    linter.disable("panic-path");
    let got = linter.lint_source("fixture.rs", &serving(), ALLOWS);
    assert_eq!(got, Vec::new());
}

#[test]
fn registry_classification_matches_the_invariant_map() {
    let http = classify("crates/service/src/http.rs");
    assert!(http.serving && http.decoder && !http.bit_identity && !http.crate_root);
    let search = classify("crates/core/src/search.rs");
    assert!(search.bit_identity && !search.serving);
    let wire = classify("crates/service/src/wire_bin.rs");
    assert!(wire.serving && wire.decoder && wire.bit_identity);
    let cli = classify("crates/cli/src/main.rs");
    assert!(cli.crate_root && cli.exempt_exit);
    let battery = classify("crates/battery/src/lib.rs");
    assert!(battery.crate_root && !battery.exempt_exit);
    let bench_bin = classify("crates/bench/src/bin/repro_bench.rs");
    assert!(bench_bin.crate_root);
}

#[test]
fn json_shape_is_frozen() {
    let rep = batsched_lint::Report {
        files: 2,
        lines: 40,
        findings: vec![batsched_lint::Finding {
            file: "a/b.rs".to_string(),
            line: 14,
            rule: "panic-path".to_string(),
            message: "say \"no\"".to_string(),
        }],
    };
    let json = report::render_json(&rep, 7);
    assert_eq!(
        json,
        r#"{"version":1,"files":2,"lines":40,"elapsed_ms":7,"findings":[{"rule":"panic-path","file":"a/b.rs","line":14,"message":"say \"no\""}]}"#
    );
}

#[test]
fn json_escapes_special_characters() {
    assert_eq!(report::json_str("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
    assert_eq!(report::json_str("\u{1}"), "\"\\u0001\"");
}

#[test]
fn workspace_sweeps_clean_within_budget() {
    // CARGO_MANIFEST_DIR = crates/lint → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let started = std::time::Instant::now();
    let rep = Linter::new().lint_workspace(root).expect("sweep");
    let elapsed = started.elapsed();
    assert!(
        rep.findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        report::render_human(&rep, elapsed.as_millis())
    );
    assert!(rep.files > 50, "sweep looks truncated: {} files", rep.files);
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "sweep took {elapsed:?}, budget is 2s"
    );
}

#[test]
fn registry_has_exactly_the_documented_rules() {
    assert_eq!(
        RULES,
        [
            "panic-path",
            "nested-lock",
            "uncapped-wire-alloc",
            "nondeterministic-iter",
            "crate-hygiene",
        ]
    );
}
