//! The result-cache memory tier: an LRU map from canonical content hash to
//! serialised response body with a raw-bytes alias index, and a sharded
//! wrapper that splits the key space across independently locked shards.
//!
//! Entries are complete response documents, so a hit is replayed
//! bit-identically (property-tested in `tests/cache_tiers.rs`). Recency is
//! an intrusive doubly-linked list threaded through the hash map, so every
//! operation — lookup, refresh, insert, evict — is O(1); the retained
//! scan-based implementation ([`reference::ScanLruCache`]) exists only as
//! the observation-equivalence oracle for the proptests.
//!
//! Two keys per entry:
//!
//! * the **canonical key** (hash of the canonicalised request) — computing
//!   it requires parsing the request, but it unifies every spelling of the
//!   same question;
//! * **alias keys** (hash of raw request bytes) — each spelling that has
//!   hit before maps straight to its canonical entry, so an exact
//!   duplicate document is answered *without parsing anything*. The alias
//!   stores the raw document and verifies it byte-for-byte on lookup:
//!   FNV-1a is unkeyed and trivially collidable, so a hash match alone
//!   must never replay another request's answer. Aliases may dangle after
//!   an eviction; a dangling alias is dropped on lookup and the request
//!   simply takes the parse path. Documents larger than
//!   [`MAX_ALIAS_DOC_BYTES`] are not aliased (bounding the index's
//!   memory); they still dedup through the canonical key.
//!
//! [`ShardedCache`] routes each canonical key (and each alias key) to one
//! of N power-of-two shards by content-hash bits. An alias and the
//! canonical entry it points at may live in *different* shards, so the
//! fast path takes at most two shard locks in sequence — never nested —
//! and a dangling alias is cleaned up with a third short lock.

use std::collections::HashMap;
use std::sync::Mutex;

/// Alias slots per cache slot (several spellings can point at one entry).
const ALIAS_FACTOR: usize = 4;

/// Largest request document the alias index will store for byte-exact
/// verification. Bigger documents skip the fast path (they still dedup
/// through the canonical key after parsing).
pub const MAX_ALIAS_DOC_BYTES: usize = 128 * 1024;

/// A hash map whose entries are threaded on an intrusive recency list:
/// `head` is the most recently used key, `tail` the least. All operations
/// are O(1).
#[derive(Debug)]
struct LinkedMap<V> {
    map: HashMap<u64, Node<V>>,
    head: Option<u64>,
    tail: Option<u64>,
}

#[derive(Debug)]
struct Node<V> {
    value: V,
    prev: Option<u64>,
    next: Option<u64>,
}

impl<V> Default for LinkedMap<V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            head: None,
            tail: None,
        }
    }
}

impl<V> LinkedMap<V> {
    fn len(&self) -> usize {
        self.map.len()
    }

    fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.head = None;
        self.tail = None;
    }

    /// Detaches `key` from the recency list (the node stays in the map).
    fn unlink(&mut self, key: u64) {
        let (prev, next) = {
            let n = &self.map[&key];
            (n.prev, n.next)
        };
        match prev {
            // lint:allow(panic-path): intrusive-list invariant — neighbour keys are always
            // present; a miss means this shard's map is corrupt, and the panic poisons only
            // this shard, whose lock recovery clears it (degrade one shard, not the daemon).
            Some(p) => self.map.get_mut(&p).expect("linked prev").next = next,
            None => self.head = next,
        }
        match next {
            // lint:allow(panic-path): intrusive-list invariant — see unlink() above.
            Some(x) => self.map.get_mut(&x).expect("linked next").prev = prev,
            None => self.tail = prev,
        }
    }

    /// Pushes an already-detached `key` to the front (most recent).
    fn push_front(&mut self, key: u64) {
        let old_head = self.head;
        {
            // lint:allow(panic-path): push_front's contract is "key is in the map";
            // both callers insert or check first, so a miss means shard corruption —
            // panic, poison, and let lock recovery clear this one shard.
            let n = self.map.get_mut(&key).expect("pushed key present");
            n.prev = None;
            n.next = old_head;
        }
        if let Some(h) = old_head {
            // lint:allow(panic-path): intrusive-list invariant — see unlink().
            self.map.get_mut(&h).expect("old head").prev = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }

    /// Looks `key` up without touching its recency.
    fn peek(&self, key: u64) -> Option<&V> {
        self.map.get(&key).map(|n| &n.value)
    }

    /// Looks `key` up and moves it to the front of the recency list.
    fn get_refresh(&mut self, key: u64) -> Option<&mut V> {
        if !self.map.contains_key(&key) {
            return None;
        }
        self.unlink(key);
        self.push_front(key);
        // lint:allow(panic-path): contains_key was checked three lines up and the
        // relink cannot remove the entry; a miss here is shard corruption.
        Some(&mut self.map.get_mut(&key).expect("refreshed key").value)
    }

    /// Inserts (or replaces) `key`, making it the most recent.
    fn insert(&mut self, key: u64, value: V) {
        if let Some(n) = self.map.get_mut(&key) {
            n.value = value;
            self.unlink(key);
        } else {
            self.map.insert(
                key,
                Node {
                    value,
                    prev: None,
                    next: None,
                },
            );
        }
        self.push_front(key);
    }

    /// Removes `key` if present.
    fn remove(&mut self, key: u64) -> Option<V> {
        if !self.map.contains_key(&key) {
            return None;
        }
        self.unlink(key);
        self.map.remove(&key).map(|n| n.value)
    }

    /// Evicts and returns the least-recently-used entry.
    fn pop_lru(&mut self) -> Option<(u64, V)> {
        let key = self.tail?;
        self.unlink(key);
        self.map.remove(&key).map(|n| (key, n.value))
    }
}

#[derive(Debug)]
struct AliasVal {
    canonical: u64,
    /// The exact raw document bytes this alias stands for (JSON or binary
    /// wire format alike) — compared on lookup so a hash collision can
    /// never replay another request's answer.
    doc: Vec<u8>,
}

/// A least-recently-used map from content hash to response body, with O(1)
/// lookup, refresh and eviction.
#[derive(Debug, Default)]
pub struct LruCache {
    cap: usize,
    entries: LinkedMap<String>,
    /// raw-bytes hash → canonical key. Bounded at [`ALIAS_FACTOR`]× `cap`.
    aliases: LinkedMap<AliasVal>,
}

impl LruCache {
    /// A cache holding at most `cap` entries; `cap == 0` disables storage.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: LinkedMap::default(),
            aliases: LinkedMap::default(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<String> {
        self.entries.get_refresh(key).map(|b| b.clone())
    }

    /// Resolves the raw-document alias `raw` to its canonical key,
    /// refreshing the alias's recency when the stored document matches
    /// `doc` byte-for-byte. A hash collision (different bytes) is a miss —
    /// the alias is left untouched for its rightful owner.
    pub fn alias_lookup(&mut self, raw: u64, doc: &[u8]) -> Option<u64> {
        // Verify the document before refreshing: a colliding lookup must
        // not promote the rightful owner's alias (the scan-based oracle
        // leaves it cold, and so must we).
        match self.aliases.peek(raw) {
            Some(a) if a.doc == doc => {}
            _ => return None,
        }
        self.aliases.get_refresh(raw).map(|a| a.canonical)
    }

    /// Drops the alias `raw` (used when its canonical entry turned out to
    /// be evicted — the alias dangles and must not be consulted again).
    pub fn drop_alias(&mut self, raw: u64) {
        self.aliases.remove(raw);
    }

    /// The fast path: looks the raw document up through the alias index
    /// (keyed by `raw`, its FNV-1a hash), refreshing recency on both
    /// levels. The stored document is compared byte-for-byte — a hash
    /// collision is a miss, never a wrong answer. A dangling alias (its
    /// entry was evicted) is dropped and reported as a miss.
    pub fn get_by_alias(&mut self, raw: u64, doc: &[u8]) -> Option<String> {
        let canonical = self.alias_lookup(raw, doc)?;
        match self.get(canonical) {
            Some(body) => Some(body),
            None => {
                self.drop_alias(raw);
                None
            }
        }
    }

    /// Records that the raw document `doc` (hashing to `raw`) spells the
    /// request cached under `canonical`, evicting the least-recently-used
    /// alias when the alias index is full. Documents larger than
    /// [`MAX_ALIAS_DOC_BYTES`] are not recorded.
    pub fn alias(&mut self, raw: u64, doc: &[u8], canonical: u64) {
        if self.cap == 0 || doc.len() > MAX_ALIAS_DOC_BYTES {
            return;
        }
        if self.aliases.peek(raw).is_none() && self.aliases.len() >= self.cap * ALIAS_FACTOR {
            self.aliases.pop_lru();
        }
        self.aliases.insert(
            raw,
            AliasVal {
                canonical,
                doc: doc.to_vec(),
            },
        );
    }

    /// Stores `body` under `key`, evicting the least-recently-used entry
    /// when full. Overwrites an existing entry for `key`.
    pub fn insert(&mut self, key: u64, body: String) {
        if self.cap == 0 {
            return;
        }
        if self.entries.peek(key).is_none() && self.entries.len() >= self.cap {
            self.entries.pop_lru();
        }
        self.entries.insert(key, body);
    }

    /// Drops every entry and alias (capacity is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.aliases.clear();
    }
}

/// The memory tier at service scale: N independently locked [`LruCache`]
/// shards, routed by content-hash bits. Shards evict independently, so
/// under contention no single lock serialises every probe.
///
/// The alias index is sharded by the *raw* hash while entries are sharded
/// by the *canonical* hash; the two may differ, so the alias fast path
/// acquires at most two shard locks strictly in sequence (never nested).
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<LruCache>>,
    mask: u64,
}

impl ShardedCache {
    /// A cache of `shard_count` shards (rounded up to a power of two,
    /// minimum 1) holding at most ~`total_cap` entries in aggregate; each
    /// shard gets `ceil(total_cap / shards)` slots. `total_cap == 0`
    /// disables storage.
    pub fn new(total_cap: usize, shard_count: usize) -> Self {
        let shards = shard_count.max(1).next_power_of_two();
        let per_shard = if total_cap == 0 {
            0
        } else {
            total_cap.div_ceil(shards)
        };
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            mask: (shards - 1) as u64,
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks one shard, recovering from poisoning: a panicking holder is
    /// caught at the solve boundary (PR 6), so a poisoned shard must
    /// degrade — its mid-mutation intrusive list is untrusted, so the
    /// shard is cleared once and serving continues — rather than wedge
    /// every later request that routes to it.
    fn locked(shard: &Mutex<LruCache>) -> std::sync::MutexGuard<'_, LruCache> {
        shard.lock().unwrap_or_else(|poisoned| {
            shard.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        })
    }

    /// The shard `key` routes to: low content-hash bits folded with the
    /// high half so both ends of the FNV output participate; the mask
    /// keeps the index in range (shard count is a power of two).
    fn shard(&self, key: u64) -> &Mutex<LruCache> {
        &self.shards[((key ^ (key >> 32)) & self.mask) as usize]
    }

    /// Aggregate configured capacity (sum of shard capacities).
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self
                .shards
                .first()
                .map_or(0, |s| Self::locked(s).capacity())
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.occupancy().iter().sum()
    }

    /// `true` when nothing is cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live entry count per shard, in shard order.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| Self::locked(s).len()).collect()
    }

    /// Looks `key` up in its shard, refreshing recency on a hit.
    pub fn get(&self, key: u64) -> Option<String> {
        Self::locked(self.shard(key)).get(key)
    }

    /// The raw-bytes fast path across shards: resolve the alias in the
    /// raw-hash shard, then fetch the entry from the canonical-hash shard.
    /// The locks are taken one at a time; a dangling alias is removed with
    /// a third short re-lock of the alias shard.
    pub fn get_by_alias(&self, raw: u64, doc: &[u8]) -> Option<String> {
        let alias_shard = self.shard(raw);
        let canonical = Self::locked(alias_shard).alias_lookup(raw, doc)?;
        match self.get(canonical) {
            Some(body) => Some(body),
            None => {
                Self::locked(alias_shard).drop_alias(raw);
                None
            }
        }
    }

    /// Records the alias `raw` → `canonical` in the raw-hash shard.
    pub fn alias(&self, raw: u64, doc: &[u8], canonical: u64) {
        Self::locked(self.shard(raw)).alias(raw, doc, canonical);
    }

    /// Stores `body` under `key` in its shard.
    pub fn insert(&self, key: u64, body: String) {
        Self::locked(self.shard(key)).insert(key, body);
    }

    /// Drops every entry and alias in every shard.
    pub fn clear(&self) {
        for s in &self.shards {
            Self::locked(s).clear();
        }
    }
}

/// The retained scan-based LRU — the pre-sharding implementation with a
/// monotone recency tick and O(len) eviction scans. Kept solely as the
/// oracle for the observation-equivalence proptests in
/// `tests/cache_tiers.rs`; the service itself never uses it.
#[doc(hidden)]
pub mod reference {
    use super::{ALIAS_FACTOR, MAX_ALIAS_DOC_BYTES};
    use std::collections::HashMap;

    /// Scan-based LRU cache: recency is a monotone tick, eviction scans
    /// for the minimum.
    #[derive(Debug, Default)]
    pub struct ScanLruCache {
        cap: usize,
        tick: u64,
        map: HashMap<u64, Entry>,
        aliases: HashMap<u64, Alias>,
    }

    #[derive(Debug)]
    struct Entry {
        body: String,
        last_used: u64,
    }

    #[derive(Debug)]
    struct Alias {
        canonical: u64,
        doc: Vec<u8>,
        last_used: u64,
    }

    impl ScanLruCache {
        pub fn new(cap: usize) -> Self {
            Self {
                cap,
                tick: 0,
                map: HashMap::new(),
                aliases: HashMap::new(),
            }
        }

        pub fn len(&self) -> usize {
            self.map.len()
        }

        pub fn is_empty(&self) -> bool {
            self.map.is_empty()
        }

        pub fn get(&mut self, key: u64) -> Option<String> {
            self.tick += 1;
            let tick = self.tick;
            self.map.get_mut(&key).map(|e| {
                e.last_used = tick;
                e.body.clone()
            })
        }

        pub fn get_by_alias(&mut self, raw: u64, doc: &[u8]) -> Option<String> {
            let canonical = match self.aliases.get_mut(&raw) {
                None => return None,
                Some(a) if a.doc != doc => return None, // hash collision
                Some(a) => {
                    a.last_used = self.tick + 1;
                    a.canonical
                }
            };
            match self.get(canonical) {
                Some(body) => Some(body),
                None => {
                    self.aliases.remove(&raw);
                    None
                }
            }
        }

        pub fn alias(&mut self, raw: u64, doc: &[u8], canonical: u64) {
            if self.cap == 0 || doc.len() > MAX_ALIAS_DOC_BYTES {
                return;
            }
            self.tick += 1;
            if !self.aliases.contains_key(&raw) && self.aliases.len() >= self.cap * ALIAS_FACTOR {
                if let Some((&lru, _)) = self.aliases.iter().min_by_key(|(_, a)| a.last_used) {
                    self.aliases.remove(&lru);
                }
            }
            self.aliases.insert(
                raw,
                Alias {
                    canonical,
                    doc: doc.to_vec(),
                    last_used: self.tick,
                },
            );
        }

        pub fn insert(&mut self, key: u64, body: String) {
            if self.cap == 0 {
                return;
            }
            self.tick += 1;
            if !self.map.contains_key(&key) && self.map.len() >= self.cap {
                if let Some((&lru, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) {
                    self.map.remove(&lru);
                }
            }
            self.map.insert(
                key,
                Entry {
                    body,
                    last_used: self.tick,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_overwrite() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(1).as_deref(), Some("one"));
        c.insert(1, "uno".into());
        assert_eq!(c.get(1).as_deref(), Some("uno"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "1".into());
        c.insert(2, "2".into());
        assert_eq!(c.get(1).as_deref(), Some("1")); // 1 is now fresher than 2
        c.insert(3, "3".into());
        assert_eq!(c.get(2), None, "2 was LRU and must be gone");
        assert_eq!(c.get(1).as_deref(), Some("1"));
        assert_eq!(c.get(3).as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn alias_fast_path_and_dangling_cleanup() {
        let mut c = LruCache::new(2);
        c.insert(100, "body".into());
        assert_eq!(c.get_by_alias(7, b"docA"), None, "unknown alias misses");
        c.alias(7, b"docA", 100);
        c.alias(8, b"docB", 100);
        assert_eq!(c.get_by_alias(7, b"docA").as_deref(), Some("body"));
        assert_eq!(c.get_by_alias(8, b"docB").as_deref(), Some("body"));
        // A colliding hash with different bytes must MISS, not replay.
        assert_eq!(c.get_by_alias(7, b"docX"), None, "collision is a miss");
        // Evict the entry: aliases dangle, then self-clean on lookup.
        c.insert(200, "2".into());
        c.insert(300, "3".into());
        assert_eq!(c.get(100), None, "entry 100 evicted");
        assert_eq!(c.get_by_alias(7, b"docA"), None, "dangling alias misses");
        assert_eq!(c.get_by_alias(7, b"docA"), None, "and stays gone");
    }

    #[test]
    fn collision_lookup_does_not_refresh_the_alias() {
        let mut c = LruCache::new(1); // alias cap = 4
        c.insert(100, "b".into());
        for raw in 1..=4u64 {
            c.alias(raw, b"right", 100);
        }
        // A colliding probe must leave alias 1 cold for its owner…
        assert_eq!(c.get_by_alias(1, b"wrong"), None);
        // …so the next insertion into the full index still evicts it.
        c.alias(5, b"right", 100);
        assert_eq!(c.get_by_alias(1, b"right"), None, "alias 1 was LRU");
        assert_eq!(c.get_by_alias(2, b"right").as_deref(), Some("b"));
    }

    #[test]
    fn alias_index_is_bounded_and_caps_doc_size() {
        let mut c = LruCache::new(2); // alias cap = 8
        c.insert(1, "1".into());
        for raw in 10..30u64 {
            c.alias(raw, b"doc", 1);
        }
        // Oldest aliases evicted; the most recent still works.
        assert_eq!(c.get_by_alias(29, b"doc").as_deref(), Some("1"));
        assert_eq!(c.get_by_alias(10, b"doc"), None);
        // Oversized documents are never aliased.
        let huge = vec![b'x'; MAX_ALIAS_DOC_BYTES + 1];
        c.alias(99, &huge, 1);
        assert_eq!(c.get_by_alias(99, &huge), None);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = LruCache::new(0);
        c.insert(1, "1".into());
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c = LruCache::new(3);
        c.insert(1, "1".into());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 3);
        c.insert(2, "2".into());
        assert_eq!(c.get(2).as_deref(), Some("2"));
    }

    #[test]
    fn eviction_order_follows_every_touch_kind() {
        // get, insert-overwrite and alias-hit all refresh recency.
        let mut c = LruCache::new(3);
        c.insert(1, "1".into());
        c.insert(2, "2".into());
        c.insert(3, "3".into());
        c.insert(2, "2b".into()); // overwrite refreshes 2
        assert_eq!(c.get(1).as_deref(), Some("1")); // get refreshes 1
        c.insert(4, "4".into()); // 3 is now LRU
        assert_eq!(c.get(3), None);
        assert_eq!(c.get(2).as_deref(), Some("2b"));
        assert_eq!(c.get(1).as_deref(), Some("1"));
        assert_eq!(c.get(4).as_deref(), Some("4"));
    }

    #[test]
    fn sharded_routes_and_counts() {
        let c = ShardedCache::new(64, 8);
        assert_eq!(c.shard_count(), 8);
        assert!(c.is_empty());
        for k in 0..32u64 {
            c.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), format!("v{k}"));
        }
        assert_eq!(c.len(), 32);
        assert_eq!(c.occupancy().len(), 8);
        assert!(c.occupancy().iter().all(|&n| n > 0), "{:?}", c.occupancy());
        let k = 5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        assert_eq!(c.get(k).as_deref(), Some("v5"));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_alias_crosses_shards() {
        // Pick a raw/canonical pair that provably land in different shards.
        let c = ShardedCache::new(16, 4);
        let canonical = 0u64; // shard 0
        let raw = 1u64; // shard 1
        c.insert(canonical, "body".into());
        c.alias(raw, b"doc", canonical);
        assert_eq!(c.get_by_alias(raw, b"doc").as_deref(), Some("body"));
        assert_eq!(c.get_by_alias(raw, b"other"), None, "collision is a miss");
        // Evict the canonical entry directly; alias dangles, then cleans.
        c.shards[0].lock().unwrap().clear();
        assert_eq!(c.get_by_alias(raw, b"doc"), None, "dangling alias misses");
    }

    #[test]
    fn sharded_shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCache::new(10, 3).shard_count(), 4);
        assert_eq!(ShardedCache::new(10, 1).shard_count(), 1);
        assert_eq!(ShardedCache::new(10, 0).shard_count(), 1);
        // Aggregate capacity covers the request even after rounding.
        assert!(ShardedCache::new(10, 3).capacity() >= 10);
        assert_eq!(ShardedCache::new(0, 4).capacity(), 0);
    }
}
