//! The scheduler's output: an ordered, design-point-assigned task sequence.

use batsched_battery::model::BatteryModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validation failures for a [`Schedule`] against its graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The order is not a topological permutation of the graph's tasks.
    NotTopological,
    /// The assignment vector length disagrees with the task count.
    AssignmentLength {
        /// The graph's task count.
        expected: usize,
        /// The assignment vector's length.
        found: usize,
    },
    /// An assignment references a design-point column that does not exist.
    PointOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The nonexistent point.
        point: PointId,
    },
    /// The schedule finishes after the deadline.
    DeadlineViolated {
        /// When the schedule actually ends.
        makespan: Minutes,
        /// The deadline it had to meet.
        deadline: Minutes,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotTopological => write!(f, "order is not a topological permutation"),
            Self::AssignmentLength { expected, found } => {
                write!(f, "assignment has {found} entries, graph has {expected} tasks")
            }
            Self::PointOutOfRange { task, point } => {
                write!(f, "task {task} assigned nonexistent design point {point}")
            }
            Self::DeadlineViolated { makespan, deadline } => {
                write!(f, "schedule ends at {makespan}, after deadline {deadline}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete scheduling decision: execution order plus one design point per
/// task (indexed by `TaskId`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    order: Vec<TaskId>,
    assignment: Vec<PointId>,
}

impl Schedule {
    /// Creates a schedule from an execution order and a task-indexed
    /// assignment. Invariants are checked by [`Schedule::validate`], kept
    /// separate so partially built schedules can be inspected in tests.
    pub fn new(order: Vec<TaskId>, assignment: Vec<PointId>) -> Self {
        Self { order, assignment }
    }

    /// Execution order (positions 0..n).
    pub fn order(&self) -> &[TaskId] {
        &self.order
    }

    /// Task-indexed design-point assignment.
    pub fn assignment(&self) -> &[PointId] {
        &self.assignment
    }

    /// The design point task `t` runs at.
    pub fn point_of(&self, t: TaskId) -> PointId {
        self.assignment[t.index()]
    }

    /// Total sequential execution time. Order-independent: the sum of the
    /// chosen design points' durations.
    pub fn makespan(&self, g: &TaskGraph) -> Minutes {
        self.order
            .iter()
            .map(|&t| g.duration(t, self.point_of(t)))
            .sum()
    }

    /// Start time of every task in execution order.
    pub fn start_times(&self, g: &TaskGraph) -> Vec<(TaskId, Minutes)> {
        let mut clock = Minutes::ZERO;
        self.order
            .iter()
            .map(|&t| {
                let s = clock;
                clock += g.duration(t, self.point_of(t));
                (t, s)
            })
            .collect()
    }

    /// The discharge profile this schedule presents to the battery:
    /// back-to-back constant-current intervals from `t = 0`.
    pub fn to_profile(&self, g: &TaskGraph) -> LoadProfile {
        let mut p = LoadProfile::new();
        for &t in &self.order {
            let pt = g.point(t, self.point_of(t));
            p.push(pt.duration, pt.current)
                .expect("validated design points are positive-duration");
        }
        p
    }

    /// Battery cost of the schedule under `model`: apparent charge at the
    /// completion instant (the paper's `CalculateBatteryCost`).
    pub fn battery_cost<M: BatteryModel + ?Sized>(
        &self,
        g: &TaskGraph,
        model: &M,
    ) -> MilliAmpMinutes {
        let profile = self.to_profile(g);
        model.apparent_charge(&profile, profile.end())
    }

    /// Charge actually delivered (`Σ I·D`) — the ideal-battery cost.
    pub fn direct_charge(&self, g: &TaskGraph) -> MilliAmpMinutes {
        self.order
            .iter()
            .map(|&t| g.point(t, self.point_of(t)).charge())
            .sum()
    }

    /// Checks the schedule against its graph and an optional deadline.
    ///
    /// # Errors
    ///
    /// Any [`ScheduleError`]; the first problem found is reported.
    pub fn validate(&self, g: &TaskGraph, deadline: Option<Minutes>) -> Result<(), ScheduleError> {
        if self.assignment.len() != g.task_count() {
            return Err(ScheduleError::AssignmentLength {
                expected: g.task_count(),
                found: self.assignment.len(),
            });
        }
        for t in g.task_ids() {
            let p = self.point_of(t);
            if p.index() >= g.point_count() {
                return Err(ScheduleError::PointOutOfRange { task: t, point: p });
            }
        }
        if !batsched_taskgraph::topo::is_topological(g, &self.order) {
            return Err(ScheduleError::NotTopological);
        }
        if let Some(d) = deadline {
            let makespan = self.makespan(g);
            if makespan.value() > d.value() + 1e-9 {
                return Err(ScheduleError::DeadlineViolated { makespan, deadline: d });
            }
        }
        Ok(())
    }

    /// Compact human-readable rendering: `T1@DP5 → T4@DP5 → …`.
    pub fn display<'a>(&'a self, g: &'a TaskGraph) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Schedule, &'a TaskGraph);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (k, &t) in self.0.order.iter().enumerate() {
                    if k > 0 {
                        write!(f, " → ")?;
                    }
                    write!(f, "{}@{}", self.1.name(t), self.0.point_of(t))?;
                }
                Ok(())
            }
        }
        D(self, g)
    }
}

/// Battery cost of running `order` with `assignment` — the free-function
/// form of [`Schedule::battery_cost`] used internally by the search, where
/// order and assignment evolve separately. Returns `(cost, makespan)`.
pub fn battery_cost_of<M: BatteryModel + ?Sized>(
    g: &TaskGraph,
    order: &[TaskId],
    assignment_by_task: &[PointId],
    model: &M,
) -> (MilliAmpMinutes, Minutes) {
    let mut p = LoadProfile::new();
    for &t in order {
        let pt = g.point(t, assignment_by_task[t.index()]);
        p.push(pt.duration, pt.current)
            .expect("validated design points are positive-duration");
    }
    let end = p.end();
    (model.apparent_charge(&p, end), end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::ideal::CoulombCounter;
    use batsched_battery::rv::RvModel;
    use batsched_battery::units::MilliAmps;
    use batsched_taskgraph::DesignPoint;

    fn dp(current: f64, duration: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(current), Minutes::new(duration))
    }

    fn chain2() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(100.0, 1.0), dp(40.0, 2.0)]);
        let c = b.task("B", vec![dp(200.0, 3.0), dp(10.0, 6.0)]);
        b.edge(a, c);
        b.build().unwrap()
    }

    #[test]
    fn makespan_and_profile() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(0)]);
        assert_eq!(s.makespan(&g), Minutes::new(5.0));
        let p = s.to_profile(&g);
        assert_eq!(p.len(), 2);
        assert_eq!(p.intervals()[1].start, Minutes::new(2.0));
        assert_eq!(p.intervals()[1].current, MilliAmps::new(200.0));
        assert_eq!(s.direct_charge(&g), MilliAmpMinutes::new(40.0 * 2.0 + 200.0 * 3.0));
    }

    #[test]
    fn start_times_accumulate() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0), PointId(0)]);
        let st = s.start_times(&g);
        assert_eq!(st, vec![(TaskId(0), Minutes::ZERO), (TaskId(1), Minutes::new(1.0))]);
    }

    #[test]
    fn battery_cost_matches_models() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0), PointId(0)]);
        assert_eq!(s.battery_cost(&g, &CoulombCounter::new()), s.direct_charge(&g));
        let rv = RvModel::date05();
        assert!(s.battery_cost(&g, &rv).value() > s.direct_charge(&g).value());
        let (c, mk) = battery_cost_of(&g, s.order(), s.assignment(), &rv);
        assert_eq!(c, s.battery_cost(&g, &rv));
        assert_eq!(mk, s.makespan(&g));
    }

    #[test]
    fn validation_catches_everything() {
        let g = chain2();
        // Wrong order.
        let s = Schedule::new(vec![TaskId(1), TaskId(0)], vec![PointId(0), PointId(0)]);
        assert_eq!(s.validate(&g, None).unwrap_err(), ScheduleError::NotTopological);
        // Wrong assignment length.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0)]);
        assert!(matches!(
            s.validate(&g, None).unwrap_err(),
            ScheduleError::AssignmentLength { expected: 2, found: 1 }
        ));
        // Bad point id.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(9), PointId(0)]);
        assert!(matches!(
            s.validate(&g, None).unwrap_err(),
            ScheduleError::PointOutOfRange { .. }
        ));
        // Deadline violation.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(1)]);
        assert!(matches!(
            s.validate(&g, Some(Minutes::new(5.0))).unwrap_err(),
            ScheduleError::DeadlineViolated { .. }
        ));
        // All good.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0), PointId(0)]);
        assert!(s.validate(&g, Some(Minutes::new(4.0))).is_ok());
    }

    #[test]
    fn display_renders_order_and_points() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(0)]);
        assert_eq!(format!("{}", s.display(&g)), "A@DP2 → B@DP1");
    }

    #[test]
    fn serde_round_trip() {
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(0)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
