//! Reproduces **Table 4** of the paper: our algorithm vs the Rakhmatov
//! dynamic-programming baseline \[1\] on G2 (55/75/95 min) and G3
//! (100/150/230 min), plus two extra reference points the paper mentions
//! but does not tabulate (Chowdhury scaling \[7\] and simulated annealing).

#![forbid(unsafe_code)]

use batsched_baselines::{
    ChowdhuryScaling, KhanVemuri, RakhmatovDp, Scheduler, SimulatedAnnealing,
};
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_bench::{pct, published, Table};
use batsched_taskgraph::paper::{g2, g3};
use batsched_taskgraph::TaskGraph;

fn run(algo: &dyn Scheduler, g: &TaskGraph, d: f64, model: &RvModel) -> f64 {
    let s = algo
        .schedule(g, Minutes::new(d))
        .unwrap_or_else(|e| panic!("{} failed at d={d}: {e}", algo.name()));
    s.validate(g, Some(Minutes::new(d)))
        .expect("schedule must be valid");
    s.battery_cost(g, model).value()
}

fn main() {
    println!("== Table 4: comparison with the approach of Rakhmatov et al. [1] ==\n");
    let model = RvModel::date05();
    let ours = KhanVemuri::paper();
    let dp = RakhmatovDp::default();
    let ch = ChowdhuryScaling;
    let sa = SimulatedAnnealing::default();

    let mut t = Table::new([
        "Graph",
        "Deadline",
        "Ours σ",
        "(paper)",
        "Algo[1] σ",
        "(paper)",
        "%Diff",
        "(paper)",
        "Chowdhury[7]",
        "SimAnneal",
    ]);
    #[allow(clippy::type_complexity)] // verbatim table shape from the paper
    let cases: [(&str, TaskGraph, &[(f64, f64, f64)]); 2] = [
        ("G2", g2(), &published::TABLE4_G2),
        ("G3", g3(), &published::TABLE4_G3),
    ];
    for (name, g, rows) in cases {
        for &(d, pub_ours, pub_dp) in rows {
            let c_ours = run(&ours, &g, d, &model);
            let c_dp = run(&dp, &g, d, &model);
            let c_ch = run(&ch, &g, d, &model);
            let c_sa = run(&sa, &g, d, &model);
            t.row([
                name.to_string(),
                format!("{d:.0}"),
                format!("{c_ours:.0}"),
                format!("{pub_ours:.0} {}", pct(c_ours, pub_ours)),
                format!("{c_dp:.0}"),
                format!("{pub_dp:.0} {}", pct(c_dp, pub_dp)),
                format!("{:.1}", (c_dp - c_ours) / c_ours * 100.0),
                format!("{:.1}", (pub_dp - pub_ours) / pub_ours * 100.0),
                format!("{c_ch:.0}"),
                format!("{c_sa:.0}"),
            ]);
            assert!(
                c_ours <= c_dp,
                "{name} d={d}: the paper's headline (ours <= DP baseline) must hold"
            );
        }
    }
    print!("{}", t.render());
    println!("\nheadline reproduced: our algorithm beats the energy-optimal DP baseline at every");
    println!("deadline because the DP is blind to WHEN charge is drawn (recovery effect).");
    println!("G2 uses a reconstructed DAG (the paper's Figure 5 edges are an image); G3 is exact.");
}
