//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of the criterion API for this workspace's benches:
//! `Criterion::bench_function`, benchmark groups with `sample_size` /
//! `bench_with_input` / `finish`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a short calibration pass sizes the per-sample
//! iteration count toward ~5 ms, then `sample_size` samples are taken and
//! the **median ns/iter** is reported on stdout. Set `BATSCHED_BENCH_QUICK=1`
//! to cut sample counts for smoke runs. Results are also collected in a
//! process-global list retrievable via [`take_results`] so harness binaries
//! can export JSON.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches here import it from
/// `std::hint`, but keep the alias for API parity).
pub use std::hint::black_box;

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` when grouped).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Samples taken.
    pub samples: usize,
}

/// Drains the results collected so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

fn quick_mode() -> bool {
    std::env::var_os("BATSCHED_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    median_ns: Option<f64>,
    samples: usize,
}

impl Bencher {
    /// Measures `f`, recording the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~5 ms?
        let calib_start = Instant::now();
        black_box(f());
        let one = calib_start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / one.as_nanos()).clamp(1, 100_000) as usize;

        let samples = if quick_mode() {
            self.samples.min(10)
        } else {
            self.samples
        };
        let mut timings: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            timings.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = Some(timings[timings.len() / 2]);
    }
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        median_ns: None,
        samples,
    };
    f(&mut b);
    let median_ns = b.median_ns.unwrap_or(f64::NAN);
    println!("bench: {name:<50} median {median_ns:>14.1} ns/iter");
    RESULTS.lock().expect("results lock").push(BenchResult {
        name: name.to_string(),
        median_ns,
        samples,
    });
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.text), self.samples, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.text);
        run_bench(&name, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
