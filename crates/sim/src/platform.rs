//! Platform models: what runs the schedule.
//!
//! The paper assumes design-point switches are free. Real DVS processors pay
//! a voltage-transition latency and FPGAs pay a bitstream-reconfiguration
//! delay between consecutive tasks. The simulator makes those costs explicit
//! (default zero, matching the paper) so their impact can be quantified —
//! one of this reproduction's extension experiments.

use batsched_battery::units::{MilliAmps, Minutes};
use serde::{Deserialize, Serialize};

/// The processing element executing the task graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Voltage/frequency-scalable processor: a transition is paid only when
    /// consecutive tasks run at *different* design-point columns, scaled by
    /// the column distance.
    DvsProcessor,
    /// FPGA with one bitstream per (task, design point): a reconfiguration
    /// is paid between *every* pair of consecutive tasks.
    Fpga,
}

/// Cost of one design-point/bitstream switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionCost {
    /// Fixed time per switch.
    pub base_time: Minutes,
    /// Additional time per design-point column of distance (DVS only).
    pub time_per_level: Minutes,
    /// Platform current drawn during the switch.
    pub current: MilliAmps,
}

impl TransitionCost {
    /// Free transitions — the paper's assumption.
    pub const FREE: Self = Self {
        base_time: Minutes::ZERO,
        time_per_level: Minutes::ZERO,
        current: MilliAmps::ZERO,
    };
}

/// A platform description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Kind of processing element.
    pub kind: PlatformKind,
    /// Per-switch cost.
    pub transition: TransitionCost,
    /// Current drawn while idle (after the last task, during rests).
    pub idle_current: MilliAmps,
}

impl Platform {
    /// The paper's idealised platform: free transitions, no idle draw.
    pub fn paper() -> Self {
        Self {
            kind: PlatformKind::DvsProcessor,
            transition: TransitionCost::FREE,
            idle_current: MilliAmps::ZERO,
        }
    }

    /// A DVS processor with the given per-level switch latency and switch
    /// current.
    pub fn dvs(time_per_level: Minutes, current: MilliAmps) -> Self {
        Self {
            kind: PlatformKind::DvsProcessor,
            transition: TransitionCost {
                base_time: Minutes::ZERO,
                time_per_level,
                current,
            },
            idle_current: MilliAmps::ZERO,
        }
    }

    /// An FPGA with the given reconfiguration time and current.
    pub fn fpga(reconfig_time: Minutes, current: MilliAmps) -> Self {
        Self {
            kind: PlatformKind::Fpga,
            transition: TransitionCost {
                base_time: reconfig_time,
                time_per_level: Minutes::ZERO,
                current,
            },
            idle_current: MilliAmps::ZERO,
        }
    }

    /// Switch duration between two consecutive tasks at columns `from` and
    /// `to`.
    pub fn transition_time(&self, from: usize, to: usize) -> Minutes {
        match self.kind {
            PlatformKind::DvsProcessor => {
                if from == to {
                    Minutes::ZERO
                } else {
                    let levels = from.abs_diff(to) as f64;
                    self.transition.base_time + self.transition.time_per_level * levels
                }
            }
            // Every FPGA task swap downloads a new bitstream.
            PlatformKind::Fpga => self.transition.base_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_is_free() {
        let p = Platform::paper();
        assert_eq!(p.transition_time(0, 4), Minutes::ZERO);
        assert_eq!(p.idle_current, MilliAmps::ZERO);
    }

    #[test]
    fn dvs_scales_with_level_distance() {
        let p = Platform::dvs(Minutes::new(0.1), MilliAmps::new(50.0));
        assert_eq!(p.transition_time(2, 2), Minutes::ZERO);
        assert_eq!(p.transition_time(0, 3), Minutes::new(0.30000000000000004));
        assert_eq!(p.transition_time(3, 0), p.transition_time(0, 3));
    }

    #[test]
    fn fpga_pays_every_swap() {
        let p = Platform::fpga(Minutes::new(0.5), MilliAmps::new(120.0));
        assert_eq!(p.transition_time(2, 2), Minutes::new(0.5));
        assert_eq!(p.transition_time(0, 3), Minutes::new(0.5));
    }
}
