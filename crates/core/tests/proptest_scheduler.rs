//! Property-based tests for the scheduler: on arbitrary valid instances
//! with feasible deadlines, the algorithm must always return a valid,
//! deadline-meeting schedule whose trace is internally consistent.

use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::{schedule, FactorMask, InitialWeight, SchedulerConfig, SchedulerError};
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::synth::{
    chain, fork_join, layered, random_dag, Rounding, ScalingScheme, TaskParams,
};
use batsched_taskgraph::TaskGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..6, any::<u64>(), 0usize..4, 2usize..7).prop_map(|(m, seed, family, n)| {
        let params = TaskParams {
            current_range: (50.0, 950.0),
            duration_range: (1.0, 15.0),
            factors: (0..m)
                .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
                .collect(),
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => chain(n, &params, &mut rng),
            1 => fork_join(&[n], &params, &mut rng),
            2 => layered(3, 2, 0.4, &params, &mut rng),
            _ => random_dag(n + 2, 0.35, &params, &mut rng),
        }
        .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any feasible deadline the solution is valid, meets the deadline,
    /// and costs at least the delivered charge.
    #[test]
    fn solutions_are_valid_and_feasible(g in arb_graph(), slack in 0.0f64..1.0) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let sol = schedule(&g, d, &SchedulerConfig::paper()).unwrap();
        prop_assert!(sol.schedule.validate(&g, Some(d)).is_ok());
        prop_assert!(sol.cost.value() >= sol.schedule.direct_charge(&g).value() - 1e-6);
        prop_assert!(sol.iterations >= 1);
        // The reported cost matches an independent recomputation.
        let recomputed = sol.schedule.battery_cost(&g, &RvModel::date05()).value();
        prop_assert!((recomputed - sol.cost.value()).abs() < 1e-6 * (1.0 + recomputed));
    }

    /// Deadlines below the fastest makespan are rejected with the paper's
    /// typed error, never a panic or an invalid schedule.
    #[test]
    fn infeasible_deadlines_error_cleanly(g in arb_graph(), f in 0.05f64..0.95) {
        let d = Minutes::new(min_makespan(&g).value() * f);
        if d.value() <= 0.0 { return Ok(()); }
        match schedule(&g, d, &SchedulerConfig::paper()) {
            Err(SchedulerError::DeadlineInfeasible { fastest, deadline }) => {
                prop_assert!(fastest.value() > deadline.value());
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
            Ok(sol) => {
                // f < 1 means d < min makespan strictly, unless rounding made
                // them equal — then a valid schedule is acceptable.
                prop_assert!(sol.makespan.value() <= d.value() + 1e-9);
            }
        }
    }

    /// The per-iteration minima never increase until termination (the
    /// paper's termination rule guarantees it).
    #[test]
    fn iteration_minima_are_non_increasing_until_the_last(g in arb_graph()) {
        let d = Minutes::new(max_makespan(&g).value() * 0.8);
        if d.value() < min_makespan(&g).value() { return Ok(()); }
        let sol = schedule(&g, d, &SchedulerConfig::paper()).unwrap();
        let costs: Vec<f64> = sol.trace.iter().map(|r| r.min_cost.value()).collect();
        for w in costs.windows(2).rev().skip(1) {
            prop_assert!(w[1] <= w[0] + 1e-9, "{costs:?}");
        }
        // The final solution equals the best minimum seen.
        let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((sol.cost.value() - best).abs() < 1e-9);
    }

    /// Every factor-ablated configuration still yields valid schedules.
    #[test]
    fn ablated_configs_stay_valid(g in arb_graph(), which in 0usize..5) {
        let d = Minutes::new(max_makespan(&g).value() * 0.75);
        if d.value() < min_makespan(&g).value() { return Ok(()); }
        let cfg = SchedulerConfig {
            factor_mask: FactorMask::without(which),
            ..SchedulerConfig::paper()
        };
        let sol = schedule(&g, d, &cfg).unwrap();
        prop_assert!(sol.schedule.validate(&g, Some(d)).is_ok());
    }

    /// All three initial-weight rules yield valid schedules and identical
    /// *feasibility* (they only reorder the search).
    #[test]
    fn initial_weight_rules_agree_on_feasibility(g in arb_graph()) {
        let d = Minutes::new(max_makespan(&g).value() * 0.7);
        if d.value() < min_makespan(&g).value() { return Ok(()); }
        for rule in [InitialWeight::AverageCurrent, InitialWeight::AverageEnergy, InitialWeight::AveragePower] {
            let cfg = SchedulerConfig { initial_weight: rule, ..SchedulerConfig::paper() };
            let sol = schedule(&g, d, &cfg).unwrap();
            prop_assert!(sol.schedule.validate(&g, Some(d)).is_ok(), "{rule:?}");
        }
    }

    /// Window records are self-consistent: labelled windows are respected by
    /// their assignments and all makespans meet the deadline.
    #[test]
    fn window_records_are_consistent(g in arb_graph()) {
        let d = Minutes::new(max_makespan(&g).value() * 0.85);
        if d.value() < min_makespan(&g).value() { return Ok(()); }
        let sol = schedule(&g, d, &SchedulerConfig::paper()).unwrap();
        for it in &sol.trace {
            for w in &it.windows {
                prop_assert!(w.makespan.value() <= d.value() + 1e-9);
                for t in g.task_ids() {
                    prop_assert!(w.assignment[t.index()].index() >= w.window_start.index());
                    prop_assert!(w.assignment[t.index()].index() < g.point_count());
                }
            }
        }
    }

    /// A looser deadline never makes the final battery cost worse by more
    /// than numerical noise (monotonicity is heuristic, not guaranteed —
    /// but must hold within the same run's trace: the returned cost is the
    /// minimum over everything evaluated).
    #[test]
    fn returned_cost_is_the_minimum_over_the_trace(g in arb_graph()) {
        let d = Minutes::new(max_makespan(&g).value() * 0.9);
        if d.value() < min_makespan(&g).value() { return Ok(()); }
        let sol = schedule(&g, d, &SchedulerConfig::paper()).unwrap();
        for it in &sol.trace {
            for w in &it.windows {
                prop_assert!(sol.cost.value() <= w.cost.value() + 1e-9);
            }
            prop_assert!(sol.cost.value() <= it.weighted_cost.value() + 1e-9);
        }
    }
}
