//! Peukert's-law battery model.
//!
//! The empirical model used by Luo & Jha (DAC 2001) and much pre-RV
//! battery-aware scheduling work: at discharge current `I` the battery
//! behaves as if it delivered `(I / I_ref)^{p−1}` times its charge, where `p`
//! is the Peukert exponent (≈ 1.0–1.3 for Li-ion, higher for lead-acid).
//! Unlike [`crate::rv::RvModel`], Peukert's law has a rate-capacity effect
//! but **no recovery effect** — interval order never matters, which is why
//! the DATE'05 paper prefers the diffusion model.

use crate::model::BatteryModel;
use crate::profile::LoadProfile;
use crate::units::{MilliAmpMinutes, MilliAmps, Minutes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`PeukertModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeukertError {
    /// The exponent must be `>= 1` and finite.
    InvalidExponent,
    /// The reference current must be positive and finite.
    InvalidReferenceCurrent,
}

impl fmt::Display for PeukertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidExponent => write!(f, "peukert exponent must be >= 1 and finite"),
            Self::InvalidReferenceCurrent => {
                write!(f, "reference current must be positive and finite")
            }
        }
    }
}

impl std::error::Error for PeukertError {}

/// Peukert's-law model: apparent charge `Σ I_k (I_k / I_ref)^{p−1} Δ_k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeukertModel {
    exponent: f64,
    reference: MilliAmps,
}

impl PeukertModel {
    /// Creates a model with Peukert exponent `exponent` and the nominal
    /// (rated) discharge current `reference`.
    ///
    /// # Errors
    ///
    /// * [`PeukertError::InvalidExponent`] when `exponent < 1` or non-finite.
    /// * [`PeukertError::InvalidReferenceCurrent`] when `reference <= 0`.
    pub fn new(exponent: f64, reference: MilliAmps) -> Result<Self, PeukertError> {
        if !(exponent.is_finite() && exponent >= 1.0) {
            return Err(PeukertError::InvalidExponent);
        }
        if !(reference.is_finite() && reference.value() > 0.0) {
            return Err(PeukertError::InvalidReferenceCurrent);
        }
        Ok(Self {
            exponent,
            reference,
        })
    }

    /// A typical Li-ion configuration (`p = 1.05`) rated at `reference`.
    pub fn lithium_ion(reference: MilliAmps) -> Self {
        Self {
            exponent: 1.05,
            reference,
        }
    }

    /// The Peukert exponent `p`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The nominal discharge current the capacity is rated at.
    pub fn reference(&self) -> MilliAmps {
        self.reference
    }
}

impl BatteryModel for PeukertModel {
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        let t = at.value();
        let mut total = 0.0;
        for iv in profile.intervals() {
            let start = iv.start.value();
            if start >= t {
                break;
            }
            let delta = iv.end().value().min(t) - start;
            let i = iv.current.value();
            if i > 0.0 {
                total += i * (i / self.reference.value()).powf(self.exponent - 1.0) * delta;
            }
        }
        MilliAmpMinutes::new(total)
    }

    fn name(&self) -> &'static str {
        "peukert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }
    fn min(v: f64) -> Minutes {
        Minutes::new(v)
    }

    #[test]
    fn constructor_validates() {
        assert!(PeukertModel::new(0.9, ma(100.0)).is_err());
        assert!(PeukertModel::new(f64::NAN, ma(100.0)).is_err());
        assert!(PeukertModel::new(1.2, ma(0.0)).is_err());
        assert!(PeukertModel::new(1.2, ma(-5.0)).is_err());
        let m = PeukertModel::new(1.2, ma(100.0)).unwrap();
        assert_eq!(m.exponent(), 1.2);
        assert_eq!(m.reference(), ma(100.0));
    }

    #[test]
    fn exponent_one_is_the_ideal_battery() {
        let m = PeukertModel::new(1.0, ma(100.0)).unwrap();
        let p = LoadProfile::from_steps([(min(5.0), ma(250.0)), (min(5.0), ma(50.0))]).unwrap();
        assert_eq!(m.apparent_charge(&p, p.end()), p.direct_charge());
    }

    #[test]
    fn at_reference_current_the_model_is_exact() {
        let m = PeukertModel::new(1.3, ma(100.0)).unwrap();
        let p = LoadProfile::from_steps([(min(10.0), ma(100.0))]).unwrap();
        assert!(
            (m.apparent_charge(&p, p.end()).value() - 1000.0).abs() < 1e-9,
            "rated current draws exactly the rated charge"
        );
    }

    #[test]
    fn heavy_currents_are_penalised_light_currents_rewarded() {
        let m = PeukertModel::new(1.2, ma(100.0)).unwrap();
        let heavy = LoadProfile::from_steps([(min(10.0), ma(400.0))]).unwrap();
        let light = LoadProfile::from_steps([(min(10.0), ma(25.0))]).unwrap();
        assert!(m.apparent_charge(&heavy, heavy.end()).value() > heavy.direct_charge().value());
        assert!(m.apparent_charge(&light, light.end()).value() < light.direct_charge().value());
    }

    #[test]
    fn no_recovery_effect_order_is_irrelevant() {
        let m = PeukertModel::new(1.25, ma(100.0)).unwrap();
        let p = LoadProfile::from_steps([
            (min(3.0), ma(500.0)),
            (min(7.0), ma(20.0)),
            (min(2.0), ma(120.0)),
        ])
        .unwrap();
        let r = p.reversed();
        let a = m.apparent_charge(&p, p.end()).value();
        let b = m.apparent_charge(&r, r.end()).value();
        assert!((a - b).abs() < 1e-9, "peukert is order-insensitive");
    }

    #[test]
    fn lifetime_shrinks_superlinearly_with_current() {
        let m = PeukertModel::new(1.3, ma(100.0)).unwrap();
        let cap = MilliAmpMinutes::new(1000.0);
        let at = |i: f64| {
            let p = LoadProfile::from_steps([(min(1000.0), ma(i))]).unwrap();
            m.lifetime(&p, cap).unwrap().value()
        };
        let t100 = at(100.0);
        let t200 = at(200.0);
        assert!((t100 - 10.0).abs() < 1e-3);
        assert!(t200 < t100 / 2.0, "doubling current more than halves life");
    }
}
