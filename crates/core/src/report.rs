//! Human-readable reports of a [`Solution`]'s iteration trace, in the
//! shape of the paper's Tables 2 and 3. Downstream tools (the CLI's
//! `trace` command, the reproduction binaries) all render through here.

use crate::algorithm::Solution;
use batsched_taskgraph::{TaskGraph, TaskId};
use std::fmt::Write as _;

fn seq_names(g: &TaskGraph, seq: &[TaskId]) -> String {
    seq.iter().map(|&t| g.name(t)).collect::<Vec<_>>().join(",")
}

/// Renders the per-iteration sequences and design-point assignments — the
/// paper's Table 2 for this run.
pub fn sequences_table(g: &TaskGraph, sol: &Solution) -> String {
    let mut out = String::new();
    for (k, it) in sol.trace.iter().enumerate() {
        let _ = writeln!(out, "S{}   {}", k + 1, seq_names(g, &it.sequence));
        let dps: Vec<String> = it
            .sequence
            .iter()
            .map(|&t| format!("P{}", it.assignment[t.index()].index() + 1))
            .collect();
        let _ = writeln!(out, "DP   {}", dps.join(","));
        let _ = writeln!(out, "S{}w  {}", k + 1, seq_names(g, &it.weighted_sequence));
    }
    out
}

/// Renders the per-window battery costs and durations — the paper's
/// Table 3 for this run. Windows print widest-first like the paper's
/// columns; the evaluation order is narrowest-first.
pub fn windows_table(g: &TaskGraph, sol: &Solution) -> String {
    let m = g.point_count();
    let mut out = String::new();
    let _ = write!(out, "{:<5}", "seq");
    for ws in 0..m.saturating_sub(1).max(1) {
        let _ = write!(out, " {:>16}", format!("win {}:{}", ws + 1, m));
    }
    let _ = writeln!(out, " {:>10} {:>8}", "min σ", "Δ");
    for (k, it) in sol.trace.iter().enumerate() {
        let _ = write!(out, "{:<5}", format!("S{}", k + 1));
        for ws in 0..m.saturating_sub(1).max(1) {
            match it.windows.iter().find(|w| w.window_start.index() == ws) {
                Some(w) => {
                    let _ = write!(
                        out,
                        " {:>16}",
                        format!("{:.0} ({:.1})", w.cost.value(), w.makespan.value())
                    );
                }
                None => {
                    let _ = write!(out, " {:>16}", "-");
                }
            }
        }
        let best = &it.windows[it.best_window];
        let _ = writeln!(
            out,
            " {:>10.0} {:>8.1}",
            best.cost.value(),
            best.makespan.value()
        );
        let _ = writeln!(
            out,
            "{:<5}{} {:>10.0} {:>8.1}",
            format!("S{}w", k + 1),
            " ".repeat(17 * m.saturating_sub(1).max(1) - 1),
            it.weighted_cost.value(),
            it.weighted_makespan.value()
        );
    }
    out
}

/// A compact one-paragraph summary of the run.
pub fn summary(g: &TaskGraph, sol: &Solution) -> String {
    format!(
        "{} tasks scheduled in {} iteration(s): σ = {:.0} mA·min over {:.1} min\nplan: {}\n",
        g.task_count(),
        sol.iterations,
        sol.cost.value(),
        sol.makespan.value(),
        sol.schedule.display(g)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use batsched_battery::units::Minutes;
    use batsched_taskgraph::paper::g3;

    fn solution() -> (TaskGraph, Solution) {
        let g = g3();
        let sol =
            crate::algorithm::schedule(&g, Minutes::new(230.0), &SchedulerConfig::paper()).unwrap();
        (g, sol)
    }

    #[test]
    fn sequences_table_mentions_every_iteration_and_task() {
        let (g, sol) = solution();
        let s = sequences_table(&g, &sol);
        for k in 1..=sol.iterations {
            assert!(s.contains(&format!("S{k} ")), "missing S{k}:\n{s}");
            assert!(s.contains(&format!("S{k}w")), "missing S{k}w:\n{s}");
        }
        assert!(s.contains("T15"));
        assert!(s.contains("P5"));
    }

    #[test]
    fn windows_table_has_all_window_columns() {
        let (g, sol) = solution();
        let s = windows_table(&g, &sol);
        for ws in 1..=4 {
            assert!(
                s.contains(&format!("win {ws}:5")),
                "missing window {ws}:\n{s}"
            );
        }
        assert!(
            s.contains("228.3") || s.contains("229."),
            "durations render:\n{s}"
        );
    }

    #[test]
    fn summary_is_one_stop() {
        let (g, sol) = solution();
        let s = summary(&g, &sol);
        assert!(s.contains("15 tasks"));
        assert!(s.contains("T1@"));
    }
}
