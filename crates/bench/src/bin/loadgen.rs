//! Load generator for the batch-scheduling service.
//!
//! Default mode drives an in-process [`batsched_service::Service`] with
//! four mixed scenario streams and writes throughput/latency percentiles
//! to `BENCH_service.json`:
//!
//! * **paper** — the DATE'05 G2/G3 instances across their published
//!   deadlines (all unique → every request is a cold solve);
//! * **synthetic** — a layered-DAG grid, n ∈ {12..48} × m ∈ {2..8};
//! * **dup** — a duplicate-heavy stream (each unique request repeated
//!   10×), separating cold-solve from cache-hit latency; the run fails if
//!   the hit path is not ≥ 10× faster than the cold path;
//! * **keepalive** — the same duplicate-heavy stream driven over real
//!   HTTP against an in-process daemon, A/B: one fresh TCP connection per
//!   request vs one kept-alive connection (`--check` fails the run unless
//!   keep-alive wins by ≥ 1.5×);
//! * **scaling** — cold solves on the shared n-scaling instances
//!   (n ∈ {50, 100, 200}, m = 8, unique deadlines so nothing caches), so
//!   the recorded envelope shows how request latency grows with instance
//!   size under the carried window-sweep kernel;
//! * **wire** — the admission A/B on the same n-scaling instances: each
//!   request is admitted `iters` times as JSON (`parse_request` + the
//!   streaming content hash) and as binary (`decode_request`, whose
//!   single-pass decoder folds the hash into the byte walk), asserting the
//!   two spellings produce the same cache key; `--check` fails the run
//!   unless the fused binary path wins by ≥ 2× at n = 200;
//! * **warm_restart** — a disk-backed service answers a unique stream
//!   cold, shuts down (compacting its cache file), restarts, and must
//!   answer the same stream entirely from the disk tier with bit-identical
//!   bodies;
//! * **malformed** — broken/hostile documents; the run fails unless every
//!   one is answered with a *typed* error (the daemon must never panic).
//!
//! * **chaos** — the fault-injection drill: the service runs with the
//!   fault plane armed (one injected solver panic, a burst of disk-append
//!   failures, periodic solver latency beyond the request deadline) and a
//!   tight request timeout. Every request must get exactly one well-formed
//!   response (a schedule or a typed `timeout`/`internal` error), the
//!   worker pool must respawn its panicked worker, and the disk tier must
//!   trip its breaker into degraded mode and then re-arm once the fault
//!   burst passes.
//!
//! * **fleet** — the fleet-scale drill: an in-process [`batsched_service::Fleet`]
//!   (content-hash router + 3 supervised workers) serves the
//!   duplicate-heavy stream A/B against a single-process daemon, then one
//!   worker is killed mid-burst; every request must still be answered
//!   exactly once (failover retries are safe — requests are idempotent by
//!   content hash), the dead worker must be respawned, and the fleet must
//!   return to ready. `--check` fails the run on any lost request.
//!
//! All latency percentiles (p50/p95/p99) are computed through the
//! service's own [`batsched_service::HistogramSnapshot`] — the same
//! fixed-boundary log-bucket histogram `/v1/metrics` exposes — so the
//! numbers in `BENCH_service.json` and the numbers a scrape reports are
//! quantized identically.
//!
//! Flags: `--quick` shrinks the grids (CI mode); `--check` enforces the
//! keep-alive ≥ 1.5× and binary-admission ≥ 2× floors; `--wire` runs only
//! the wire A/B and prints its report; `--smoke --addr <host:port>`
//! switches to HTTP-client mode against a running daemon — schedule
//! request (in both wire formats — the binary spelling must hit the JSON
//! request's cache entry and an `Accept`-negotiated binary response must
//! transcode back bit-identically), typed 4xx on malformed input, a
//! keep-alive multi-request pass, stats, then shutdown;
//! `--smoke-warm --addr <host:port>` is the post-restart probe: the same
//! schedule request — in both wire formats — must come back
//! `X-Cache: hit` served from the daemon's disk tier (the ci.sh
//! warm-restart check);
//! `--metrics-smoke --addr <host:port>` drives traffic and then scrapes
//! `GET /v1/metrics`, asserting a well-formed Prometheus exposition whose
//! histogram counts match the requests it sent (the ci.sh metrics-smoke
//! check); `--chaos` runs only the chaos drill (add `--addr <host:port>`
//! to drive an external daemon booted with the same `--fault` rules — see
//! `ci.sh chaos-smoke` — instead of an in-process one); `--fleet` runs
//! only the in-process fleet drill and prints its report;
//! `--fleet-smoke --addr <host:port>` drives an external `batsched fleet`
//! daemon: warm burst with routing pinned per content hash, a real
//! `kill -9` of one worker mid-burst with zero lost requests, respawn and
//! `/readyz` recovery, then a drain/restart drill asserting the
//! ready → not-ready → ready transition (the ci.sh fleet-smoke check).

#![forbid(unsafe_code)]

use batsched_service::wire::DEFAULT_MAX_ITERATIONS;
use batsched_service::{
    decode_request, decode_response, encode_request, home_slot, parse_request, Disposition,
    ErrorResponse, FaultPlane, FaultRule, Fleet, FleetConfig, HistogramSnapshot, HttpServer,
    InProcessLauncher, ModelSpec, ScheduleRequest, ScheduleResponse, Service, ServiceConfig,
};
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::paper::{g2, g3, G2_TABLE4_DEADLINES, G3_TABLE4_DEADLINES};
use batsched_taskgraph::synth::{layered, Rounding, ScalingScheme, TaskParams};
use batsched_taskgraph::TaskGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn synth_graph(n: usize, m: usize, seed: u64) -> TaskGraph {
    let width = 4usize;
    let layers = n.div_ceil(width).max(2);
    let params = TaskParams {
        current_range: (100.0, 900.0),
        duration_range: (2.0, 12.0),
        factors: (0..m)
            .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
            .collect(),
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::PAPER,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    layered(layers, width, 0.35, &params, &mut rng).expect("valid generator config")
}

fn loose_deadline(g: &TaskGraph) -> f64 {
    let lo = min_makespan(g).value();
    let hi = max_makespan(g).value();
    lo + (hi - lo) * 0.7
}

fn body_for(g: &TaskGraph, deadline: f64) -> String {
    serde_json::to_string(&ScheduleRequest::new(g.clone(), deadline)).expect("serialises")
}

/// Folds per-request latencies into the service's log-bucket histogram.
fn histogram_of<'a>(lat_us: impl IntoIterator<Item = &'a f64>) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for us in lat_us {
        h.observe(us.max(0.0).round() as u64);
    }
    h
}

#[derive(Debug, Serialize)]
struct StreamReport {
    requests: usize,
    ok: usize,
    errors: usize,
    cache_hits: usize,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

#[derive(Debug, Serialize)]
struct DupReport {
    requests: usize,
    unique: usize,
    cache_hits: usize,
    cold_p50_us: f64,
    cold_p99_us: f64,
    hit_p50_us: f64,
    hit_p99_us: f64,
    hit_speedup: f64,
}

#[derive(Debug, Serialize)]
struct MalformedReport {
    requests: usize,
    typed_errors: usize,
    unexpected_ok: usize,
}

#[derive(Debug, Serialize)]
struct ScalingPoint {
    n: usize,
    requests: usize,
    cold_p50_us: f64,
    cold_p95_us: f64,
}

#[derive(Debug, Serialize)]
struct WirePoint {
    n: usize,
    iters: usize,
    json_admit_us: f64,
    bin_admit_us: f64,
    speedup: f64,
    json_bytes: usize,
    bin_bytes: usize,
    keys_match: bool,
}

#[derive(Debug, Serialize)]
struct KeepAliveReport {
    requests: usize,
    unique: usize,
    conn_per_request_rps: f64,
    keepalive_rps: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct WarmRestartReport {
    requests: usize,
    cold_solves_first_run: usize,
    disk_hits_after_restart: usize,
    bit_identical: bool,
    disk_hit_p50_us: f64,
    disk_hit_p95_us: f64,
}

#[derive(Debug, Serialize)]
struct ChaosReport {
    requests: usize,
    ok: usize,
    timeouts: usize,
    internal_errors: usize,
    unexpected_responses: usize,
    recovery_requests: usize,
    worker_panics: u64,
    worker_respawns: u64,
    disk_errors: u64,
    disk_breaker_trips: u64,
    disk_rearms: u64,
    faults_injected: u64,
    recovered: bool,
}

#[derive(Debug, Serialize)]
struct FleetReport {
    workers: usize,
    requests: usize,
    single_rps: f64,
    fleet_rps: f64,
    fleet_vs_single: f64,
    kill_burst_requests: usize,
    kill_burst_ok: usize,
    kill_burst_unavailable: usize,
    kill_burst_other: usize,
    lost: usize,
    router_retries: u64,
    respawned: bool,
    ready_after_kill: bool,
}

#[derive(Debug, Serialize)]
struct BenchDoc {
    config: ConfigDoc,
    paper: StreamReport,
    synthetic: StreamReport,
    dup: DupReport,
    keepalive: KeepAliveReport,
    scaling: Vec<ScalingPoint>,
    wire: Vec<WirePoint>,
    warm_restart: WarmRestartReport,
    malformed: MalformedReport,
    chaos: ChaosReport,
    fleet: FleetReport,
}

#[derive(Debug, Serialize)]
struct ConfigDoc {
    quick: bool,
    check: bool,
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    cache_shards: usize,
}

fn fresh_service() -> Service {
    Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 512,
        ..ServiceConfig::default()
    })
}

/// Runs `bodies` through a fresh service, returning per-request
/// `(micros, disposition)` in order.
fn drive(svc: &Service, bodies: &[String]) -> Vec<(f64, Disposition)> {
    bodies
        .iter()
        .map(|b| {
            let started = Instant::now();
            let reply = svc.call(b.clone());
            (
                started.elapsed().as_nanos() as f64 / 1_000.0,
                reply.disposition,
            )
        })
        .collect()
}

fn stream_report(results: &[(f64, Disposition)], total_secs: f64) -> StreamReport {
    let hist = histogram_of(results.iter().map(|(us, _)| us));
    let ok = results
        .iter()
        .filter(|(_, d)| matches!(d, Disposition::Ok { .. }))
        .count();
    let hits = results
        .iter()
        .filter(|(_, d)| matches!(d, Disposition::Ok { cached: true }))
        .count();
    StreamReport {
        requests: results.len(),
        ok,
        errors: results.len() - ok,
        cache_hits: hits,
        throughput_rps: if total_secs > 0.0 {
            results.len() as f64 / total_secs
        } else {
            0.0
        },
        p50_us: hist.quantile(0.50),
        p95_us: hist.quantile(0.95),
        p99_us: hist.quantile(0.99),
    }
}

fn paper_stream() -> Vec<String> {
    let mut bodies = Vec::new();
    for d in G2_TABLE4_DEADLINES {
        bodies.push(body_for(&g2(), d));
    }
    for d in G3_TABLE4_DEADLINES {
        bodies.push(body_for(&g3(), d));
    }
    bodies
}

fn synthetic_stream(quick: bool) -> Vec<String> {
    let ns: &[usize] = if quick { &[12, 24] } else { &[12, 24, 36, 48] };
    let ms: &[usize] = if quick { &[2, 5] } else { &[2, 4, 6, 8] };
    let mut bodies = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        for (j, &m) in ms.iter().enumerate() {
            let g = synth_graph(n, m, 0x5EED + (i * ms.len() + j) as u64);
            bodies.push(body_for(&g, loose_deadline(&g)));
        }
    }
    bodies
}

fn dup_stream(quick: bool) -> Vec<String> {
    let unique = if quick { 4 } else { 6 };
    let repeats = 10usize;
    let uniques: Vec<String> = (0..unique)
        .map(|k| {
            let g = synth_graph(32, 6, 0xD0_0D + k as u64);
            body_for(&g, loose_deadline(&g))
        })
        .collect();
    // First a cold pass over every unique body, then interleaved repeats —
    // duplicate-heavy like a fleet of clients asking the same questions.
    let mut bodies = uniques.clone();
    for r in 1..repeats {
        for k in 0..uniques.len() {
            bodies.push(uniques[(k + r) % uniques.len()].clone());
        }
    }
    bodies
}

fn malformed_stream() -> Vec<String> {
    let ok = body_for(&g2(), 75.0);
    vec![
        String::new(),
        "{".into(),
        "[1,2,3]".into(),
        "\"just a string\"".into(),
        ok.replace("\"v\":1", "\"v\":9"),
        ok.replace("\"deadline\":75", "\"deadline\":-10"),
        ok.replace("\"deadline\":75", "\"deadline\":1e999"),
        ok.replace("\"deadline\":75", "\"deadline\":0.001"), // infeasible
        ok.replace("\"edges\":[", "\"edges\":[[0,1],[0,1],"), // duplicate edge
        ok.replace("\"edges\":[", "\"edges\":[[7,99],"),     // unknown task
        ok.replace(
            "\"model\":null",
            "\"model\":{\"Kibam\":{\"c\":7.0,\"k\":-1.0,\"alpha\":0.0}}",
        ),
        ok.replace("\"model\":null", "\"model\":{\"Unobtainium\":{}}"),
        ok.replace("\"max_iterations\":null", "\"max_iterations\":0"),
        ok.replace("\"tasks\":[", "\"tasks\":3,\"was\":["),
        // A graph with a negative duration smuggled in (G2 task A runs 1.2
        // minutes at DP1; every 1.2 in the document goes negative).
        ok.replace("\"duration\":1.2", "\"duration\":-1.2"),
    ]
}

/// A framed HTTP/1.1 client on one TCP connection: responses are read by
/// their `Content-Length`, so any number of requests can share the stream.
struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    fn connect(addr: &str) -> HttpClient {
        let stream =
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("cannot connect to {addr}: {e}"));
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        HttpClient { stream, reader }
    }

    /// Sends one request and reads its framed response; `close` selects
    /// the `Connection` header. Returns `(status, head, body)`.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        close: bool,
    ) -> (u16, String, String) {
        self.request_with(method, path, &[], body, close)
    }

    /// Like [`HttpClient::request`] but with extra header lines (for
    /// example `X-Request-Id: …`) spliced into the request head.
    fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[&str],
        body: &str,
        close: bool,
    ) -> (u16, String, String) {
        let (status, head, payload) =
            self.request_raw(method, path, extra_headers, body.as_bytes(), close);
        (
            status,
            head,
            String::from_utf8(payload).expect("UTF-8 body"),
        )
    }

    /// The byte-level form of [`HttpClient::request_with`]: the request
    /// body is raw bytes (binary wire documents) and the response body
    /// comes back undecoded, so `Accept`-negotiated binary replies can be
    /// inspected as bytes.
    fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[&str],
        body: &[u8],
        close: bool,
    ) -> (u16, String, Vec<u8>) {
        let connection = if close { "close" } else { "keep-alive" };
        let extra: String = extra_headers.iter().map(|h| format!("{h}\r\n")).collect();
        let req_head = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: {connection}\r\n{extra}\r\n",
            body.len()
        );
        self.stream
            .write_all(req_head.as_bytes())
            .expect("send request head");
        self.stream.write_all(body).expect("send request body");
        let mut head = String::new();
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .expect("read response head");
            assert!(n > 0, "server closed before a full response head");
            if line.trim_end().is_empty() {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("unparseable response head: {head}"));
        let len: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("numeric Content-Length"))
            })
            .expect("response carries Content-Length");
        let mut payload = vec![0u8; len];
        self.reader
            .read_exact(&mut payload)
            .expect("read response body");
        (status, head, payload)
    }
}

/// Pulls an integer counter out of a stats JSON document.
fn stats_counter(stats_json: &str, field: &str) -> u64 {
    let tag = format!("\"{field}\":");
    let at = stats_json
        .find(&tag)
        .unwrap_or_else(|| panic!("stats field {field} missing: {stats_json}"));
    stats_json[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("stats field {field} not an integer: {stats_json}"))
}

/// The keep-alive A/B: the duplicate-heavy stream over real HTTP against
/// an in-process daemon — one fresh connection per request vs one
/// persistent connection. Cache hits make the solver cost negligible, so
/// the ratio isolates the per-connection overhead (TCP handshake +
/// connection-thread spawn) that keep-alive amortises away.
fn run_keepalive_ab(quick: bool) -> KeepAliveReport {
    let svc = Arc::new(fresh_service());
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind loadgen daemon");
    let addr = server.local_addr().to_string();

    let uniques: Vec<String> = (0..2u64)
        .map(|k| {
            let g = synth_graph(24, 5, 0xCAFE + k);
            body_for(&g, loose_deadline(&g))
        })
        .collect();
    let repeats = if quick { 60 } else { 150 };
    let mut bodies = Vec::with_capacity(uniques.len() * repeats);
    for r in 0..repeats {
        for k in 0..uniques.len() {
            bodies.push(uniques[(k + r) % uniques.len()].clone());
        }
    }
    // Prime the cache so both arms measure pure hit traffic.
    for b in &uniques {
        let (code, _, payload) =
            HttpClient::connect(&addr).request("POST", "/v1/schedule", b, true);
        assert_eq!(code, 200, "prime request failed: {payload}");
    }

    // A: a fresh TCP connection (and daemon connection thread) per request.
    let t0 = Instant::now();
    for b in &bodies {
        let (code, _, _) = HttpClient::connect(&addr).request("POST", "/v1/schedule", b, true);
        assert_eq!(code, 200);
    }
    let conn_per_request_rps = bodies.len() as f64 / t0.elapsed().as_secs_f64();

    // B: every request down one kept-alive connection.
    let t0 = Instant::now();
    let mut client = HttpClient::connect(&addr);
    for (i, b) in bodies.iter().enumerate() {
        let close = i + 1 == bodies.len();
        let (code, _, _) = client.request("POST", "/v1/schedule", b, close);
        assert_eq!(code, 200);
    }
    let keepalive_rps = bodies.len() as f64 / t0.elapsed().as_secs_f64();

    server.stop();
    server.wait();
    svc.shutdown();
    KeepAliveReport {
        requests: bodies.len(),
        unique: uniques.len(),
        conn_per_request_rps,
        keepalive_rps,
        speedup: keepalive_rps / conn_per_request_rps.max(1e-9),
    }
}

/// The wire-format admission A/B on the shared n-scaling instances: each
/// request is admitted repeatedly as JSON (`parse_request` plus the
/// streaming canonical content hash — everything the service does before
/// the cache lookup) and as binary (`decode_request`, whose single pass
/// folds the hash into the decode walk). The two spellings must produce
/// the same cache key; with `check`, the binary path must win by ≥ 2× on
/// the largest instance.
fn run_wire(quick: bool, check: bool) -> Vec<WirePoint> {
    let iters = if quick { 40 } else { 160 };
    let mut points = Vec::new();
    for &n in &[50usize, 100, 200] {
        let g = batsched_bench::workloads::synthetic_scaling(n);
        let deadline = loose_deadline(&g);
        let req = ScheduleRequest::new(g, deadline);
        let json = serde_json::to_string(&req).expect("request serialises");
        let bin = encode_request(&req);

        let json_key = parse_request(&json).expect("JSON admits").content_hash();
        let (_, bin_key) = decode_request(&bin).expect("binary admits");
        let keys_match = json_key == bin_key;
        assert!(
            keys_match,
            "n={n}: JSON and binary spellings must share one cache key \
             ({json_key:016x} vs {bin_key:016x})"
        );

        // Fold every hash into a sink so the admission work cannot be
        // optimised away.
        let mut sink = 0u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            let req = parse_request(std::hint::black_box(&json)).expect("JSON admits");
            sink = sink.wrapping_add(req.content_hash());
        }
        let json_admit_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let t0 = Instant::now();
        for _ in 0..iters {
            let (req, hash) = decode_request(std::hint::black_box(&bin)).expect("binary admits");
            std::hint::black_box(&req);
            sink = sink.wrapping_add(hash);
        }
        let bin_admit_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        std::hint::black_box(sink);

        let point = WirePoint {
            n,
            iters,
            json_admit_us,
            bin_admit_us,
            speedup: json_admit_us / bin_admit_us.max(1e-9),
            json_bytes: json.len(),
            bin_bytes: bin.len(),
            keys_match,
        };
        eprintln!(
            "wire      : n={n}, JSON admit {:.0} µs vs binary {:.0} µs → {:.1}× ({} vs {} bytes)",
            point.json_admit_us,
            point.bin_admit_us,
            point.speedup,
            point.json_bytes,
            point.bin_bytes
        );
        if check && n == 200 {
            assert!(
                point.speedup >= 2.0,
                "fused binary admission must beat JSON parse+hash by ≥ 2× at n=200, got {:.2}×",
                point.speedup
            );
        }
        points.push(point);
    }
    points
}

/// The warm-restart scenario: a disk-backed service answers a unique
/// stream cold, shuts down (compacting its JSONL tier), restarts, and
/// must answer the same stream entirely from disk with bit-identical
/// bodies.
fn run_warm_restart(quick: bool) -> WarmRestartReport {
    let dir = std::env::temp_dir().join("batsched_loadgen");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("warm_restart_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 512,
        disk_path: Some(path.clone()),
        ..ServiceConfig::default()
    };

    let unique = if quick { 4 } else { 8 };
    let bodies: Vec<String> = (0..unique)
        .map(|k| {
            let g = synth_graph(28, 5, 0xD15C + k as u64);
            body_for(&g, loose_deadline(&g))
        })
        .collect();

    let svc = Service::try_start(cfg.clone()).expect("disk-backed service");
    let first: Vec<String> = bodies
        .iter()
        .map(|b| {
            let reply = svc.call(b.clone());
            assert_eq!(
                reply.disposition,
                Disposition::Ok { cached: false },
                "first run must be cold solves"
            );
            reply.body
        })
        .collect();
    let cold_solves = svc.stats().solved as usize;
    svc.shutdown(); // compacts the disk tier

    // "Restart the daemon": a brand-new service process state, same file.
    let svc = Service::try_start(cfg).expect("restarted disk-backed service");
    let mut lat_us: Vec<f64> = Vec::with_capacity(bodies.len());
    let mut bit_identical = true;
    for (b, expect) in bodies.iter().zip(&first) {
        let t0 = Instant::now();
        let reply = svc.call(b.clone());
        lat_us.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
        assert_eq!(
            reply.disposition,
            Disposition::Ok { cached: true },
            "restarted daemon must answer warm"
        );
        bit_identical &= reply.body == *expect;
    }
    let stats = svc.stats();
    assert_eq!(
        stats.disk_hits as usize,
        bodies.len(),
        "every warm answer must come from the disk tier: {stats:?}"
    );
    assert!(bit_identical, "disk-tier bodies must be bit-identical");
    svc.shutdown();
    let hist = histogram_of(&lat_us);
    let report = WarmRestartReport {
        requests: bodies.len(),
        cold_solves_first_run: cold_solves,
        disk_hits_after_restart: stats.disk_hits as usize,
        bit_identical,
        disk_hit_p50_us: hist.quantile(0.5),
        disk_hit_p95_us: hist.quantile(0.95),
    };
    std::fs::remove_file(&path).expect("cleanup warm-restart cache file");
    report
}

/// Pulls one sample's value out of a Prometheus text exposition. Pass the
/// full sample name including any label set (`foo_total` or
/// `foo_bucket{le="+Inf"}`).
fn metrics_value(text: &str, sample: &str) -> f64 {
    text.lines()
        .find_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            (name == sample).then(|| {
                value
                    .parse()
                    .unwrap_or_else(|_| panic!("metric {sample} not numeric: {line}"))
            })
        })
        .unwrap_or_else(|| panic!("metric {sample} missing from exposition"))
}

/// Pulls a boolean field out of a stats JSON document.
fn stats_flag(stats_json: &str, field: &str) -> bool {
    let tag = format!("\"{field}\":");
    let at = stats_json
        .find(&tag)
        .unwrap_or_else(|| panic!("stats field {field} missing: {stats_json}"));
    stats_json[at + tag.len()..].starts_with("true")
}

/// The canonical chaos fault rules. `ci.sh chaos-smoke` boots a real
/// daemon with these exact specs (as `--fault` flags), so keep the two
/// lists in lockstep:
///
/// * panic the solver once, on the G2/deadline-75 request specifically
///   (it is never latency-injected, so its typed `internal` reply always
///   reaches the client instead of racing a timeout);
/// * fail disk appends 6 through 15 — enough consecutive errors to trip
///   the breaker, with leftover budget for the re-probe loop to burn
///   before a probe succeeds and re-arms the tier;
/// * sleep 500 ms (2× the 250 ms request deadline) on every 20th request,
///   at most 5 times, so some requests answer a typed `timeout`.
const CHAOS_FAULTS: [&str; 3] = [
    "solver-panic:count=1,key=\"deadline\":75",
    "disk-append:after=5,count=10",
    "solver-latency:every=20,ms=500,count=5",
];
const CHAOS_TIMEOUT_MS: u64 = 250;
const CHAOS_PROBE_MS: u64 = 150;
const CHAOS_BREAKER_THRESHOLD: u32 = 3;

/// The chaos drill (see the module docs). Self-hosts an armed service
/// over real HTTP when `addr` is `None`; otherwise drives a daemon at
/// `addr` that was booted with the [`CHAOS_FAULTS`] rules.
fn run_chaos(quick: bool, check: bool, addr: Option<&str>) -> ChaosReport {
    let hosted = if addr.is_none() {
        let dir = std::env::temp_dir().join("batsched_loadgen");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("chaos_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 512,
            disk_path: Some(path.clone()),
            request_timeout: Some(Duration::from_millis(CHAOS_TIMEOUT_MS)),
            disk_breaker_threshold: CHAOS_BREAKER_THRESHOLD,
            disk_probe_interval: Duration::from_millis(CHAOS_PROBE_MS),
            ..ServiceConfig::default()
        };
        let rules = CHAOS_FAULTS
            .iter()
            .map(|s| FaultRule::parse(s).expect("canonical chaos fault spec"));
        let svc = Arc::new(
            Service::try_start_with_faults(cfg, FaultPlane::armed(rules))
                .expect("chaos service starts"),
        );
        let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind chaos daemon");
        Some((svc, server, path))
    } else {
        None
    };
    let addr = match (&hosted, addr) {
        (Some((_, server, _)), _) => server.local_addr().to_string(),
        (None, Some(a)) => a.to_string(),
        (None, None) => unreachable!(),
    };

    // A duplicate-bearing stream: every 6th request replays the G2 body
    // (the panic target; later replays must recover and then cache), the
    // rest are unique synthetic instances (cold solves → disk appends).
    let total = if quick { 40 } else { 72 };
    let dup = body_for(&g2(), 75.0);
    let bodies: Vec<String> = (0..total)
        .map(|i| {
            if i % 6 == 5 {
                dup.clone()
            } else {
                let g = synth_graph(14, 4, 0xC4A05 + i as u64);
                body_for(&g, loose_deadline(&g))
            }
        })
        .collect();

    let mut client = HttpClient::connect(&addr);
    let (mut ok, mut timeouts, mut internal, mut unexpected) = (0usize, 0usize, 0usize, 0usize);
    for body in &bodies {
        let (code, _, payload) = client.request("POST", "/v1/schedule", body, false);
        match code {
            200 if serde_json::from_str::<ScheduleResponse>(&payload).is_ok() => ok += 1,
            _ => match serde_json::from_str::<ErrorResponse>(&payload) {
                Ok(e) if e.error == "timeout" && code == 504 => timeouts += 1,
                Ok(e) if e.error == "internal" && code == 500 => internal += 1,
                _ => {
                    eprintln!("chaos: unexpected response {code}: {payload}");
                    unexpected += 1;
                }
            },
        }
    }

    // Recovery: keep poking the daemon with unique cache-missing requests
    // so the breaker's probe path runs, until the disk tier has tripped,
    // burnt the injected-error budget and re-armed.
    let mut recovery = 0usize;
    let mut recovered = false;
    for k in 0..200u64 {
        let (code, _, stats) = client.request("GET", "/v1/stats", "", false);
        assert_eq!(code, 200, "stats must stay up under chaos: {stats}");
        if stats_counter(&stats, "disk_breaker_trips") >= 1
            && stats_counter(&stats, "disk_rearms") >= 1
            && !stats_flag(&stats, "disk_degraded")
        {
            recovered = true;
            break;
        }
        let g = synth_graph(12, 3, 0xFEE1BAD + k);
        let body = body_for(&g, loose_deadline(&g));
        let (code, _, payload) = client.request("POST", "/v1/schedule", &body, false);
        match code {
            200 => {}
            504 | 500 => {} // injected latency / leftover faults: still typed
            other => panic!("chaos recovery: unexpected response {other}: {payload}"),
        }
        recovery += 1;
        std::thread::sleep(Duration::from_millis(60));
    }

    let (code, _, stats) = client.request("GET", "/v1/stats", "", false);
    assert_eq!(code, 200);
    // The armed fault plane must be visible through BOTH observability
    // surfaces: the stats JSON and the Prometheus exposition.
    let (code, _, metrics) = client.request("GET", "/v1/metrics", "", true);
    assert_eq!(code, 200, "metrics must stay up under chaos");
    let injected_metric = metrics_value(&metrics, "batsched_fault_injected_total");
    let report = ChaosReport {
        requests: bodies.len(),
        ok,
        timeouts,
        internal_errors: internal,
        unexpected_responses: unexpected,
        recovery_requests: recovery,
        worker_panics: stats_counter(&stats, "worker_panics"),
        worker_respawns: stats_counter(&stats, "worker_respawns"),
        disk_errors: stats_counter(&stats, "disk_errors"),
        disk_breaker_trips: stats_counter(&stats, "disk_breaker_trips"),
        disk_rearms: stats_counter(&stats, "disk_rearms"),
        faults_injected: stats_counter(&stats, "faults_injected"),
        recovered,
    };
    assert_eq!(
        report.faults_injected, injected_metric as u64,
        "stats and metrics must agree on injected-fault counts"
    );

    match hosted {
        Some((svc, server, path)) => {
            server.stop();
            server.wait();
            svc.shutdown();
            let _ = std::fs::remove_file(&path);
        }
        None => {
            let (code, payload) = http_call(&addr, "POST", "/v1/shutdown", "");
            assert_eq!(code, 200, "chaos daemon must shut down cleanly: {payload}");
        }
    }

    assert_eq!(
        report.ok + report.timeouts + report.internal_errors + report.unexpected_responses,
        report.requests,
        "every request must get exactly one response"
    );
    if check {
        assert_eq!(
            report.unexpected_responses, 0,
            "chaos responses must all be schedules or typed timeout/internal errors"
        );
        assert!(
            report.timeouts >= 1,
            "injected latency must cause a typed timeout: {report:?}"
        );
        assert!(
            report.internal_errors >= 1,
            "the injected panic must answer typed: {report:?}"
        );
        assert!(report.worker_panics >= 1, "{report:?}");
        assert!(
            report.worker_respawns >= 1,
            "the pool must respawn its panicked worker: {report:?}"
        );
        assert!(
            report.disk_errors >= u64::from(CHAOS_BREAKER_THRESHOLD),
            "{report:?}"
        );
        assert!(
            report.disk_breaker_trips >= 1,
            "the disk burst must trip the breaker: {report:?}"
        );
        assert!(
            report.recovered && report.disk_rearms >= 1,
            "the disk tier must re-arm once the fault burst passes: {report:?}"
        );
        assert!(
            report.faults_injected >= 1,
            "an armed fault run must leave fault_injected_total > 0: {report:?}"
        );
    }
    report
}

/// Pulls one header's value out of a response head.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

/// A one-shot HTTP call that reports transport failures instead of
/// panicking — the kill-drill classifier: any `Err` is a *lost* request
/// (the fleet broke its exactly-once answer contract).
fn try_http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a full response head",
            ));
        }
        if line.trim_end().is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable status line")
        })?;
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            if n.eq_ignore_ascii_case("content-length") {
                v.trim().parse().ok()
            } else {
                None
            }
        })
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response has no Content-Length",
            )
        })?;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok((status, head, String::from_utf8_lossy(&payload).into_owned()))
}

/// The duplicate-heavy fleet stream: `unique` distinct bodies repeated
/// round-robin so every worker's cache slice stays hot.
fn fleet_stream(uniques: &[String], repeats: usize) -> Vec<String> {
    let mut bodies = Vec::with_capacity(uniques.len() * repeats);
    for r in 0..repeats {
        for k in 0..uniques.len() {
            bodies.push(uniques[(k + r) % uniques.len()].clone());
        }
    }
    bodies
}

/// The fleet drill (see the module docs): single-process baseline vs a
/// 3-worker in-process fleet on the duplicate-heavy stream, then the
/// zero-loss kill drill — the worker owning `uniques[0]`'s hash slice is
/// killed mid-burst and every request must still be answered exactly
/// once, with the dead worker respawned and the fleet back to ready.
fn run_fleet(quick: bool, check: bool) -> FleetReport {
    const FLEET_SIZE: usize = 3;
    let worker_cfg = ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 256,
        ..ServiceConfig::default()
    };
    let uniques: Vec<String> = (0..FLEET_SIZE as u64)
        .map(|k| {
            let g = synth_graph(24, 5, 0xF1EE7 + k);
            body_for(&g, loose_deadline(&g))
        })
        .collect();
    let repeats = if quick { 30 } else { 80 };
    let bodies = fleet_stream(&uniques, repeats);

    // Phase A: the single-process baseline — same worker config, same
    // duplicate-heavy stream, one kept-alive connection.
    let svc = Arc::new(Service::start(worker_cfg.clone()));
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind baseline daemon");
    let addr = server.local_addr().to_string();
    for b in &uniques {
        let (code, _, payload) =
            HttpClient::connect(&addr).request("POST", "/v1/schedule", b, true);
        assert_eq!(code, 200, "baseline prime failed: {payload}");
    }
    let t0 = Instant::now();
    let mut client = HttpClient::connect(&addr);
    for (i, b) in bodies.iter().enumerate() {
        let (code, _, _) = client.request("POST", "/v1/schedule", b, i + 1 == bodies.len());
        assert_eq!(code, 200);
    }
    let single_rps = bodies.len() as f64 / t0.elapsed().as_secs_f64();
    server.stop();
    server.wait();
    svc.shutdown();

    // Phase B: the same stream through the router, workers' caches hot on
    // their hash slices.
    let fleet_cfg = FleetConfig {
        size: FLEET_SIZE,
        retry_budget: 2,
        upstream_timeout: Duration::from_secs(5),
        probe_interval: Duration::from_millis(40),
        backoff_base: Duration::from_millis(80),
        backoff_max: Duration::from_millis(800),
        breaker_threshold: 3,
        drain_timeout: Duration::from_secs(10),
        start_timeout: Duration::from_secs(20),
    };
    let fleet = Fleet::start(
        fleet_cfg,
        Box::new(InProcessLauncher::new(worker_cfg)),
        "127.0.0.1:0",
    )
    .expect("fleet starts");
    assert!(
        fleet.wait_ready(Duration::from_secs(30)),
        "fleet must become ready: {:?}",
        fleet.status()
    );
    let addr = fleet.local_addr().to_string();
    for b in &uniques {
        let (code, _, payload) =
            HttpClient::connect(&addr).request("POST", "/v1/schedule", b, true);
        assert_eq!(code, 200, "fleet prime failed: {payload}");
    }
    // Routing is pinned: duplicates of one body land on one worker.
    let mut client = HttpClient::connect(&addr);
    let (_, head_a, _) = client.request("POST", "/v1/schedule", &uniques[0], false);
    let (_, head_b, _) = client.request("POST", "/v1/schedule", &uniques[0], false);
    let pinned = header_value(&head_a, "X-Fleet-Worker").expect("router names its worker");
    assert_eq!(
        Some(&pinned),
        header_value(&head_b, "X-Fleet-Worker").as_ref(),
        "duplicates must pin to one worker"
    );
    let t0 = Instant::now();
    for (i, b) in bodies.iter().enumerate() {
        let (code, _, _) = client.request("POST", "/v1/schedule", b, i + 1 == bodies.len());
        assert_eq!(code, 200);
    }
    let fleet_rps = bodies.len() as f64 / t0.elapsed().as_secs_f64();

    // Phase C: the kill drill. The victim is the worker that owns
    // uniques[0]'s hash slice, so the burst is guaranteed to exercise
    // failover. One fresh connection per request so every outcome is
    // classified (an Err is a LOST request — the acceptance gate).
    let victim = home_slot(
        batsched_service::wire::fnv1a64(uniques[0].as_bytes()),
        FLEET_SIZE,
    );
    assert_eq!(
        pinned,
        victim.to_string(),
        "router and home_slot must agree on the owner"
    );
    let burst = fleet_stream(&uniques, if quick { 10 } else { 20 });
    let kill_at = burst.len() / 3;
    let (mut ok, mut unavailable, mut other, mut lost) = (0usize, 0usize, 0usize, 0usize);
    for (i, b) in burst.iter().enumerate() {
        if i == kill_at {
            assert!(fleet.kill_worker(victim), "victim worker must be live");
        }
        match try_http_call(&addr, "POST", "/v1/schedule", b) {
            Ok((200, _, _)) => ok += 1,
            Ok((503, _, payload)) if payload.contains("upstream_unavailable") => unavailable += 1,
            Ok((code, _, payload)) => {
                eprintln!("fleet: unexpected response {code}: {payload}");
                other += 1;
            }
            Err(e) => {
                eprintln!("fleet: LOST request {i}: {e}");
                lost += 1;
            }
        }
    }
    let ready_after_kill = fleet.wait_ready(Duration::from_secs(30));
    let status = fleet.status();
    let respawned = status.workers[victim].restarts >= 1;
    let report = FleetReport {
        workers: FLEET_SIZE,
        requests: bodies.len(),
        single_rps,
        fleet_rps,
        fleet_vs_single: fleet_rps / single_rps.max(1e-9),
        kill_burst_requests: burst.len(),
        kill_burst_ok: ok,
        kill_burst_unavailable: unavailable,
        kill_burst_other: other,
        lost,
        router_retries: status.retries,
        respawned,
        ready_after_kill,
    };
    fleet.shutdown();

    assert_eq!(
        report.kill_burst_ok
            + report.kill_burst_unavailable
            + report.kill_burst_other
            + report.lost,
        report.kill_burst_requests,
        "every kill-burst request must be classified"
    );
    if check {
        assert_eq!(
            report.lost, 0,
            "kill -9 must lose zero requests: {report:?}"
        );
        assert_eq!(
            report.kill_burst_other, 0,
            "kill-burst responses must be schedules or typed upstream_unavailable: {report:?}"
        );
        assert_eq!(
            report.kill_burst_ok, report.kill_burst_requests,
            "with two survivors and retry budget 2, every request must fail over: {report:?}"
        );
        assert!(
            report.respawned,
            "the killed worker must be respawned with backoff: {report:?}"
        );
        assert!(
            report.ready_after_kill,
            "the fleet must return to fully ready: {report:?}"
        );
        // The router proxies over loopback and this box is single-core,
        // so the fleet cannot win on hit traffic — the floor only guards
        // against pathological proxy overhead. Multi-core scaling is
        // unmeasured here (see ROADMAP's standing constraints).
        assert!(
            report.fleet_vs_single >= 0.15,
            "routed throughput collapsed vs single process: {report:?}"
        );
    }
    report
}

/// Every `u64` value of `field` in a JSON document, in order of
/// appearance (non-numeric values, e.g. `null` pids, are skipped).
fn json_u64_all(doc: &str, field: &str) -> Vec<u64> {
    let tag = format!("\"{field}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find(&tag) {
        let after = &rest[at + tag.len()..];
        let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(v) = digits.parse() {
            out.push(v);
        }
        rest = after;
    }
    out
}

/// The external fleet drill (the `ci.sh fleet-smoke` check) against a
/// running `batsched fleet` daemon: warm burst with pinned routing, a
/// real `kill -9` of one worker mid-burst (zero lost requests), respawn
/// and `/readyz` recovery, a drain/restart drill asserting the
/// ready → not-ready → ready transition, then shutdown.
fn run_fleet_smoke(addr: &str) {
    // Wait out worker boot: /readyz answers 503 with per-worker reasons
    // until every worker probes ready.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (code, ready) = http_call(addr, "GET", "/readyz", "");
        if code == 200 {
            assert!(ready.contains("\"ready\":true"), "{ready}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never became ready: {ready}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let (code, topo) = http_call(addr, "GET", "/v1/fleet", "");
    assert_eq!(code, 200, "{topo}");
    let size = json_u64_all(&topo, "size")[0] as usize;
    assert!(size >= 2, "the drill needs at least two workers: {topo}");
    let pids = json_u64_all(&topo, "pid");
    assert_eq!(
        pids.len(),
        size,
        "every ready worker must report a pid: {topo}"
    );

    // Warm burst down one kept-alive connection; duplicates must pin to
    // one worker per content hash.
    let uniques: Vec<String> = (0..size as u64)
        .map(|k| {
            let g = synth_graph(24, 5, 0xF1EE7 + k);
            body_for(&g, loose_deadline(&g))
        })
        .collect();
    let mut client = HttpClient::connect(addr);
    for b in fleet_stream(&uniques, 6) {
        let (code, _, payload) = client.request("POST", "/v1/schedule", &b, false);
        assert_eq!(code, 200, "warm burst request failed: {payload}");
    }
    let (_, head_a, _) = client.request("POST", "/v1/schedule", &uniques[0], false);
    let (_, head_b, _) = client.request("POST", "/v1/schedule", &uniques[0], true);
    let owner = header_value(&head_a, "X-Fleet-Worker").expect("router names its worker");
    assert_eq!(
        Some(&owner),
        header_value(&head_b, "X-Fleet-Worker").as_ref(),
        "duplicates must pin to one worker"
    );
    let victim: usize = owner.parse().expect("worker id is a slot index");

    // kill -9 the owner of uniques[0]'s slice, then burst: every request
    // must be answered exactly once — failed over onto a survivor (the
    // requests are idempotent by content hash) or a typed 503.
    let killed = std::process::Command::new("kill")
        .args(["-9", &pids[victim].to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {} failed", pids[victim]);
    let (mut ok, mut unavailable, mut lost) = (0usize, 0usize, 0usize);
    for (i, b) in fleet_stream(&uniques, 10).iter().enumerate() {
        match try_http_call(addr, "POST", "/v1/schedule", b) {
            // The answering worker is NOT asserted: with a 100 ms backoff
            // the killed slot can legitimately respawn and re-claim its
            // slice before the burst ends. Exactly-once is the contract.
            Ok((200, _, _)) => ok += 1,
            Ok((503, _, payload)) if payload.contains("upstream_unavailable") => unavailable += 1,
            Ok((code, _, payload)) => panic!("kill burst: unexpected response {code}: {payload}"),
            Err(e) => {
                eprintln!("kill burst: LOST request {i}: {e}");
                lost += 1;
            }
        }
    }
    assert_eq!(lost, 0, "kill -9 must lose zero requests");
    assert_eq!(
        ok + unavailable,
        size * 10,
        "every kill-burst request must be answered exactly once"
    );
    assert_eq!(
        unavailable, 0,
        "with surviving workers and a retry budget, nothing should exhaust failover"
    );

    // The monitor must respawn the killed worker (new pid, restarts ≥ 1)
    // and the fleet must return to fully ready.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (code, topo) = http_call(addr, "GET", "/v1/fleet", "");
        assert_eq!(code, 200, "{topo}");
        let restarts = json_u64_all(&topo, "restarts");
        if restarts.get(victim).copied().unwrap_or(0) >= 1 && topo.contains("\"ready\":true") {
            let new_pids = json_u64_all(&topo, "pid");
            assert_eq!(new_pids.len(), size, "{topo}");
            assert_ne!(
                new_pids[victim], pids[victim],
                "the respawned worker must be a new process: {topo}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed worker was not respawned: {topo}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let (code, ready) = http_call(addr, "GET", "/readyz", "");
    assert_eq!(code, 200, "fleet must be ready after the respawn: {ready}");

    // Drain drill: /readyz must transition 200 → 503 (one worker down,
    // announced) → 200 (restarted and re-admitted), and the drained
    // requests keep answering from the rest of the fleet.
    let (code, payload) = http_call(addr, "POST", "/v1/fleet/drain/0", "");
    assert_eq!(
        code, 200,
        "drain of a ready worker must be accepted: {payload}"
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_not_ready = false;
    loop {
        let (code, _) = http_call(addr, "GET", "/readyz", "");
        if code == 503 {
            saw_not_ready = true;
        }
        let (_, topo) = http_call(addr, "GET", "/v1/fleet", "");
        if saw_not_ready && code == 200 && topo.contains("\"ready\":true") {
            assert!(
                json_u64_all(&topo, "drains").first().copied().unwrap_or(0) >= 1,
                "the drain must be accounted: {topo}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain/restart did not complete (saw_not_ready={saw_not_ready})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The router's own metrics surface must name the fleet series.
    let (code, metrics) = http_call(addr, "GET", "/v1/metrics", "");
    assert_eq!(code, 200, "{metrics}");
    for series in [
        "batsched_fleet_size",
        "batsched_fleet_requests_total",
        "batsched_fleet_worker_up",
        "batsched_fleet_worker_restarts_total",
    ] {
        assert!(metrics.contains(series), "{series} missing:\n{metrics}");
    }

    let (code, payload) = http_call(addr, "POST", "/v1/shutdown", "");
    assert_eq!(code, 200, "{payload}");
    println!("FLEET SMOKE OK ({addr}, {size} workers, kill -9 lost 0 requests)");
}

fn run_benchmark(quick: bool, check: bool) {
    let cfg = ConfigDoc {
        quick,
        check,
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 512,
        cache_shards: ServiceConfig::default().cache_shards,
    };

    // Paper stream (all unique).
    let svc = fresh_service();
    let bodies = paper_stream();
    let t0 = Instant::now();
    let results = drive(&svc, &bodies);
    let paper = stream_report(&results, t0.elapsed().as_secs_f64());
    svc.shutdown();
    eprintln!(
        "paper     : {} reqs, p50 {:.0} µs, p99 {:.0} µs",
        paper.requests, paper.p50_us, paper.p99_us
    );

    // Synthetic grid (all unique).
    let svc = fresh_service();
    let bodies = synthetic_stream(quick);
    let t0 = Instant::now();
    let results = drive(&svc, &bodies);
    let synthetic = stream_report(&results, t0.elapsed().as_secs_f64());
    svc.shutdown();
    eprintln!(
        "synthetic : {} reqs, p50 {:.0} µs, p99 {:.0} µs",
        synthetic.requests, synthetic.p50_us, synthetic.p99_us
    );

    // Duplicate-heavy stream: cold vs hit latency.
    let svc = fresh_service();
    let bodies = dup_stream(quick);
    let results = drive(&svc, &bodies);
    let mut seen: HashSet<&String> = HashSet::new();
    let mut cold: Vec<f64> = Vec::new();
    let mut hit: Vec<f64> = Vec::new();
    for (body, (us, disposition)) in bodies.iter().zip(&results) {
        assert!(
            matches!(disposition, Disposition::Ok { .. }),
            "dup stream must only contain solvable requests"
        );
        if seen.insert(body) {
            cold.push(*us);
        } else {
            hit.push(*us);
        }
    }
    let cold_hist = histogram_of(&cold);
    let hit_hist = histogram_of(&hit);
    let stats = svc.stats();
    let dup = DupReport {
        requests: results.len(),
        unique: seen.len(),
        cache_hits: stats.cache_hits as usize,
        cold_p50_us: cold_hist.quantile(0.5),
        cold_p99_us: cold_hist.quantile(0.99),
        hit_p50_us: hit_hist.quantile(0.5),
        hit_p99_us: hit_hist.quantile(0.99),
        hit_speedup: cold_hist.quantile(0.5) / hit_hist.quantile(0.5).max(1e-9),
    };
    svc.shutdown();
    eprintln!(
        "dup       : {} reqs ({} unique), cold p50 {:.0} µs vs hit p50 {:.0} µs → {:.1}×",
        dup.requests, dup.unique, dup.cold_p50_us, dup.hit_p50_us, dup.hit_speedup
    );
    assert!(
        dup.hit_speedup >= 10.0,
        "cache-hit path must be ≥ 10× faster than a cold solve, got {:.1}×",
        dup.hit_speedup
    );
    assert_eq!(
        dup.cache_hits,
        dup.requests - dup.unique,
        "every duplicate must be served from the cache"
    );

    // Keep-alive vs connection-per-request over real HTTP.
    let keepalive = run_keepalive_ab(quick);
    eprintln!(
        "keepalive : {} reqs, conn/req {:.0} rps vs keep-alive {:.0} rps → {:.1}×",
        keepalive.requests,
        keepalive.conn_per_request_rps,
        keepalive.keepalive_rps,
        keepalive.speedup
    );
    if check {
        assert!(
            keepalive.speedup >= 1.5,
            "keep-alive must beat connection-per-request by ≥ 1.5× on the duplicate-heavy stream, got {:.2}×",
            keepalive.speedup
        );
    }

    // Scaling stream: cold solves on the shared n-scaling instances, each
    // under a slightly different deadline so the cache never answers.
    let svc = fresh_service();
    let reqs = if quick { 4 } else { 8 };
    let mut scaling = Vec::new();
    for &n in &[50usize, 100, 200] {
        let g = batsched_bench::workloads::synthetic_scaling(n);
        let base = loose_deadline(&g);
        let bodies: Vec<String> = (0..reqs)
            .map(|k| body_for(&g, base + k as f64 * 0.1))
            .collect();
        let results = drive(&svc, &bodies);
        let lat: Vec<f64> = results
            .iter()
            .map(|(us, d)| {
                assert!(
                    matches!(d, Disposition::Ok { cached: false }),
                    "scaling stream must be all cold solves"
                );
                *us
            })
            .collect();
        let hist = histogram_of(&lat);
        let point = ScalingPoint {
            n,
            requests: bodies.len(),
            cold_p50_us: hist.quantile(0.5),
            cold_p95_us: hist.quantile(0.95),
        };
        eprintln!(
            "scaling   : n={n}, {} reqs, cold p50 {:.0} µs",
            point.requests, point.cold_p50_us
        );
        scaling.push(point);
    }
    svc.shutdown();

    // Wire-format admission A/B on the same scaling instances.
    let wire = run_wire(quick, check);

    // Warm restart: cold solves, compact-on-shutdown, disk-tier replay.
    let warm_restart = run_warm_restart(quick);
    eprintln!(
        "warm      : {} reqs cold, restart → {} disk hits (bit-identical: {}), p50 {:.0} µs",
        warm_restart.requests,
        warm_restart.disk_hits_after_restart,
        warm_restart.bit_identical,
        warm_restart.disk_hit_p50_us
    );

    // Malformed stream: typed errors, no panics, daemon stays up.
    let svc = fresh_service();
    let bodies = malformed_stream();
    let results = drive(&svc, &bodies);
    let mut typed = 0usize;
    let mut unexpected_ok = 0usize;
    for (body, (_, disposition)) in bodies.iter().zip(&results) {
        match disposition {
            Disposition::Ok { .. } => {
                eprintln!("UNEXPECTED OK for malformed input: {body}");
                unexpected_ok += 1;
            }
            _ => typed += 1,
        }
    }
    // The daemon must still answer a good request afterwards.
    let after = svc.call(body_for(&g2(), 75.0));
    assert!(
        matches!(after.disposition, Disposition::Ok { .. }),
        "daemon must survive the malformed stream"
    );
    let malformed = MalformedReport {
        requests: results.len(),
        typed_errors: typed,
        unexpected_ok,
    };
    svc.shutdown();
    eprintln!(
        "malformed : {} reqs, {} typed errors",
        malformed.requests, malformed.typed_errors
    );
    assert_eq!(
        malformed.unexpected_ok, 0,
        "malformed inputs must all be rejected with typed errors"
    );

    // Chaos drill: injected faults, typed answers, degraded-mode recovery.
    let chaos = run_chaos(quick, check, None);
    eprintln!(
        "chaos     : {} reqs → {} ok / {} timeout / {} internal; {} panics, {} respawns, breaker {}→{} (recovered: {})",
        chaos.requests,
        chaos.ok,
        chaos.timeouts,
        chaos.internal_errors,
        chaos.worker_panics,
        chaos.worker_respawns,
        chaos.disk_breaker_trips,
        chaos.disk_rearms,
        chaos.recovered
    );

    // Fleet drill: router + 3 workers, kill one mid-burst, lose nothing.
    let fleet = run_fleet(quick, check);
    eprintln!(
        "fleet     : {} reqs, single {:.0} rps vs fleet {:.0} rps ({:.2}×); kill burst {} → {} ok / {} lost (respawned: {})",
        fleet.requests,
        fleet.single_rps,
        fleet.fleet_rps,
        fleet.fleet_vs_single,
        fleet.kill_burst_requests,
        fleet.kill_burst_ok,
        fleet.lost,
        fleet.respawned
    );

    let doc = BenchDoc {
        config: cfg,
        paper,
        synthetic,
        dup,
        keepalive,
        scaling,
        wire,
        warm_restart,
        malformed,
        chaos,
        fleet,
    };
    let json = serde_json::to_string_pretty(&doc).expect("bench doc serialises");
    std::fs::write("BENCH_service.json", format!("{json}\n")).expect("write BENCH_service.json");
    eprintln!("wrote BENCH_service.json");
}

// ------------------------------------------------------------- smoke mode

fn http_call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let (code, _, payload) = HttpClient::connect(addr).request(method, path, body, true);
    (code, payload)
}

fn run_smoke(addr: &str) {
    let body = body_for(&g2(), 75.0);
    let (code, cold) = http_call(addr, "POST", "/v1/schedule", &body);
    assert_eq!(code, 200, "schedule must answer 2xx: {cold}");
    let resp: ScheduleResponse =
        serde_json::from_str(&cold).expect("schedule response body parses");
    assert!(resp.makespan <= 75.0 + 1e-9);
    assert_eq!(resp.order.len(), 9);

    // A malformed request must come back as a typed 4xx, not kill the daemon.
    let (code, payload) = http_call(addr, "POST", "/v1/schedule", "{ nope");
    assert_eq!(code, 400, "{payload}");
    let err: ErrorResponse = serde_json::from_str(&payload).expect("typed error body");
    assert_eq!(err.error, "bad_json");

    // Keep-alive pass: several requests down ONE connection — the replay
    // must be a cache hit, interleaved stats/health must stay framed.
    let mut client = HttpClient::connect(addr);
    let (code, head, replay) = client.request("POST", "/v1/schedule", &body, false);
    assert_eq!(code, 200, "{replay}");
    assert!(
        head.contains("X-Cache: hit"),
        "keep-alive replay must hit: {head}"
    );
    assert_eq!(replay, cold, "hit must be bit-identical");
    let (code, _, stats) = client.request("GET", "/v1/stats", "", false);
    assert_eq!(code, 200);
    assert!(stats.contains("\"solved\":"), "{stats}");
    assert!(stats.contains("\"shard_occupancy\":"), "{stats}");
    let (code, _, health) = client.request("GET", "/healthz", "", false);
    assert_eq!(code, 200, "{health}");
    // Readiness: a healthy daemon with its full worker pool must be ready.
    let (code, _, ready) = client.request("GET", "/readyz", "", false);
    assert_eq!(
        code, 200,
        "ready daemon must answer 200 on /readyz: {ready}"
    );
    assert!(ready.contains("\"ready\":true"), "{ready}");

    // Binary wire format end-to-end: the binary spelling of the same
    // request must hit the cache entry the JSON cold solve created (one
    // canonical key across formats) and answer the identical JSON body.
    let bin = encode_request(&ScheduleRequest::new(g2(), 75.0));
    let (code, head, payload) = client.request_raw(
        "POST",
        "/v1/schedule",
        &["Content-Type: application/x-batsched-bin"],
        &bin,
        false,
    );
    assert_eq!(code, 200, "binary request must answer 2xx");
    assert!(
        head.contains("X-Cache: hit"),
        "binary spelling must share the JSON request's cache entry: {head}"
    );
    assert_eq!(
        String::from_utf8(payload).expect("JSON reply"),
        cold,
        "cross-format cache hit must be bit-identical"
    );
    // And an `Accept`-negotiated binary response must transcode back to
    // the exact canonical JSON body.
    let (code, head, raw) = client.request_raw(
        "POST",
        "/v1/schedule",
        &[
            "Content-Type: application/x-batsched-bin",
            "Accept: application/x-batsched-bin",
        ],
        &bin,
        true,
    );
    assert_eq!(code, 200, "binary-accept request must answer 2xx");
    assert!(
        head.contains("application/x-batsched-bin"),
        "Accept-negotiated reply must declare the binary media type: {head}"
    );
    let resp = decode_response(&raw).expect("binary response decodes");
    assert_eq!(
        serde_json::to_string(&resp).expect("response renders"),
        cold,
        "binary response must transcode losslessly to the canonical body"
    );

    let (code, payload) = http_call(addr, "POST", "/v1/shutdown", "");
    assert_eq!(code, 200, "{payload}");
    println!("SMOKE OK ({addr})");
}

/// The post-restart probe: a daemon restarted onto a warm disk-cache file
/// must answer the same schedule request as a hit served from its disk
/// tier, bit-identical to a fresh solve of the same request.
fn run_smoke_warm(addr: &str) {
    let body = body_for(&g2(), 75.0);
    let mut client = HttpClient::connect(addr);
    let (code, head, payload) = client.request("POST", "/v1/schedule", &body, false);
    assert_eq!(code, 200, "warm schedule must answer 2xx: {payload}");
    assert!(
        head.contains("X-Cache: hit"),
        "restarted daemon must answer from its disk tier: {head}"
    );
    let resp: ScheduleResponse =
        serde_json::from_str(&payload).expect("schedule response body parses");
    assert!(resp.makespan <= 75.0 + 1e-9);

    let (code, _, stats) = client.request("GET", "/v1/stats", "", false);
    assert_eq!(code, 200);
    assert!(
        stats_counter(&stats, "disk_hits") >= 1,
        "stats must attribute the warm answer to the disk tier: {stats}"
    );
    assert!(
        stats_counter(&stats, "solved") == 0,
        "nothing should have been re-solved: {stats}"
    );

    // The binary spelling of the same request must be answered warm from
    // the same (JSON-era) disk tier, bit-identical to the JSON answer.
    let bin = encode_request(&ScheduleRequest::new(g2(), 75.0));
    let (code, head, warm_bin) = client.request_raw(
        "POST",
        "/v1/schedule",
        &["Content-Type: application/x-batsched-bin"],
        &bin,
        true,
    );
    assert_eq!(code, 200, "binary warm request must answer 2xx");
    assert!(
        head.contains("X-Cache: hit"),
        "binary spelling must answer warm from the disk-seeded cache: {head}"
    );
    assert_eq!(
        String::from_utf8(warm_bin).expect("JSON reply"),
        payload,
        "cross-format warm answer must be bit-identical"
    );

    let (code, payload) = http_call(addr, "POST", "/v1/shutdown", "");
    assert_eq!(code, 200, "{payload}");
    println!("SMOKE WARM OK ({addr})");
}

/// The metrics smoke (the `ci.sh metrics-smoke` check): against a freshly
/// booted daemon, drive a known mix of traffic — one cold solve, two
/// cache hits, one malformed request — then scrape `GET /v1/metrics` and
/// assert the exposition is well-formed Prometheus text whose histogram
/// counts match exactly the requests this function sent.
fn run_metrics_smoke(addr: &str) {
    let mut client = HttpClient::connect(addr);

    // The daemon must be ready before we lean on it.
    let (code, _, ready) = client.request("GET", "/readyz", "", false);
    assert_eq!(code, 200, "booted daemon must be ready: {ready}");
    assert!(ready.contains("\"ready\":true"), "{ready}");

    // One cold solve carrying a client trace id: the id must be echoed.
    let body = body_for(&g2(), 75.0);
    let (code, head, _) = client.request_with(
        "POST",
        "/v1/schedule",
        &["X-Request-Id: metrics-smoke-1"],
        &body,
        false,
    );
    assert_eq!(code, 200);
    assert!(
        head.contains("X-Request-Id: metrics-smoke-1"),
        "client trace id must be echoed: {head}"
    );
    // Two cache hits and one malformed request (a typed 400 also gets its
    // id echoed and is still a served request as far as histograms go).
    for _ in 0..2 {
        let (code, head, _) = client.request("POST", "/v1/schedule", &body, false);
        assert_eq!(code, 200);
        assert!(head.contains("X-Cache: hit"), "{head}");
    }
    let (code, head, _) = client.request_with(
        "POST",
        "/v1/schedule",
        &["X-Request-Id: metrics-smoke-bad"],
        "{ nope",
        false,
    );
    assert_eq!(code, 400);
    assert!(
        head.contains("X-Request-Id: metrics-smoke-bad"),
        "typed errors must echo the client trace id too: {head}"
    );
    let served = 4u64; // cold + 2 hits + malformed

    let (code, head, text) = client.request("GET", "/v1/metrics", "", true);
    assert_eq!(code, 200, "{text}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain"),
        "metrics must be text exposition: {head}"
    );

    // Well-formedness: every line is a comment or `sample value` with a
    // parseable float value; the exposition declares its metric types.
    let mut types = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let kind = decl.split_whitespace().nth(1).unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric type: {line}"
            );
            types += 1;
            continue;
        }
        assert!(!line.starts_with('#'), "only # TYPE comments are emitted");
        let (sample, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line: {line}"));
        assert!(!sample.is_empty(), "malformed sample line: {line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line}"));
    }
    assert!(types >= 10, "exposition too thin: {types} # TYPE lines");

    // Histogram contract: cumulative buckets are monotone and the +Inf
    // bucket equals _count; _count equals the requests this smoke served.
    let buckets: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("batsched_request_duration_us_bucket{le="))
        .map(|l| {
            l.rsplit_once(' ')
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or_else(|| panic!("malformed bucket line: {l}"))
        })
        .collect();
    assert!(buckets.len() >= 2, "request histogram has no buckets");
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "cumulative buckets must be monotone: {buckets:?}"
    );
    let count = metrics_value(&text, "batsched_request_duration_us_count");
    assert_eq!(
        *buckets.last().expect("nonempty") as u64,
        count as u64,
        "+Inf bucket must equal _count"
    );
    assert_eq!(
        count as u64, served,
        "request histogram must count exactly the requests served"
    );
    for stage in [
        "queue",
        "parse",
        "hash",
        "cache",
        "disk",
        "solve",
        "serialize",
    ] {
        let stage_count = metrics_value(
            &text,
            &format!("batsched_stage_duration_us_count{{stage=\"{stage}\"}}"),
        );
        assert_eq!(
            stage_count as u64, served,
            "stage {stage} histogram must count every request served"
        );
    }
    // Exactly one cold solve ran, so the solve histogram is nonzero.
    let cold = metrics_value(&text, "batsched_solve_cold_duration_us_count");
    assert_eq!(cold as u64, 1, "exactly one cold solve must be recorded");
    assert!(
        metrics_value(&text, "batsched_solve_cold_duration_us_sum") > 0.0,
        "a real solve cannot take zero time"
    );
    assert_eq!(metrics_value(&text, "batsched_ready") as u64, 1);
    assert_eq!(
        metrics_value(&text, "batsched_cache_hits_total") as u64,
        2,
        "both replays must be cache hits"
    );

    let (code, payload) = http_call(addr, "POST", "/v1/shutdown", "");
    assert_eq!(code, 200, "{payload}");
    println!("METRICS SMOKE OK ({addr}, {served} requests)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let smoke = args.iter().any(|a| a == "--smoke");
    let smoke_warm = args.iter().any(|a| a == "--smoke-warm");
    let metrics_smoke = args.iter().any(|a| a == "--metrics-smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    let wire = args.iter().any(|a| a == "--wire");
    let fleet = args.iter().any(|a| a == "--fleet");
    let fleet_smoke = args.iter().any(|a| a == "--fleet-smoke");
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1));
    // Exercised so the canonical-form constant stays a public contract.
    let _ = (DEFAULT_MAX_ITERATIONS, ModelSpec::default_rv());
    if wire {
        let points = run_wire(quick, check);
        eprintln!(
            "{}",
            serde_json::to_string_pretty(&points).expect("wire report serialises")
        );
        let at_200 = points.last().expect("three scaling points");
        println!(
            "WIRE OK ({} points, {:.1}× at n=200, keys match)",
            points.len(),
            at_200.speedup
        );
    } else if fleet_smoke {
        run_fleet_smoke(addr.expect("--fleet-smoke needs --addr <host:port>"));
    } else if fleet {
        let report = run_fleet(quick, check);
        eprintln!(
            "{}",
            serde_json::to_string_pretty(&report).expect("fleet report serialises")
        );
        println!(
            "FLEET OK ({} workers, kill burst {} requests, {} lost, respawned: {})",
            report.workers, report.kill_burst_requests, report.lost, report.respawned
        );
    } else if chaos {
        let report = run_chaos(quick, check, addr.map(String::as_str));
        eprintln!(
            "{}",
            serde_json::to_string_pretty(&report).expect("chaos report serialises")
        );
        println!(
            "CHAOS OK ({} requests, recovered: {})",
            report.requests, report.recovered
        );
    } else if smoke || smoke_warm || metrics_smoke {
        let addr = addr.expect("smoke modes need --addr <host:port>");
        if smoke_warm {
            run_smoke_warm(addr);
        } else if metrics_smoke {
            run_metrics_smoke(addr);
        } else {
            run_smoke(addr);
        }
    } else {
        run_benchmark(quick, check);
    }
}
