//! `batsched-lint` CLI: sweeps the workspace and exits nonzero on any
//! unannotated violation or stale suppression.
//!
//! ```text
//! batsched-lint [--root DIR] [--json] [--disable RULE]... [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace is swept (`src/` and
//! every `crates/*/src/` tree). Explicit files are linted under their
//! workspace-relative classification. `--disable` is the test hook used
//! by the fixture tests; CI runs with every rule enabled.

#![forbid(unsafe_code)]

use batsched_lint::{report, Linter, Report, RULES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> String {
    format!(
        "usage: batsched-lint [--root DIR] [--json] [--disable RULE]... [FILE...]\n\
         rules: {}",
        RULES.join(", ")
    )
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut linter = Linter::new();
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--disable" => match args.next() {
                Some(r) if linter.disable(&r) => {}
                Some(r) => {
                    eprintln!("unknown rule `{r}`\n{}", usage());
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--disable needs a rule name\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let swept = if files.is_empty() {
        linter.lint_workspace(&root)
    } else {
        let mut rep = Report::default();
        let mut err = None;
        for rel in &files {
            match linter.lint_file(&root, rel) {
                Ok((findings, lines)) => {
                    rep.findings.extend(findings);
                    rep.files += 1;
                    rep.lines += lines;
                }
                Err(e) => {
                    err = Some(std::io::Error::new(e.kind(), format!("{rel}: {e}")));
                    break;
                }
            }
        }
        rep.findings.sort();
        match err {
            Some(e) => Err(e),
            None => Ok(rep),
        }
    };

    let rep = match swept {
        Ok(r) => r,
        Err(e) => {
            eprintln!("batsched-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();

    if json {
        println!("{}", report::render_json(&rep, elapsed_ms));
    } else {
        print!("{}", report::render_human(&rep, elapsed_ms));
    }
    if rep.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
