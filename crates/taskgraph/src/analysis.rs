//! Aggregate statistics over a task graph.
//!
//! Everything the scheduler's normalised factors (§4 of the paper) need is
//! computed once here: global current extrema for CR, lowest/highest-power
//! energy totals for ENR, per-task average energies for the energy vector,
//! and per-column makespans `CT(k)` for the window search.

use crate::design_point::EnergyMetric;
use crate::graph::{PointId, TaskGraph, TaskId};
use batsched_battery::units::{Energy, MilliAmps, Minutes};
use serde::{Deserialize, Serialize};

/// Execution time if every task uses design-point column `k` — the paper's
/// `CT(k)`. Since execution is sequential, this is a plain sum.
pub fn column_time(g: &TaskGraph, k: PointId) -> Minutes {
    g.task_ids().map(|t| g.duration(t, k)).sum()
}

/// Fastest possible makespan: every task at its fastest point (column 0).
pub fn min_makespan(g: &TaskGraph) -> Minutes {
    column_time(g, PointId(0))
}

/// Slowest makespan: every task at its leanest point (column `m−1`).
pub fn max_makespan(g: &TaskGraph) -> Minutes {
    column_time(g, PointId(g.point_count() - 1))
}

/// Average energy of all design points of `t` — the weight behind the
/// paper's energy vector `E` and `SequenceDecEnergy`.
pub fn average_energy(g: &TaskGraph, t: TaskId, metric: EnergyMetric) -> Energy {
    let pts = &g.task(t).points;
    let sum: f64 = pts.iter().map(|p| p.energy(metric).value()).sum();
    Energy::new(sum / pts.len() as f64)
}

/// Average current over all design points of `t`.
pub fn average_current(g: &TaskGraph, t: TaskId) -> MilliAmps {
    let pts = &g.task(t).points;
    let sum: f64 = pts.iter().map(|p| p.current.value()).sum();
    MilliAmps::new(sum / pts.len() as f64)
}

/// Average power (`I·V`) over all design points of `t`.
pub fn average_power(g: &TaskGraph, t: TaskId) -> f64 {
    let pts = &g.task(t).points;
    pts.iter()
        .map(|p| p.current.value() * p.voltage.value())
        .sum::<f64>()
        / pts.len() as f64
}

/// Longest path through the DAG measured in column-`k` durations. With
/// sequential execution this is a *lower bound witness*, not the makespan;
/// it is reported by analyses and used by tests.
pub fn critical_path(g: &TaskGraph, k: PointId) -> Minutes {
    let order = crate::topo::topological_order(g);
    let mut dist = vec![0.0f64; g.task_count()];
    let mut best: f64 = 0.0;
    for &t in &order {
        let here = g.duration(t, k).value()
            + g.preds(t)
                .iter()
                .map(|p| dist[p.index()])
                .fold(0.0, f64::max);
        dist[t.index()] = here;
        best = best.max(here);
    }
    Minutes::new(best)
}

/// Pre-computed normalisation constants shared by the paper's factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Smallest current over all design points of all tasks (`I_min`).
    pub i_min: MilliAmps,
    /// Largest current over all design points of all tasks (`I_max`).
    pub i_max: MilliAmps,
    /// Total energy when every task uses its lowest-power point (`E_min`).
    pub e_min: Energy,
    /// Total energy when every task uses its highest-power point (`E_max`).
    pub e_max: Energy,
    /// Energy metric the totals were computed under.
    pub metric: EnergyMetric,
}

impl GraphStats {
    /// Computes the constants for `g` under `metric`.
    pub fn compute(g: &TaskGraph, metric: EnergyMetric) -> Self {
        let mut i_min = f64::INFINITY;
        let mut i_max = f64::NEG_INFINITY;
        let mut e_min = 0.0;
        let mut e_max = 0.0;
        let m = g.point_count();
        for t in g.task_ids() {
            for p in &g.task(t).points {
                i_min = i_min.min(p.current.value());
                i_max = i_max.max(p.current.value());
            }
            // Column m−1 is the lowest-power point, column 0 the highest.
            e_min += g.point(t, PointId(m - 1)).energy(metric).value();
            e_max += g.point(t, PointId(0)).energy(metric).value();
        }
        Self {
            i_min: MilliAmps::new(i_min),
            i_max: MilliAmps::new(i_max),
            e_min: Energy::new(e_min),
            e_max: Energy::new(e_max),
            metric,
        }
    }

    /// Normalises a current into `[0, 1]` — the paper's CR. Degenerate
    /// graphs where all currents are equal normalise to 0.
    pub fn current_ratio(&self, i: MilliAmps) -> f64 {
        let span = self.i_max.value() - self.i_min.value();
        if span <= 0.0 {
            0.0
        } else {
            (i.value() - self.i_min.value()) / span
        }
    }

    /// Normalises a total energy into `[0, 1]` — the paper's ENR.
    /// Degenerate spans normalise to 0.
    pub fn energy_ratio(&self, e: Energy) -> f64 {
        let span = self.e_max.value() - self.e_min.value();
        if span <= 0.0 {
            0.0
        } else {
            (e.value() - self.e_min.value()) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;

    fn dp(current: f64, duration: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(current), Minutes::new(duration))
    }

    fn sample() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(100.0, 1.0), dp(40.0, 2.0)]);
        let c = b.task("B", vec![dp(200.0, 3.0), dp(10.0, 6.0)]);
        b.edge(a, c);
        b.build().unwrap()
    }

    #[test]
    fn column_times() {
        let g = sample();
        assert_eq!(column_time(&g, PointId(0)), Minutes::new(4.0));
        assert_eq!(column_time(&g, PointId(1)), Minutes::new(8.0));
        assert_eq!(min_makespan(&g), Minutes::new(4.0));
        assert_eq!(max_makespan(&g), Minutes::new(8.0));
    }

    #[test]
    fn averages() {
        let g = sample();
        assert_eq!(average_current(&g, TaskId(0)), MilliAmps::new(70.0));
        // Charge metric: (100·1 + 40·2)/2 = 90.
        assert_eq!(
            average_energy(&g, TaskId(0), EnergyMetric::Charge).value(),
            90.0
        );
        // Unit voltages: power average equals current average.
        assert_eq!(average_power(&g, TaskId(0)), 70.0);
    }

    #[test]
    fn stats_extrema_and_ratios() {
        let g = sample();
        let s = GraphStats::compute(&g, EnergyMetric::Charge);
        assert_eq!(s.i_min, MilliAmps::new(10.0));
        assert_eq!(s.i_max, MilliAmps::new(200.0));
        // E_min = 40·2 + 10·6 = 140; E_max = 100·1 + 200·3 = 700.
        assert_eq!(s.e_min.value(), 140.0);
        assert_eq!(s.e_max.value(), 700.0);
        assert_eq!(s.current_ratio(MilliAmps::new(10.0)), 0.0);
        assert_eq!(s.current_ratio(MilliAmps::new(200.0)), 1.0);
        assert!((s.current_ratio(MilliAmps::new(105.0)) - 0.5).abs() < 1e-12);
        assert_eq!(s.energy_ratio(Energy::new(140.0)), 0.0);
        assert_eq!(s.energy_ratio(Energy::new(700.0)), 1.0);
    }

    #[test]
    fn degenerate_spans_normalise_to_zero() {
        let mut b = TaskGraph::builder();
        b.task("A", vec![dp(50.0, 1.0)]);
        let g = b.build().unwrap();
        let s = GraphStats::compute(&g, EnergyMetric::Charge);
        assert_eq!(s.current_ratio(MilliAmps::new(50.0)), 0.0);
        assert_eq!(s.energy_ratio(Energy::new(50.0)), 0.0);
    }

    #[test]
    fn critical_path_on_a_chain_is_the_total() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(10.0, 1.0)]);
        let c = b.task("B", vec![dp(10.0, 2.0)]);
        let d = b.task("C", vec![dp(10.0, 3.0)]);
        b.edge(a, c).edge(c, d);
        let g = b.build().unwrap();
        assert_eq!(critical_path(&g, PointId(0)), Minutes::new(6.0));
    }

    #[test]
    fn critical_path_on_parallel_branches_takes_the_longer() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(10.0, 1.0)]);
        let x = b.task("X", vec![dp(10.0, 5.0)]);
        let y = b.task("Y", vec![dp(10.0, 2.0)]);
        let z = b.task("Z", vec![dp(10.0, 1.0)]);
        b.edge(a, x).edge(a, y);
        b.parents(z, [x, y]);
        let g = b.build().unwrap();
        assert_eq!(critical_path(&g, PointId(0)), Minutes::new(7.0));
    }
}
