//! The physics that motivates the whole paper (§3): the rate-capacity and
//! recovery effects of the Rakhmatov–Vrudhula model, shown on hand-built
//! discharge profiles — including why running the *hungry* task first saves
//! battery even though the delivered charge is identical.
//!
//! Run with: `cargo run --example battery_recovery`

use batsched::battery::prelude::*;
use batsched::battery::{CoulombCounter, KibamModel, PeukertModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rv = RvModel::date05();

    println!("== rate-capacity effect ==");
    println!("same 3000 mA·min of delivered charge, different rates:\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "current", "duration", "sigma", "penalty"
    );
    for (i, d) in [(100.0, 30.0), (300.0, 10.0), (600.0, 5.0), (1000.0, 3.0)] {
        let p = LoadProfile::from_steps([(Minutes::new(d), MilliAmps::new(i))])?;
        let sigma = rv.apparent_charge(&p, p.end());
        println!(
            "{:>6.0}mA {:>9.0}m {:>12.0} {:>9.1}%",
            i,
            d,
            sigma.value(),
            (sigma.value() / 3000.0 - 1.0) * 100.0
        );
    }

    println!("\n== recovery effect ==");
    println!("a 600 mA / 5 min burst, measured as the battery rests afterwards:\n");
    let p = LoadProfile::from_steps([(Minutes::new(5.0), MilliAmps::new(600.0))])?;
    for rest in [0.0, 5.0, 15.0, 30.0, 60.0] {
        let sigma = rv.apparent_charge(&p, Minutes::new(5.0 + rest));
        println!(
            "  after {rest:>4.0} min of rest: sigma = {:>6.0} (delivered 3000)",
            sigma.value()
        );
    }

    println!("\n== why order matters (the paper's core insight) ==");
    let mut heavy_last = LoadProfile::new();
    heavy_last.push(Minutes::new(20.0), MilliAmps::new(50.0))?;
    heavy_last.push(Minutes::new(5.0), MilliAmps::new(600.0))?;
    let heavy_first = heavy_last.reversed();
    let end = heavy_last.end();
    println!(
        "  heavy task LAST : sigma = {:.0}",
        rv.apparent_charge(&heavy_last, end).value()
    );
    println!(
        "  heavy task FIRST: sigma = {:.0}   <- its penalty decays during the light tail",
        rv.apparent_charge(&heavy_first, end).value()
    );

    println!("\n== the same profiles under four battery models ==");
    let models: Vec<(&str, Box<dyn BatteryModel>)> = vec![
        ("coulomb (ideal)", Box::new(CoulombCounter::new())),
        (
            "peukert p=1.2",
            Box::new(PeukertModel::new(1.2, MilliAmps::new(100.0))?),
        ),
        (
            "kibam",
            Box::new(KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(50_000.0))?),
        ),
        ("rakhmatov-vrudhula", Box::new(RvModel::date05())),
    ];
    println!(
        "{:>20} {:>12} {:>12} {:>18}",
        "model", "heavy-first", "heavy-last", "order-sensitive?"
    );
    for (name, m) in &models {
        let a = m.apparent_charge(&heavy_first, end).value();
        let b = m.apparent_charge(&heavy_last, end).value();
        println!(
            "{name:>20} {a:>12.0} {b:>12.0} {:>18}",
            if (a - b).abs() > 1.0 { "yes" } else { "no" }
        );
    }
    println!("\nonly models with a recovery effect (KiBaM, RV) reward battery-aware ordering —");
    println!("which is exactly why the paper schedules against RV instead of Peukert.");
    Ok(())
}
