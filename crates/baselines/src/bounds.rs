//! Sequencing bounds from Rakhmatov & Vrudhula (TECS 2003), quoted by the
//! paper's §3: for a fixed set of (current, duration) intervals with
//! dependencies ignored, executing them in **non-increasing** current order
//! minimises σ and **non-decreasing** order maximises it. For a task graph
//! these two extremes bracket what any topological order can achieve with
//! the same design-point assignment — a cheap certificate of how much of
//! the ordering headroom a scheduler captured.

use batsched_battery::model::BatteryModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::units::{MilliAmpMinutes, MilliAmps, Minutes};
use batsched_core::Schedule;
use batsched_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};

/// The σ bracket for one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrderingBounds {
    /// σ of the non-increasing-current order (the precedence-free optimum).
    pub lower: MilliAmpMinutes,
    /// σ of the non-decreasing-current order (the precedence-free worst).
    pub upper: MilliAmpMinutes,
}

impl OrderingBounds {
    /// Where `sigma` sits inside the bracket: 0 at the lower bound, 1 at
    /// the upper (clamped; degenerate brackets report 0).
    pub fn position(&self, sigma: MilliAmpMinutes) -> f64 {
        let span = self.upper.value() - self.lower.value();
        if span <= 0.0 {
            0.0
        } else {
            ((sigma.value() - self.lower.value()) / span).clamp(0.0, 1.0)
        }
    }
}

/// Computes the ordering bounds for `schedule`'s design-point assignment,
/// ignoring the precedence constraints (per the theorem's setting).
pub fn ordering_bounds<M: BatteryModel + ?Sized>(
    g: &TaskGraph,
    schedule: &Schedule,
    model: &M,
) -> OrderingBounds {
    let mut steps: Vec<(Minutes, MilliAmps)> = g
        .task_ids()
        .map(|t| {
            let p = g.point(t, schedule.point_of(t));
            (p.duration, p.current)
        })
        .collect();
    steps.sort_by(|a, b| batsched_battery::units::total_cmp(b.1.value(), a.1.value()));
    let desc = LoadProfile::from_steps(steps.iter().copied()).expect("valid points");
    steps.reverse();
    let asc = LoadProfile::from_steps(steps.iter().copied()).expect("valid points");
    OrderingBounds {
        lower: model.apparent_charge(&desc, desc.end()),
        upper: model.apparent_charge(&asc, asc.end()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KhanVemuri, RakhmatovDp, Scheduler};
    use batsched_battery::rv::RvModel;
    use batsched_taskgraph::paper::g3;

    #[test]
    fn bracket_is_ordered_and_contains_real_schedules() {
        let g = g3();
        let model = RvModel::date05();
        let d = Minutes::new(230.0);
        for algo in [
            &KhanVemuri::paper() as &dyn Scheduler,
            &RakhmatovDp::default(),
        ] {
            let s = algo.schedule(&g, d).unwrap();
            let b = ordering_bounds(&g, &s, &model);
            assert!(b.lower.value() <= b.upper.value());
            let sigma = s.battery_cost(&g, &model);
            // The theorem is exact for independent tasks; G3's precedence
            // keeps every topological order inside the bracket in practice.
            assert!(sigma.value() >= b.lower.value() - 1e-6, "{}", algo.name());
            assert!(sigma.value() <= b.upper.value() + 1e-6, "{}", algo.name());
        }
    }

    #[test]
    fn our_schedule_sits_near_the_lower_bound() {
        // The whole point of the paper: the iterative heuristic lands close
        // to the precedence-free ordering optimum.
        let g = g3();
        let model = RvModel::date05();
        let s = KhanVemuri::paper()
            .schedule(&g, Minutes::new(230.0))
            .unwrap();
        let b = ordering_bounds(&g, &s, &model);
        let pos = b.position(s.battery_cost(&g, &model));
        assert!(
            pos < 0.25,
            "expected near the lower bound, got position {pos:.3}"
        );
    }

    #[test]
    fn degenerate_bracket_position_is_zero() {
        let b = OrderingBounds {
            lower: MilliAmpMinutes::new(10.0),
            upper: MilliAmpMinutes::new(10.0),
        };
        assert_eq!(b.position(MilliAmpMinutes::new(10.0)), 0.0);
    }
}
