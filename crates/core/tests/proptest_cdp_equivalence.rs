//! Property-based equivalence of the incremental window-search kernel
//! against the retained naive reference: on random DAGs, random deadlines
//! and every feasible window, the journal-based `ChooseDesignPoints` must
//! produce **bit-identical** assignments, and the incremental
//! `CalculateDPF` **bit-identical** `(enr, cif, dpf)` triples, versus the
//! clone-and-rescan reference implementations. No tolerance: the two paths
//! share their floating-point accumulation, so any difference is a
//! bookkeeping bug in the persistent run journal, the carried row chains,
//! the cross-window carry, or the resumed-promotion logic. The
//! descending-window loops drive consecutive `ws+1 → ws` evaluations
//! through one buffer set, so the cross-window carry (clean-row fast path
//! and dirty-row re-evaluation) is exercised on every case. Runs under
//! both feature configurations (the `parallel` sweep reuses per-thread
//! kernels).

use batsched_battery::units::Minutes;
use batsched_core::search::DiagSearch;
use batsched_core::SchedulerConfig;
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::synth::{
    chain, fork_join, layered, random_dag, Rounding, ScalingScheme, TaskParams,
};
use batsched_taskgraph::topo::topological_order;
use batsched_taskgraph::{TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..6, any::<u64>(), 0usize..4, 2usize..7).prop_map(|(m, seed, family, n)| {
        let params = TaskParams {
            current_range: (50.0, 950.0),
            duration_range: (1.0, 15.0),
            factors: (0..m)
                .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
                .collect(),
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => chain(n, &params, &mut rng),
            1 => fork_join(&[n], &params, &mut rng),
            2 => layered(3, 2, 0.4, &params, &mut rng),
            _ => random_dag(n + 2, 0.35, &params, &mut rng),
        }
        .expect("valid generator parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental `ChooseDesignPoints` equals the retained naive
    /// reference bit-for-bit on every feasible window, with the kernel's
    /// buffers reused across windows and deadlines (the service-worker
    /// pattern).
    #[test]
    fn choose_design_points_is_bit_identical_to_reference(
        g in arb_graph(),
        slack in 0.05f64..1.0,
    ) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let cfg = SchedulerConfig::paper();
        let seq = topological_order(&g);
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        for ws in diag.feasible_windows() {
            let naive = diag.choose_reference(&seq, ws).unwrap();
            let fast = diag.choose(&seq, ws).unwrap();
            prop_assert_eq!(fast, &naive[..], "ws={}", ws);
        }
    }

    /// One full `EvaluateWindows` sweep — with its cross-window carry —
    /// produces bit-identical `WindowRecord` vectors (window starts,
    /// assignments, σ costs and makespans) to evaluating every window in
    /// isolation through the retained naive reference.
    #[test]
    fn evaluate_windows_records_are_bit_identical_to_reference(
        g in arb_graph(),
        slack in 0.05f64..1.0,
    ) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let cfg = SchedulerConfig::paper();
        let seq = topological_order(&g);
        let m = g.point_count();
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        let (records, best) = diag.windows(&seq).unwrap();
        let expected_ws: Vec<usize> = diag
            .feasible_windows()
            .into_iter()
            .filter(|&ws| ws <= m.saturating_sub(2))
            .collect();
        prop_assert_eq!(records.len(), expected_ws.len());
        prop_assert!(best < records.len());
        for (rec, &ws) in records.iter().zip(&expected_ws) {
            prop_assert_eq!(rec.window_start.index(), ws);
            let naive = diag.choose_reference(&seq, ws).unwrap();
            // Task-indexed assignment must match the reference's
            // positional one exactly.
            for (pos, &t) in seq.iter().enumerate() {
                prop_assert_eq!(
                    rec.assignment[t.index()].index(), naive[pos],
                    "ws={} pos={}", ws, pos
                );
            }
            let (cost, mk) = diag.cost(&seq, &naive);
            prop_assert_eq!(rec.cost, cost, "ws={}", ws);
            prop_assert_eq!(rec.makespan, mk, "ws={}", ws);
        }
    }

    /// Interleaving two different sequences across descending windows must
    /// reject the stale carry (it describes the other sequence) and still
    /// match the reference bit-for-bit.
    #[test]
    fn interleaved_sequences_never_reuse_a_stale_carry(
        g in arb_graph(),
        slack in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let cfg = SchedulerConfig::paper();
        let seq_a = topological_order(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..g.task_count())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let seq_b = batsched_taskgraph::topo::list_schedule(&g, |_, t| weights[t.index()]);
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        for ws in diag.feasible_windows() {
            for seq in [&seq_a, &seq_b] {
                let naive = diag.choose_reference(seq, ws).unwrap();
                let fast = diag.choose(seq, ws).unwrap();
                prop_assert_eq!(fast, &naive[..], "ws={}", ws);
            }
        }
    }

    /// The incremental `CalculateDPF` returns bit-identical
    /// `(enr, cif, dpf)` triples on random in-sweep snapshots: a random
    /// fixed suffix, a random tagged column, free tasks at the initial
    /// column `m−1`.
    #[test]
    fn calculate_dpf_triples_are_bit_identical(
        g in arb_graph(),
        slack in 0.0f64..1.2,
        seed in any::<u64>(),
    ) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack + 0.1);
        let cfg = SchedulerConfig::paper();
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        let seq = topological_order(&g);
        let n = seq.len();
        let m = g.point_count();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let ws = rng.gen_range(0..m.saturating_sub(1).max(1));
            let i = rng.gen_range(0..n);
            let mut stemp = vec![m - 1; n];
            let mut fixed_tasks: Vec<TaskId> = Vec::new();
            for (pos, col) in stemp.iter_mut().enumerate().skip(i + 1) {
                *col = rng.gen_range(ws..m);
                fixed_tasks.push(seq[pos]);
            }
            stemp[i] = rng.gen_range(ws..m);
            let fast = diag.dpf(&seq, &stemp, &fixed_tasks, i, ws);
            let naive = diag.dpf_reference(&seq, &stemp, &fixed_tasks, i, ws);
            prop_assert_eq!(fast, naive, "i={} ws={} stemp={:?}", i, ws, stemp);
        }
    }
}

/// Adversarial cross-window carry coverage: hunt (deterministically) for
/// instances where widening the window by one column *changes* some row's
/// chosen column — the case where the carried fast path must yield to the
/// new candidate or re-evaluate dirty rows — and demand bit-identity with
/// the reference on every window of every such instance. Fails if the
/// hunt finds no such instance (the test would be vacuous).
#[test]
fn window_widening_that_changes_choices_stays_bit_identical() {
    let cfg = SchedulerConfig::paper();
    let mut changed_instances = 0usize;
    for seed in 0..64u64 {
        let m = 4 + (seed as usize % 3);
        let params = TaskParams {
            current_range: (50.0, 950.0),
            duration_range: (1.0, 15.0),
            factors: (0..m)
                .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
                .collect(),
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(0xAD5A_0000 + seed);
        let g = random_dag(8, 0.3, &params, &mut rng).unwrap();
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * 0.45);
        let seq = topological_order(&g);
        let mut diag = DiagSearch::new(&g, &cfg, d).unwrap();
        let Ok((records, _)) = diag.windows(&seq) else {
            continue;
        };
        for w in records.windows(2) {
            if w[0].assignment != w[1].assignment {
                changed_instances += 1;
                break;
            }
        }
        for rec in &records {
            let ws = rec.window_start.index();
            let naive = diag.choose_reference(&seq, ws).unwrap();
            for (pos, &t) in seq.iter().enumerate() {
                assert_eq!(
                    rec.assignment[t.index()].index(),
                    naive[pos],
                    "seed={seed} ws={ws} pos={pos}"
                );
            }
        }
    }
    assert!(
        changed_instances >= 5,
        "expected several widening-changes-choice instances, found {changed_instances}"
    );
}
