//! Reproduces **Figure 3** of the paper: how windows mask design-point
//! columns (5 tasks × 4 design points, windows 1:4, 2:4 and 3:4) — and then
//! shows the real window sweep the algorithm performs on G3.

#![forbid(unsafe_code)]

use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::{search::diag_evaluate_windows, SchedulerConfig};
use batsched_taskgraph::paper::{g3, G3_EXAMPLE_DEADLINE};
use batsched_taskgraph::topo::topological_order;

fn main() {
    println!("== Figure 3: window masks over 5 tasks x 4 design points ==\n");
    let m = 4;
    for ws in 1..m {
        println!("Window {}:{m}", ws);
        for task in 1..=5 {
            let cells: Vec<String> = (1..=m)
                .map(|j| {
                    if j >= ws {
                        format!("[DP{j}]")
                    } else {
                        format!(" DP{j} ")
                    }
                })
                .collect();
            println!("  T{task}  {}", cells.join(" "));
        }
        println!();
    }
    println!("bracketed columns are inside the window and eligible for assignment.\n");

    println!("== The actual sweep on G3 (m = 5, d = {G3_EXAMPLE_DEADLINE}) ==");
    let g = g3();
    let model = RvModel::date05();
    let seq = topological_order(&g);
    let (records, best) = diag_evaluate_windows(
        &g,
        &SchedulerConfig::paper(),
        Minutes::new(G3_EXAMPLE_DEADLINE),
        &model,
        &seq,
    )
    .expect("feasible");
    for (k, r) in records.iter().enumerate() {
        println!(
            "  window {}: sigma = {:>7.0} mA·min, duration = {:>6.1} min{}",
            r.label(g.point_count()),
            r.cost.value(),
            r.makespan.value(),
            if k == best { "   <- best" } else { "" }
        );
    }
    println!("\nwindows are tried narrowest-feasible first, widening to the full matrix;");
    println!("the assignment with the least battery cost wins (Fig. 1's EvaluateWindows).");
}
