//! Error types for the scheduler (C-GOOD-ERR).

use batsched_battery::units::Minutes;
use std::fmt;

/// Errors returned by the battery-aware scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerError {
    /// Even with every task at its fastest design point the graph cannot
    /// finish by the deadline — the paper's `EvaluateWindows` exit-with-error
    /// case.
    DeadlineInfeasible {
        /// Best achievable makespan (all tasks at column 1).
        fastest: Minutes,
        /// The requested deadline.
        deadline: Minutes,
    },
    /// The deadline was not a positive, finite number of minutes.
    InvalidDeadline {
        /// The offending value.
        deadline: Minutes,
    },
    /// The scheduler configuration was rejected (bad β or series length).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Internal invariant violation: a window search fixed every task but
    /// the result misses the deadline. Kept as a typed error (rather than a
    /// panic) so fuzzing can surface it; never observed for valid inputs.
    WindowSearchFailed {
        /// 0-based window start column.
        window_start: usize,
    },
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadlineInfeasible { fastest, deadline } => write!(
                f,
                "deadline {deadline} is infeasible: fastest design points need {fastest}"
            ),
            Self::InvalidDeadline { deadline } => {
                write!(f, "deadline must be positive and finite, got {deadline}")
            }
            Self::InvalidConfig { reason } => write!(f, "invalid scheduler config: {reason}"),
            Self::WindowSearchFailed { window_start } => write!(
                f,
                "window search starting at column {window_start} produced no feasible assignment"
            ),
        }
    }
}

impl std::error::Error for SchedulerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SchedulerError::DeadlineInfeasible {
            fastest: Minutes::new(42.2),
            deadline: Minutes::new(30.0),
        };
        let s = e.to_string();
        assert!(s.contains("infeasible"));
        assert!(s.contains("42.2"));
        let e = SchedulerError::InvalidDeadline {
            deadline: Minutes::new(-1.0),
        };
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedulerError>();
    }
}
