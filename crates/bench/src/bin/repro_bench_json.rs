//! Perf-trajectory harness: times the σ-evaluation kernels and the full
//! scheduler on a synthetic n=50, m=8 instance and writes
//! `BENCH_scheduler.json` so future changes have a recorded baseline.
//!
//! Run with `cargo run --release -p batsched-bench --bin repro_bench_json`.
//! Pass `--full` for more samples (default is quick mode). The JSON lands
//! in the current directory.
//!
//! Reported medians (ns):
//! * `sigma_naive` — one `RvModel::sigma` over the prebuilt 50-interval
//!   profile (the old inner-loop cost, without profile construction);
//! * `sigma_naive_with_profile` — profile construction + σ, what the old
//!   `positional_cost` actually paid per candidate;
//! * `sigma_engine_full` — one full `SigmaEvaluator` pass (cold cache);
//! * `sigma_engine_swap` — one re-evaluation after a single design-point
//!   swap (warm suffix cache);
//! * `schedule_run` — one full `batsched_core::schedule` call.

use batsched_battery::eval::SigmaScratch;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_bench::workloads::{synthetic_n50_m8, SYNTH_N50_M8_SEED};
use batsched_core::schedule::{entry_id, graph_evaluator};
use batsched_core::{profile_of, schedule, SchedulerConfig};
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::topo::topological_order;
use batsched_taskgraph::PointId;
use std::hint::black_box;
use std::time::Instant;

/// Median ns/iter of `f`, calibrated so each sample runs ≥ ~2 ms.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let one = start.elapsed().as_nanos().max(25);
    let per_sample = (2_000_000u128 / one).clamp(1, 200_000) as usize;
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            start.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let samples = if full { 40 } else { 12 };

    let g = synthetic_n50_m8();
    let n = g.task_count();
    let m = g.point_count();
    let model = RvModel::date05();
    let cfg = SchedulerConfig::paper();
    // Moderate slack: 70% of the way from all-fast to all-lean.
    let lo = min_makespan(&g).value();
    let hi = max_makespan(&g).value();
    let deadline = Minutes::new(lo + (hi - lo) * 0.7);

    let order = topological_order(&g);
    // A mixed assignment exercising every column.
    let assignment: Vec<PointId> = (0..n).map(|t| PointId(t % m)).collect();
    let profile = profile_of(&g, &order, &assignment);
    let end = profile.end();

    let eval = graph_evaluator(&g, &model);
    let entries: Vec<u32> = order
        .iter()
        .map(|&t| entry_id(t, m, assignment[t.index()]))
        .collect();

    eprintln!("instance: n={n}, m={m}, deadline={deadline}");

    let sigma_naive = median_ns(samples, || {
        black_box(model.sigma(black_box(&profile), end));
    });
    let sigma_naive_with_profile = median_ns(samples, || {
        let p = profile_of(&g, &order, &assignment);
        black_box(model.sigma(black_box(&p), p.end()));
    });
    let mut scratch = SigmaScratch::new();
    let sigma_engine_full = median_ns(samples, || {
        scratch.invalidate(); // cold cache: measure the full pass
        black_box(eval.sigma_seq(black_box(&entries), &mut scratch));
    });
    let mut swap_entries = entries.clone();
    let swap_pos = n / 2;
    let mut flip = false;
    eval.sigma_seq(&swap_entries, &mut scratch);
    let sigma_engine_swap = median_ns(samples, || {
        // Toggle one task's design point — the dominant search move.
        let t = order[swap_pos];
        let col = if flip { PointId(0) } else { PointId(m - 1) };
        flip = !flip;
        swap_entries[swap_pos] = entry_id(t, m, col);
        black_box(eval.sigma_seq(black_box(&swap_entries), &mut scratch));
    });
    let schedule_run = median_ns(samples.min(12), || {
        black_box(schedule(&g, deadline, &cfg).expect("feasible synthetic instance"));
    });

    let speedup_full = sigma_naive / sigma_engine_full;
    let speedup_vs_old_inner = sigma_naive_with_profile / sigma_engine_full;
    let speedup_swap = sigma_naive_with_profile / sigma_engine_swap;

    let json = format!(
        "{{\n  \"instance\": {{\"n\": {n}, \"m\": {m}, \"deadline_min\": {dl}, \"seed\": {seed}}},\n  \
         \"quick\": {quick},\n  \
         \"sigma_eval_ns\": {{\n    \"naive\": {sigma_naive:.1},\n    \
         \"naive_with_profile\": {sigma_naive_with_profile:.1},\n    \
         \"engine_full\": {sigma_engine_full:.1},\n    \
         \"engine_swap\": {sigma_engine_swap:.1}\n  }},\n  \
         \"schedule_run_ns\": {schedule_run:.1},\n  \
         \"speedup\": {{\n    \"sigma_full_vs_naive\": {speedup_full:.2},\n    \
         \"sigma_full_vs_old_inner_loop\": {speedup_vs_old_inner:.2},\n    \
         \"sigma_swap_vs_old_inner_loop\": {speedup_swap:.2}\n  }}\n}}\n",
        dl = deadline.value(),
        seed = SYNTH_N50_M8_SEED,
        quick = !full,
    );
    std::fs::write("BENCH_scheduler.json", &json).expect("write BENCH_scheduler.json");
    println!("{json}");
    eprintln!("wrote BENCH_scheduler.json");
}
