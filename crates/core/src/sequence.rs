//! Sequence construction: the initial order (`SequenceDecEnergy`) and the
//! per-iteration improvement (`FindWeightedSequence`, eq. 4 of the paper).

use crate::config::InitialWeight;
use batsched_taskgraph::analysis::{average_current, average_energy, average_power};
use batsched_taskgraph::topo::{descendants_mask, list_schedule};
use batsched_taskgraph::{EnergyMetric, PointId, TaskGraph, TaskId};

/// The paper's `SequenceDecEnergy`: list scheduling where the ready task
/// with the largest weight goes first. See
/// [`InitialWeight`] for the weight-rule options and the DESIGN.md note on
/// why `AverageCurrent` is the default.
pub fn initial_sequence(g: &TaskGraph, rule: InitialWeight, metric: EnergyMetric) -> Vec<TaskId> {
    match rule {
        InitialWeight::AverageCurrent => list_schedule(g, |g, t| average_current(g, t).value()),
        InitialWeight::AverageEnergy => {
            list_schedule(g, move |g, t| average_energy(g, t, metric).value())
        }
        InitialWeight::AveragePower => list_schedule(g, average_power),
    }
}

/// The paper's `FindWeightedSequence` (eq. 4): each task is weighted by the
/// total *assigned* current of the subgraph rooted at it,
/// `w(v) = Σ_{u ∈ G_v} I_{u,c(u)}`, and the ready task with the largest
/// weight is scheduled first.
pub fn weighted_sequence(g: &TaskGraph, assignment: &[PointId]) -> Vec<TaskId> {
    let weights = subtree_current_weights(g, assignment);
    list_schedule(g, |_, t| weights[t.index()])
}

/// The subtree-current weights of eq. 4, exposed for tests and tooling.
pub fn subtree_current_weights(g: &TaskGraph, assignment: &[PointId]) -> Vec<f64> {
    let currents: Vec<f64> = g
        .task_ids()
        .map(|t| g.current(t, assignment[t.index()]).value())
        .collect();
    g.task_ids()
        .map(|t| {
            descendants_mask(g, t)
                .iter()
                .enumerate()
                .filter(|&(_, &inside)| inside)
                .map(|(u, _)| currents[u])
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::units::{MilliAmps, Minutes};
    use batsched_taskgraph::paper::{g3, t};
    use batsched_taskgraph::topo::is_topological;
    use batsched_taskgraph::DesignPoint;

    #[test]
    fn g3_initial_sequence_matches_table2_s1() {
        // Table 2, S1: T1,T4,T5,T7,T3,T2,T6,T8,T10,T9,T13,T12,T11,T14,T15.
        let g = g3();
        let seq = initial_sequence(&g, InitialWeight::AverageCurrent, EnergyMetric::Charge);
        let expect: Vec<TaskId> = [1, 4, 5, 7, 3, 2, 6, 8, 10, 9, 13, 12, 11, 14, 15]
            .map(t)
            .to_vec();
        assert_eq!(seq, expect);
    }

    #[test]
    fn g3_average_energy_rule_differs_from_table2() {
        // The §4.1 prose ("average energy") puts T2 before T4 — evidence for
        // the DESIGN.md §4.1 discrepancy note.
        let g = g3();
        let seq = initial_sequence(&g, InitialWeight::AverageEnergy, EnergyMetric::Charge);
        let pos = |x: TaskId| seq.iter().position(|&y| y == x).unwrap();
        assert!(pos(t(2)) < pos(t(4)));
        assert!(is_topological(&g, &seq));
    }

    #[test]
    fn g3_average_power_matches_average_current_ordering() {
        // G3's currents share one scaling profile, so power and current
        // rules coincide there.
        let g = g3();
        let a = initial_sequence(&g, InitialWeight::AverageCurrent, EnergyMetric::Charge);
        let b = initial_sequence(&g, InitialWeight::AveragePower, EnergyMetric::Charge);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_sequence_reproduces_s2w_from_s2_assignment() {
        // Iteration 2 of the paper's Table 2: sequence S2 with its published
        // assignment P5,P1,P2,P5,… (positions) yields the weighted sequence
        // S2w = T1,T3,T2,T4,T5,T6,T7,T8,T9,T10,T13,T11,T12,T14,T15.
        let g = g3();
        let s2: Vec<TaskId> = [1, 3, 2, 4, 5, 6, 7, 8, 10, 9, 13, 12, 11, 14, 15]
            .map(t)
            .to_vec();
        let dp_by_pos = [5, 1, 2, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5];
        let mut assignment = vec![PointId(0); g.task_count()];
        for (pos, &task) in s2.iter().enumerate() {
            assignment[task.index()] = PointId(dp_by_pos[pos] - 1);
        }
        let w = weighted_sequence(&g, &assignment);
        let expect: Vec<TaskId> = [1, 3, 2, 4, 5, 6, 7, 8, 9, 10, 13, 11, 12, 14, 15]
            .map(t)
            .to_vec();
        assert_eq!(w, expect);
    }

    #[test]
    fn weighted_sequence_reproduces_s3w_from_s3_assignment() {
        // Iteration 3: S3 with P5,P5,P1,P5,P5,P5,P4,P5,P4,P5,… yields
        // S3w = T1,T2,T4,T5,T7,T3,T6,T8,T9,T10,T13,T11,T12,T14,T15.
        let g = g3();
        let s3: Vec<TaskId> = [1, 3, 2, 4, 5, 6, 7, 8, 9, 10, 13, 11, 12, 14, 15]
            .map(t)
            .to_vec();
        let dp_by_pos = [5, 5, 1, 5, 5, 5, 4, 5, 4, 5, 5, 5, 5, 5, 5];
        let mut assignment = vec![PointId(0); g.task_count()];
        for (pos, &task) in s3.iter().enumerate() {
            assignment[task.index()] = PointId(dp_by_pos[pos] - 1);
        }
        let w = weighted_sequence(&g, &assignment);
        let expect: Vec<TaskId> = [1, 2, 4, 5, 7, 3, 6, 8, 9, 10, 13, 11, 12, 14, 15]
            .map(t)
            .to_vec();
        assert_eq!(w, expect);
    }

    #[test]
    fn subtree_weights_sum_assigned_currents() {
        let mut b = TaskGraph::builder();
        let dp2 = |i: f64| {
            vec![
                DesignPoint::new(MilliAmps::new(i), Minutes::new(1.0)),
                DesignPoint::new(MilliAmps::new(i / 2.0), Minutes::new(2.0)),
            ]
        };
        let a = b.task("A", dp2(100.0));
        let x = b.task("X", dp2(60.0));
        let y = b.task("Y", dp2(40.0));
        b.edge(a, x).edge(a, y);
        let g = b.build().unwrap();
        // A at DP1 (100), X at DP2 (30), Y at DP1 (40).
        let w = subtree_current_weights(&g, &[PointId(0), PointId(1), PointId(0)]);
        assert_eq!(w, vec![170.0, 30.0, 40.0]);
    }

    #[test]
    fn sequences_are_always_topological() {
        let g = g3();
        for rule in [
            InitialWeight::AverageCurrent,
            InitialWeight::AverageEnergy,
            InitialWeight::AveragePower,
        ] {
            let s = initial_sequence(&g, rule, EnergyMetric::Charge);
            assert!(is_topological(&g, &s), "{rule:?}");
        }
        let all_lean = vec![PointId(4); g.task_count()];
        assert!(is_topological(&g, &weighted_sequence(&g, &all_lean)));
    }
}
