//! The LRU result cache: canonical-hash → serialised response body, plus a
//! raw-bytes alias index for the exact-duplicate fast path.
//!
//! Entries are complete response documents, so a hit is replayed
//! bit-identically (property-tested in `tests/service_behaviour.rs`).
//! Recency is a monotone tick; eviction scans for the minimum, which is
//! O(len) on insert — at the few-hundred-entry capacities the service runs
//! with, that is noise next to a single σ-evaluation, and it keeps the
//! structure dependency-free and obviously correct.
//!
//! Two keys per entry:
//!
//! * the **canonical key** (hash of the canonicalised request) — computing
//!   it requires parsing the request, but it unifies every spelling of the
//!   same question;
//! * **alias keys** (hash of raw request bytes) — each spelling that has
//!   hit before maps straight to its canonical entry, so an exact
//!   duplicate document is answered *without parsing anything*. The alias
//!   stores the raw document and verifies it byte-for-byte on lookup:
//!   FNV-1a is unkeyed and trivially collidable, so a hash match alone
//!   must never replay another request's answer. Aliases may dangle after
//!   an eviction; a dangling alias is dropped on lookup and the request
//!   simply takes the parse path. Documents larger than
//!   [`MAX_ALIAS_DOC_BYTES`] are not aliased (bounding the index's
//!   memory); they still dedup through the canonical key.

use std::collections::HashMap;

/// A least-recently-used map from content hash to response body.
#[derive(Debug, Default)]
pub struct LruCache {
    cap: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
    /// raw-bytes hash → canonical key. Bounded at [`ALIAS_FACTOR`]× `cap`.
    aliases: HashMap<u64, Alias>,
}

/// Alias slots per cache slot (several spellings can point at one entry).
const ALIAS_FACTOR: usize = 4;

/// Largest request document the alias index will store for byte-exact
/// verification. Bigger documents skip the fast path (they still dedup
/// through the canonical key after parsing).
pub const MAX_ALIAS_DOC_BYTES: usize = 128 * 1024;

#[derive(Debug)]
struct Entry {
    body: String,
    last_used: u64,
}

#[derive(Debug)]
struct Alias {
    canonical: u64,
    /// The exact raw document this alias stands for — compared on lookup
    /// so a hash collision can never replay another request's answer.
    doc: String,
    last_used: u64,
}

impl LruCache {
    /// A cache holding at most `cap` entries; `cap == 0` disables storage.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap.min(1024)),
            aliases: HashMap::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            e.body.clone()
        })
    }

    /// The fast path: looks the raw document up through the alias index
    /// (keyed by `raw`, its FNV-1a hash), refreshing recency on both
    /// levels. The stored document is compared byte-for-byte — a hash
    /// collision is a miss, never a wrong answer. A dangling alias (its
    /// entry was evicted) is dropped and reported as a miss.
    pub fn get_by_alias(&mut self, raw: u64, doc: &str) -> Option<String> {
        let canonical = match self.aliases.get_mut(&raw) {
            None => return None,
            Some(a) if a.doc != doc => return None, // hash collision
            Some(a) => {
                a.last_used = self.tick + 1;
                a.canonical
            }
        };
        match self.get(canonical) {
            Some(body) => Some(body),
            None => {
                self.aliases.remove(&raw);
                None
            }
        }
    }

    /// Records that the raw document `doc` (hashing to `raw`) spells the
    /// request cached under `canonical`, evicting the least-recently-used
    /// alias when the alias index is full. Documents larger than
    /// [`MAX_ALIAS_DOC_BYTES`] are not recorded.
    pub fn alias(&mut self, raw: u64, doc: &str, canonical: u64) {
        if self.cap == 0 || doc.len() > MAX_ALIAS_DOC_BYTES {
            return;
        }
        self.tick += 1;
        if !self.aliases.contains_key(&raw) && self.aliases.len() >= self.cap * ALIAS_FACTOR {
            if let Some((&lru, _)) = self.aliases.iter().min_by_key(|(_, a)| a.last_used) {
                self.aliases.remove(&lru);
            }
        }
        self.aliases.insert(
            raw,
            Alias {
                canonical,
                doc: doc.to_string(),
                last_used: self.tick,
            },
        );
    }

    /// Stores `body` under `key`, evicting the least-recently-used entry
    /// when full. Overwrites an existing entry for `key`.
    pub fn insert(&mut self, key: u64, body: String) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some((&lru, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) {
                self.map.remove(&lru);
            }
        }
        self.map.insert(
            key,
            Entry {
                body,
                last_used: self.tick,
            },
        );
    }

    /// Drops every entry and alias (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.aliases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_overwrite() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(1).as_deref(), Some("one"));
        c.insert(1, "uno".into());
        assert_eq!(c.get(1).as_deref(), Some("uno"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "1".into());
        c.insert(2, "2".into());
        assert_eq!(c.get(1).as_deref(), Some("1")); // 1 is now fresher than 2
        c.insert(3, "3".into());
        assert_eq!(c.get(2), None, "2 was LRU and must be gone");
        assert_eq!(c.get(1).as_deref(), Some("1"));
        assert_eq!(c.get(3).as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn alias_fast_path_and_dangling_cleanup() {
        let mut c = LruCache::new(2);
        c.insert(100, "body".into());
        assert_eq!(c.get_by_alias(7, "docA"), None, "unknown alias misses");
        c.alias(7, "docA", 100);
        c.alias(8, "docB", 100);
        assert_eq!(c.get_by_alias(7, "docA").as_deref(), Some("body"));
        assert_eq!(c.get_by_alias(8, "docB").as_deref(), Some("body"));
        // A colliding hash with different bytes must MISS, not replay.
        assert_eq!(c.get_by_alias(7, "docX"), None, "collision is a miss");
        // Evict the entry: aliases dangle, then self-clean on lookup.
        c.insert(200, "2".into());
        c.insert(300, "3".into());
        assert_eq!(c.get(100), None, "entry 100 evicted");
        assert_eq!(c.get_by_alias(7, "docA"), None, "dangling alias misses");
        assert_eq!(c.get_by_alias(7, "docA"), None, "and stays gone");
    }

    #[test]
    fn alias_index_is_bounded_and_caps_doc_size() {
        let mut c = LruCache::new(2); // alias cap = 8
        c.insert(1, "1".into());
        for raw in 10..30u64 {
            c.alias(raw, "doc", 1);
        }
        // Oldest aliases evicted; the most recent still works.
        assert_eq!(c.get_by_alias(29, "doc").as_deref(), Some("1"));
        assert_eq!(c.get_by_alias(10, "doc"), None);
        // Oversized documents are never aliased.
        let huge = "x".repeat(MAX_ALIAS_DOC_BYTES + 1);
        c.alias(99, &huge, 1);
        assert_eq!(c.get_by_alias(99, &huge), None);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = LruCache::new(0);
        c.insert(1, "1".into());
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c = LruCache::new(3);
        c.insert(1, "1".into());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 3);
        c.insert(2, "2".into());
        assert_eq!(c.get(2).as_deref(), Some("2"));
    }
}
