//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of the rayon API this workspace uses —
//! `into_par_iter().map(f).collect::<Vec<_>>()` over ranges and vectors —
//! on top of `std::thread::scope`. Items are split into one ordered chunk
//! per available core; results preserve input order. On a single-core
//! machine the work degenerates to a sequential loop with no thread spawn.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Commonly imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Starts a parallel pipeline over `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// A materialized parallel iterator (this shim is eager at `map`).
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// A mapped pipeline, ready to collect.
pub struct ParMapped<R: Send> {
    results: Vec<R>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item across all available cores, preserving
    /// input order. Executes eagerly (unlike real rayon, which is lazy);
    /// the observable behaviour of `map(...).collect()` is identical.
    pub fn map<R, F>(self, f: F) -> ParMapped<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.items.len().max(1));
        if threads <= 1 {
            return ParMapped {
                results: self.items.into_iter().map(f).collect(),
            };
        }

        let mut chunked: Vec<Vec<T>> = Vec::with_capacity(threads);
        let chunk_len = self.items.len().div_ceil(threads);
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(chunk_len.min(items.len()));
            chunked.push(std::mem::replace(&mut items, rest));
        }

        let f = &f;
        let mut results: Vec<Vec<R>> = Vec::with_capacity(chunked.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunked
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("parallel worker panicked"));
            }
        });
        ParMapped {
            results: results.into_iter().flatten().collect(),
        }
    }
}

impl<R: Send> ParMapped<R> {
    /// Gathers the mapped results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_vecs_and_empty_inputs() {
        let out: Vec<String> = vec!["a", "b"].into_par_iter().map(str::to_owned).collect();
        assert_eq!(out, vec!["a".to_string(), "b".to_string()]);
        let empty: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }
}
