//! stale and malformed suppressions, linted as serving.

fn stale(v: Option<u32>) -> Option<u32> {
    // lint:allow(panic-path): nothing left to suppress on the next line
    v
}

fn unknown_rule(v: Option<u32>) -> u32 {
    // lint:allow(made-up-rule): no such rule in the registry
    v.unwrap()
}

fn missing_reason(v: Option<u32>) -> u32 {
    // lint:allow(panic-path)
    v.unwrap()
}
