//! Ideal battery: a coulomb counter with no rate or recovery effects.
//!
//! Used as the "plain energy minimisation" view of a schedule — the model
//! implicitly assumed by classical DVS work. Comparing schedules under
//! [`CoulombCounter`] vs [`crate::rv::RvModel`] is exactly the gap the
//! DATE'05 paper exploits.

use crate::model::BatteryModel;
use crate::profile::LoadProfile;
use crate::units::{MilliAmpMinutes, Minutes};
use serde::{Deserialize, Serialize};

/// Ideal integrating battery model: apparent charge equals delivered charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoulombCounter;

impl CoulombCounter {
    /// Creates the (stateless) ideal model.
    pub fn new() -> Self {
        Self
    }
}

impl BatteryModel for CoulombCounter {
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        profile.direct_charge_until(at)
    }

    fn name(&self) -> &'static str {
        "coulomb-counter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MilliAmps;

    #[test]
    fn apparent_equals_direct() {
        let p = LoadProfile::from_steps([
            (Minutes::new(5.0), MilliAmps::new(100.0)),
            (Minutes::new(5.0), MilliAmps::new(300.0)),
        ])
        .unwrap();
        let m = CoulombCounter::new();
        assert_eq!(m.apparent_charge(&p, p.end()), p.direct_charge());
        assert_eq!(
            m.apparent_charge(&p, Minutes::new(5.0)),
            MilliAmpMinutes::new(500.0)
        );
    }

    #[test]
    fn order_does_not_matter_for_an_ideal_battery() {
        let p = LoadProfile::from_steps([
            (Minutes::new(5.0), MilliAmps::new(100.0)),
            (Minutes::new(5.0), MilliAmps::new(300.0)),
        ])
        .unwrap();
        let m = CoulombCounter::new();
        let r = p.reversed();
        assert_eq!(
            m.apparent_charge(&p, p.end()),
            m.apparent_charge(&r, r.end())
        );
    }

    #[test]
    fn lifetime_is_exact_for_constant_load() {
        let p = LoadProfile::from_steps([(Minutes::new(100.0), MilliAmps::new(10.0))]).unwrap();
        let m = CoulombCounter::new();
        let lt = m.lifetime(&p, MilliAmpMinutes::new(500.0)).unwrap();
        assert!((lt.value() - 50.0).abs() < 1e-6, "died at {lt}");
    }
}
