//! Fleet-scale serving: a front-tier router that owns the listening
//! socket, spawns and supervises N worker processes, and routes every
//! request by folded content-hash bits to a consistent worker slice.
//!
//! ## Topology
//!
//! One router process accepts all client connections. Each `POST
//! /v1/schedule` body is hashed (FNV-1a over the raw wire bytes — the
//! same hash that keys the alias fast path) and folded onto a **home
//! slot** `(h ^ (h >> 32)) % N`, exactly the fold the sharded memory
//! cache uses. The same document therefore always lands on the same
//! worker, so every worker's memory cache stays hot on its slice of the
//! hash space. Workers are `batsched serve` children on loopback ports
//! (or in-process servers in tests/benches, via [`WorkerLauncher`]).
//!
//! ## Robustness
//!
//! * **Health/readiness probing** — a monitor thread polls each worker's
//!   `/readyz`; a freshly launched worker is only admitted to routing
//!   once it reports ready.
//! * **Circuit breaker + backoff restart** — consecutive probe failures
//!   or consecutive failed proxy exchanges (a wedged worker that accepts
//!   connections but never answers) trip the per-worker breaker: the
//!   child is killed and relaunched with exponential backoff. A child
//!   that dies outright (crash, `kill -9`) is detected the same sweep
//!   and respawned on the same backoff schedule.
//! * **Bounded retry-with-failover** — when an upstream connection dies
//!   mid-exchange the request is retried on the next live worker in the
//!   slot's deterministic failover chain. This is safe because requests
//!   are idempotent by content hash: any worker produces the
//!   bit-identical answer. The retry budget is capped
//!   ([`FleetConfig::retry_budget`]); when it is spent the client gets a
//!   typed `upstream_unavailable` 503, never a dropped connection.
//! * **Drain/restart** — `POST /v1/fleet/drain/<k>` stops routing new
//!   work to worker `k` (its slice fails over), waits for its in-flight
//!   requests to finish, shuts it down gracefully (compacting its disk
//!   shard), relaunches it and re-admits it on ready — without dropping
//!   the fleet.
//!
//! ## Disk tier
//!
//! Each worker owns `<path>.shard-K` exclusively (see [`shard_path`]):
//! no cross-process file locking is needed, and a restarted worker
//! reloads exactly its slice. Rebalancing is restart-only — the fleet
//! size is fixed at boot.

use crate::http::{
    self, is_timeout, read_request, reason_phrase, write_response, write_response_bytes,
    write_response_typed, Request, RequestError,
};
use crate::metrics::{render_sample, render_type};
use crate::service::{Service, ServiceConfig};
use crate::wire::{self, ErrorResponse};
use crate::{FaultPlane, HttpServer};
use serde::Serialize;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and robustness knobs for a [`Fleet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker processes (must be ≥ 1). Fixed for the fleet's lifetime:
    /// routing is restart-only rebalanced.
    pub size: usize,
    /// Extra proxy attempts after the first failed one before the client
    /// gets a typed `upstream_unavailable` 503 (0 = no failover).
    pub retry_budget: usize,
    /// Per-attempt upstream budget: connect, send and read the full
    /// response within this long or the attempt fails (must be > 0).
    pub upstream_timeout: Duration,
    /// Monitor sweep cadence: dead-child checks and `/readyz` probes
    /// (must be > 0).
    pub probe_interval: Duration,
    /// First restart delay after a crash/wedge; doubles per consecutive
    /// failure up to [`FleetConfig::backoff_max`] (must be > 0).
    pub backoff_base: Duration,
    /// Ceiling for the exponential restart backoff.
    pub backoff_max: Duration,
    /// Consecutive probe failures — or consecutive failed proxy
    /// exchanges — that trip a worker's breaker and force a restart
    /// (must be ≥ 1).
    pub breaker_threshold: u32,
    /// How long a draining worker may take to finish its in-flight
    /// requests before it is restarted anyway.
    pub drain_timeout: Duration,
    /// How long a launched worker may stay not-ready before the slot is
    /// recycled (killed and relaunched with backoff).
    pub start_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            size: 3,
            retry_budget: 2,
            upstream_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_millis(150),
            backoff_base: Duration::from_millis(200),
            backoff_max: Duration::from_secs(5),
            breaker_threshold: 3,
            drain_timeout: Duration::from_secs(30),
            start_timeout: Duration::from_secs(30),
        }
    }
}

/// A [`FleetConfig`] that cannot produce a working fleet, rejected by
/// [`Fleet::start`] before anything is spawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `size == 0`: nothing would ever answer.
    ZeroSize,
    /// `upstream_timeout == 0`: every proxy attempt would fail instantly.
    ZeroUpstreamTimeout,
    /// `probe_interval == 0`: the monitor would busy-spin.
    ZeroProbeInterval,
    /// `backoff_base == 0`: a crash-looping child would be respawned in a
    /// tight loop.
    ZeroBackoff,
    /// `breaker_threshold == 0`: the breaker would trip before the first
    /// failure.
    ZeroBreakerThreshold,
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FleetConfigError::ZeroSize => "fleet size must be >= 1",
            FleetConfigError::ZeroUpstreamTimeout => "upstream_timeout must be > 0",
            FleetConfigError::ZeroProbeInterval => "probe_interval must be > 0",
            FleetConfigError::ZeroBackoff => "backoff_base must be > 0",
            FleetConfigError::ZeroBreakerThreshold => "breaker_threshold must be >= 1",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FleetConfigError {}

/// Why [`Fleet::start`] failed.
#[derive(Debug)]
pub enum FleetStartError {
    /// The configuration was rejected before anything was spawned.
    Config(FleetConfigError),
    /// Binding the front listener failed.
    Io(io::Error),
}

impl fmt::Display for FleetStartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetStartError::Config(e) => write!(f, "invalid fleet config: {e}"),
            FleetStartError::Io(e) => write!(f, "cannot start fleet router: {e}"),
        }
    }
}

impl std::error::Error for FleetStartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetStartError::Config(e) => Some(e),
            FleetStartError::Io(e) => Some(e),
        }
    }
}

fn validate(cfg: &FleetConfig) -> Result<(), FleetConfigError> {
    if cfg.size == 0 {
        return Err(FleetConfigError::ZeroSize);
    }
    if cfg.upstream_timeout == Duration::ZERO {
        return Err(FleetConfigError::ZeroUpstreamTimeout);
    }
    if cfg.probe_interval == Duration::ZERO {
        return Err(FleetConfigError::ZeroProbeInterval);
    }
    if cfg.backoff_base == Duration::ZERO {
        return Err(FleetConfigError::ZeroBackoff);
    }
    if cfg.breaker_threshold == 0 {
        return Err(FleetConfigError::ZeroBreakerThreshold);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// The home slot for a content hash in a fleet of `size` workers: the low
/// hash bits folded with the high half (the sharded cache's fold), modulo
/// the fleet size.
///
/// # Panics
///
/// When `size == 0` (validated away at fleet start).
pub fn home_slot(hash: u64, size: usize) -> usize {
    assert!(size > 0, "home_slot needs a non-empty fleet");
    ((hash ^ (hash >> 32)) as usize) % size
}

/// The worker a request routes to: the first live slot scanning the
/// deterministic failover chain `home, home+1, … (mod size)`. `None` when
/// no worker is live.
///
/// Invariants (proptested in `tests/fleet.rs`):
///
/// * **total** — every hash routes to exactly one live worker whenever
///   any worker is live;
/// * **stable** — the same hash and liveness always route identically;
/// * **minimal disruption** — marking one worker dead only remaps hashes
///   that routed to *it*; every other worker keeps its slice.
pub fn route(hash: u64, live: &[bool]) -> Option<usize> {
    let size = live.len();
    if size == 0 {
        return None;
    }
    let home = home_slot(hash, size);
    (0..size)
        .map(|i| (home + i) % size)
        .find(|&s| live.get(s).copied().unwrap_or(false))
}

/// The disk-tier file owned exclusively by worker `slot`:
/// `<base>.shard-<slot>`.
pub fn shard_path(base: &Path, slot: usize) -> PathBuf {
    PathBuf::from(format!("{}.shard-{slot}", base.display()))
}

// ---------------------------------------------------------------------------
// Worker launching
// ---------------------------------------------------------------------------

/// A live worker as the router sees it: an address to proxy to plus
/// liveness/termination hooks.
pub trait WorkerHandle: Send {
    /// The worker's HTTP address.
    fn addr(&self) -> SocketAddr;
    /// OS process id, when the worker is a real process.
    fn pid(&self) -> Option<u32>;
    /// `true` when the worker is gone (process exited, server stopped).
    fn poll_dead(&mut self) -> bool;
    /// Abrupt termination (SIGKILL for processes).
    fn kill(&mut self);
    /// Waits up to `timeout` for the worker to exit on its own; `true`
    /// when it did.
    fn wait_exit(&mut self, timeout: Duration) -> bool;
}

/// Launches workers for fleet slots. [`ProcessLauncher`] spawns real
/// `batsched serve` child processes; [`InProcessLauncher`] runs each
/// worker as an in-process [`HttpServer`] so tests and benches can drive
/// the router deterministically (including per-slot fault planes).
pub trait WorkerLauncher: Send + Sync + 'static {
    /// Launches slot `slot` (incarnation `attempt`, starting at 0) and
    /// returns its handle once the worker has an address.
    ///
    /// # Errors
    ///
    /// Spawn/bind failures; the monitor retries with backoff.
    fn launch(&self, slot: usize, attempt: u64) -> io::Result<Box<dyn WorkerHandle>>;
}

/// Spawns `<program> serve --http 127.0.0.1:0 --worker-id <slot>
/// [--disk-cache <base>.shard-<slot>] <args…>` and parses the announced
/// address off the child's stderr.
pub struct ProcessLauncher {
    /// The `batsched` binary (usually `std::env::current_exe()`).
    pub program: PathBuf,
    /// Extra `serve` arguments appended verbatim for every worker
    /// (`--workers`, `--request-timeout`, `--fault`, …).
    pub args: Vec<String>,
    /// Disk-tier base path; each worker gets its own `.shard-K` file.
    pub disk_base: Option<PathBuf>,
    /// How long to wait for the child to announce its address.
    pub launch_timeout: Duration,
}

impl ProcessLauncher {
    /// A launcher for `program` with no extra arguments and no disk tier.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            args: Vec::new(),
            disk_base: None,
            launch_timeout: Duration::from_secs(20),
        }
    }
}

/// Extracts the bound address from a `listening on http://ADDR` line.
fn parse_announced_addr(line: &str) -> Option<SocketAddr> {
    let start = line.find("http://")? + "http://".len();
    line.get(start..)?.trim().parse().ok()
}

impl WorkerLauncher for ProcessLauncher {
    fn launch(&self, slot: usize, _attempt: u64) -> io::Result<Box<dyn WorkerHandle>> {
        let mut cmd = Command::new(&self.program);
        cmd.arg("serve")
            .arg("--http")
            .arg("127.0.0.1:0")
            .arg("--worker-id")
            .arg(slot.to_string());
        if let Some(base) = &self.disk_base {
            cmd.arg("--disk-cache").arg(shard_path(base, slot));
        }
        cmd.args(&self.args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn()?;
        let Some(stderr) = child.stderr.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::other("spawned worker has no piped stderr"));
        };
        let mut reader = BufReader::new(stderr);
        // The daemon announces its address within its first few stderr
        // lines or exits; a child that does neither within the budget is
        // killed. `read_line` only blocks while the child is alive and
        // silent, which a healthy `batsched serve` never is.
        let deadline = Instant::now() + self.launch_timeout;
        let mut addr = None;
        let mut line = String::new();
        while Instant::now() < deadline {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if let Some(a) = parse_announced_addr(&line) {
                        addr = Some(a);
                        break;
                    }
                }
            }
        }
        let Some(addr) = addr else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::other(format!(
                "worker {slot} exited (or stalled) before announcing an address"
            )));
        };
        // Keep draining the child's stderr forever: a full pipe would
        // block the worker. Lines are re-emitted tagged with the slot.
        std::thread::Builder::new()
            .name(format!("batsched-fleet-stderr-{slot}"))
            .spawn(move || {
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => eprint!("[worker {slot}] {line}"),
                    }
                }
            })?;
        Ok(Box::new(ProcessWorker { child, addr }))
    }
}

struct ProcessWorker {
    child: Child,
    addr: SocketAddr,
}

impl WorkerHandle for ProcessWorker {
    fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn pid(&self) -> Option<u32> {
        Some(self.child.id())
    }

    fn poll_dead(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn wait_exit(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.poll_dead() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        // Never leak a child process, whatever path dropped the handle.
        if !self.poll_dead() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Per-slot fault-plane factory for [`InProcessLauncher`]: receives
/// `(slot, attempt)` so a test can arm only one incarnation of one worker.
pub type SlotFaults = Arc<dyn Fn(usize, u64) -> FaultPlane + Send + Sync>;

/// Runs each worker as an in-process [`Service`] + [`HttpServer`] on a
/// loopback port — the full router/proxy path over real sockets, without
/// child processes. `kill` stops the server and service abruptly (no
/// drain announcement to the router), which is how tests simulate a
/// crashed worker.
pub struct InProcessLauncher {
    /// Configuration for every worker's service.
    pub config: ServiceConfig,
    /// Disk-tier base path; each worker gets its own `.shard-K` file.
    pub disk_base: Option<PathBuf>,
    /// Optional per-(slot, attempt) fault plane.
    pub faults: Option<SlotFaults>,
}

impl InProcessLauncher {
    /// A launcher where every worker runs `config` (memory-only, no
    /// faults).
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            config,
            disk_base: None,
            faults: None,
        }
    }
}

impl WorkerLauncher for InProcessLauncher {
    fn launch(&self, slot: usize, attempt: u64) -> io::Result<Box<dyn WorkerHandle>> {
        let mut cfg = self.config.clone();
        cfg.fleet_worker = Some(slot as u32);
        if let Some(base) = &self.disk_base {
            cfg.disk_path = Some(shard_path(base, slot));
        }
        let plane = self
            .faults
            .as_ref()
            .map_or_else(FaultPlane::disarmed, |f| f(slot, attempt));
        let svc = Arc::new(
            Service::try_start_with_faults(cfg, plane)
                .map_err(|e| io::Error::other(e.to_string()))?,
        );
        let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0")?;
        let addr = server.local_addr();
        Ok(Box::new(InProcessWorker {
            svc: Some(svc),
            server: Some(server),
            addr,
            dead: false,
        }))
    }
}

struct InProcessWorker {
    svc: Option<Arc<Service>>,
    server: Option<HttpServer>,
    addr: SocketAddr,
    dead: bool,
}

impl InProcessWorker {
    fn stop(&mut self) {
        self.dead = true;
        drop(self.server.take());
        if let Some(svc) = self.svc.take() {
            svc.shutdown();
        }
    }
}

impl WorkerHandle for InProcessWorker {
    fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn pid(&self) -> Option<u32> {
        None
    }

    fn poll_dead(&mut self) -> bool {
        self.dead
    }

    fn kill(&mut self) {
        self.stop();
    }

    fn wait_exit(&mut self, _timeout: Duration) -> bool {
        // An in-process worker that received /v1/shutdown stopped its own
        // acceptor; finish the teardown here.
        self.stop();
        true
    }
}

impl Drop for InProcessWorker {
    fn drop(&mut self) {
        if !self.dead {
            self.stop();
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet state
// ---------------------------------------------------------------------------

/// A worker slot's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Launched, waiting for `/readyz` to pass; not routed to.
    Starting,
    /// Admitted to routing.
    Ready,
    /// Draining: no new work; in-flight finishes, then restart.
    Draining,
    /// Dead or wedged; waiting out the restart backoff.
    Down,
}

impl WorkerState {
    fn name(self) -> &'static str {
        match self {
            WorkerState::Starting => "starting",
            WorkerState::Ready => "ready",
            WorkerState::Draining => "draining",
            WorkerState::Down => "down",
        }
    }
}

/// The mutable half of a slot, behind its own short-held lock.
struct Slot {
    state: WorkerState,
    handle: Option<Box<dyn WorkerHandle>>,
    addr: Option<SocketAddr>,
    /// When the current state was entered (start-timeout accounting).
    since: Instant,
    /// Next restart delay (escalates ×2 per consecutive failure).
    backoff: Duration,
    /// Earliest instant a Down slot may relaunch.
    backoff_until: Instant,
    /// Launches so far (incarnation counter fed to the launcher).
    attempts: u64,
    /// Consecutive failed `/readyz` probes (monitor-owned).
    probe_failures: u32,
}

/// One worker slot: state machine, connection pool and counters.
struct PerWorker {
    slot: Mutex<Slot>,
    /// Idle keep-alive connections to this worker, LIFO.
    pool: Mutex<Vec<UpstreamConn>>,
    /// Bumped on every kill/restart so stale pooled connections from a
    /// previous incarnation are discarded instead of reused.
    epoch: AtomicU64,
    /// Requests currently proxied to this worker (drain waits on 0).
    inflight: AtomicU64,
    /// Successful proxied exchanges.
    proxied: AtomicU64,
    /// Failed proxy exchanges (connect/send/read/timeout).
    upstream_errors: AtomicU64,
    /// Consecutive failed proxy exchanges; reset by a success. At
    /// `breaker_threshold` the monitor force-restarts the worker.
    proxy_failures: AtomicU32,
    /// Relaunches after the initial boot.
    restarts: AtomicU64,
    /// Drain cycles started.
    drains: AtomicU64,
}

/// A pooled upstream connection: buffered read half + write half.
struct UpstreamConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    epoch: u64,
}

struct FleetShared {
    cfg: FleetConfig,
    launcher: Box<dyn WorkerLauncher>,
    workers: Vec<PerWorker>,
    shutting_down: AtomicBool,
    /// Schedule requests accepted by the router.
    requests: AtomicU64,
    /// Failover retries performed (attempts beyond each request's first).
    retries: AtomicU64,
    /// Typed `upstream_unavailable` 503s returned.
    unavailable: AtomicU64,
    /// Monotonic sequence feeding generated trace ids.
    trace_seq: AtomicU64,
}

impl FleetShared {
    /// Liveness mask for routing: only `Ready` slots accept new work.
    fn live_mask(&self) -> Vec<bool> {
        self.workers
            .iter()
            .map(|w| lock_recover(&w.slot).state == WorkerState::Ready)
            .collect()
    }

    fn addr_of(&self, k: usize) -> Option<SocketAddr> {
        lock_recover(&self.workers.get(k)?.slot).addr
    }
}

/// Locks a fleet mutex, recovering from poisoning. Fleet state (slots,
/// connection pools) is plain data with no mid-update invariants a
/// panicking holder could tear halfway: the monitor re-derives every
/// worker's state on its next pass and stale pooled connections are
/// already fenced by the epoch counter. Inheriting the poisoned value
/// degrades at most one worker; propagating the panic would wedge the
/// whole router.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running fleet: router listener + supervised workers.
pub struct Fleet {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    shared: Arc<FleetShared>,
}

/// Point-in-time fleet topology and per-worker counters, served as JSON
/// by `GET /v1/fleet`.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStatus {
    /// Worker slots (fixed at boot).
    pub size: usize,
    /// `true` when every worker is ready.
    pub ready: bool,
    /// Router-level counters.
    pub requests: u64,
    /// Failover retries performed.
    pub retries: u64,
    /// Typed `upstream_unavailable` responses returned.
    pub unavailable: u64,
    /// Per-worker detail, in slot order.
    pub workers: Vec<WorkerStatus>,
}

/// One worker's slice of [`FleetStatus`].
#[derive(Debug, Clone, Serialize)]
pub struct WorkerStatus {
    /// Slot index.
    pub id: usize,
    /// Lifecycle state: `starting`, `ready`, `draining` or `down`.
    pub state: String,
    /// Loopback address, when launched.
    pub addr: Option<String>,
    /// OS pid, when the worker is a real process.
    pub pid: Option<u32>,
    /// Requests currently proxied to this worker.
    pub inflight: u64,
    /// Successful proxied exchanges.
    pub proxied: u64,
    /// Failed proxy exchanges.
    pub upstream_errors: u64,
    /// Relaunches after the initial boot.
    pub restarts: u64,
    /// Drain cycles started.
    pub drains: u64,
}

impl Fleet {
    /// Validates `cfg`, binds the router listener on `addr` (port 0 for
    /// an OS-assigned one), launches every worker slot and starts the
    /// acceptor and monitor threads. Workers come up asynchronously —
    /// use [`Fleet::wait_ready`] to block until the fleet is routable.
    ///
    /// # Errors
    ///
    /// [`FleetStartError::Config`] for a rejected configuration,
    /// [`FleetStartError::Io`] for listener failures. Individual worker
    /// launch failures are *not* errors: the slot starts `Down` and the
    /// monitor retries with backoff.
    pub fn start(
        cfg: FleetConfig,
        launcher: Box<dyn WorkerLauncher>,
        addr: &str,
    ) -> Result<Fleet, FleetStartError> {
        validate(&cfg).map_err(FleetStartError::Config)?;
        let listener = TcpListener::bind(addr).map_err(FleetStartError::Io)?;
        listener
            .set_nonblocking(true)
            .map_err(FleetStartError::Io)?;
        let addr = listener.local_addr().map_err(FleetStartError::Io)?;

        let now = Instant::now();
        let workers = (0..cfg.size)
            .map(|_| PerWorker {
                slot: Mutex::new(Slot {
                    state: WorkerState::Down,
                    handle: None,
                    addr: None,
                    since: now,
                    backoff: cfg.backoff_base,
                    backoff_until: now,
                    attempts: 0,
                    probe_failures: 0,
                }),
                pool: Mutex::new(Vec::new()),
                epoch: AtomicU64::new(0),
                inflight: AtomicU64::new(0),
                proxied: AtomicU64::new(0),
                upstream_errors: AtomicU64::new(0),
                proxy_failures: AtomicU32::new(0),
                restarts: AtomicU64::new(0),
                drains: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(FleetShared {
            cfg,
            launcher,
            workers,
            shutting_down: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
        });

        // Initial boot: launch every slot before accepting traffic, so
        // the first requests find Starting workers, not empty slots.
        for k in 0..shared.cfg.size {
            launch_slot(&shared, k);
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let flag = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("batsched-fleet-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &flag))
                .map_err(FleetStartError::Io)?
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            let flag = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("batsched-fleet-monitor".into())
                .spawn(move || monitor_loop(&shared, &flag))
                .map_err(FleetStartError::Io)?
        };
        Ok(Fleet {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            monitor: Some(monitor),
            shared,
        })
    }

    /// The router's bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every worker is ready or `timeout` elapses; `true`
    /// when the fleet became fully ready.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.live_mask().iter().all(|&l| l) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Point-in-time topology and counters.
    pub fn status(&self) -> FleetStatus {
        status_of(&self.shared)
    }

    /// The router's metrics in Prometheus text exposition format
    /// (`batsched_fleet_*` series).
    pub fn metrics_text(&self) -> String {
        metrics_of(&self.shared)
    }

    /// Abruptly kills worker `k` (SIGKILL for process workers) — the
    /// failure drill behind the zero-loss acceptance gate. The monitor
    /// respawns it with backoff. `false` when `k` has no live worker.
    pub fn kill_worker(&self, k: usize) -> bool {
        let Some(w) = self.shared.workers.get(k) else {
            return false;
        };
        let mut slot = lock_recover(&w.slot);
        let Some(handle) = slot.handle.as_mut() else {
            return false;
        };
        handle.kill();
        slot.handle = None;
        slot.addr = None;
        mark_down(&self.shared, k, &mut slot, "killed");
        true
    }

    /// Starts a drain/restart cycle on worker `k`: stop routing new work
    /// to it, let its in-flight requests finish, shut it down gracefully,
    /// relaunch, re-admit on ready.
    ///
    /// # Errors
    ///
    /// When `k` is out of range or the worker is not currently ready.
    pub fn drain_worker(&self, k: usize) -> Result<(), String> {
        drain_worker(&self.shared, k)
    }

    /// Total schedule requests accepted by the router so far.
    pub fn requests_total(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Blocks until the router is asked to stop (a client hit
    /// `POST /v1/shutdown`), then tears the fleet down gracefully.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.finish();
    }

    /// Stops the router and tears the fleet down gracefully: each worker
    /// gets `POST /v1/shutdown` (compacting its disk shard) and a bounded
    /// wait before being killed.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.finish();
    }

    fn finish(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        for w in &self.shared.workers {
            let mut slot = lock_recover(&w.slot);
            if let Some(addr) = slot.addr {
                post_shutdown(addr, Duration::from_secs(2));
            }
            if let Some(handle) = slot.handle.as_mut() {
                if !handle.wait_exit(Duration::from_secs(5)) {
                    handle.kill();
                }
            }
            slot.handle = None;
            slot.addr = None;
            slot.state = WorkerState::Down;
            drop(slot);
            lock_recover(&w.pool).clear();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if self.monitor.is_some() {
            self.finish();
        }
    }
}

fn status_of(shared: &Arc<FleetShared>) -> FleetStatus {
    let mut workers = Vec::with_capacity(shared.cfg.size);
    let mut ready = true;
    for (k, w) in shared.workers.iter().enumerate() {
        let mut slot = lock_recover(&w.slot);
        let state = slot.state;
        let pid = slot.handle.as_mut().and_then(|h| h.pid());
        let addr = slot.addr.map(|a| a.to_string());
        drop(slot);
        ready &= state == WorkerState::Ready;
        workers.push(WorkerStatus {
            id: k,
            state: state.name().to_string(),
            addr,
            pid,
            inflight: w.inflight.load(Ordering::Relaxed),
            proxied: w.proxied.load(Ordering::Relaxed),
            upstream_errors: w.upstream_errors.load(Ordering::Relaxed),
            restarts: w.restarts.load(Ordering::Relaxed),
            drains: w.drains.load(Ordering::Relaxed),
        });
    }
    FleetStatus {
        size: shared.cfg.size,
        ready: ready && !shared.shutting_down.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::Relaxed),
        retries: shared.retries.load(Ordering::Relaxed),
        unavailable: shared.unavailable.load(Ordering::Relaxed),
        workers,
    }
}

fn metrics_of(shared: &Arc<FleetShared>) -> String {
    let status = status_of(shared);
    let mut out = String::with_capacity(4 * 1024);
    render_type(&mut out, "batsched_fleet_size", "gauge");
    render_sample(&mut out, "batsched_fleet_size", "", status.size as u64);
    render_type(&mut out, "batsched_fleet_ready", "gauge");
    render_sample(
        &mut out,
        "batsched_fleet_ready",
        "",
        u64::from(status.ready),
    );
    render_type(&mut out, "batsched_fleet_requests_total", "counter");
    render_sample(
        &mut out,
        "batsched_fleet_requests_total",
        "",
        status.requests,
    );
    render_type(&mut out, "batsched_fleet_retries_total", "counter");
    render_sample(&mut out, "batsched_fleet_retries_total", "", status.retries);
    render_type(&mut out, "batsched_fleet_unavailable_total", "counter");
    render_sample(
        &mut out,
        "batsched_fleet_unavailable_total",
        "",
        status.unavailable,
    );
    type WorkerSeries = (&'static str, &'static str, fn(&WorkerStatus) -> u64);
    let per_worker: [WorkerSeries; 5] = [
        ("batsched_fleet_worker_up", "gauge", |w| {
            u64::from(w.state == "ready")
        }),
        ("batsched_fleet_worker_inflight", "gauge", |w| w.inflight),
        ("batsched_fleet_worker_proxied_total", "counter", |w| {
            w.proxied
        }),
        (
            "batsched_fleet_worker_upstream_errors_total",
            "counter",
            |w| w.upstream_errors,
        ),
        ("batsched_fleet_worker_restarts_total", "counter", |w| {
            w.restarts
        }),
    ];
    for (name, kind, get) in per_worker {
        render_type(&mut out, name, kind);
        for w in &status.workers {
            render_sample(&mut out, name, &format!("worker=\"{}\"", w.id), get(w));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Worker lifecycle (monitor thread)
// ---------------------------------------------------------------------------

/// Transitions a slot to `Down` and escalates its backoff. The caller has
/// already disposed of the handle (or knows it is dead).
fn mark_down(shared: &Arc<FleetShared>, k: usize, slot: &mut Slot, _why: &str) {
    let Some(w) = shared.workers.get(k) else {
        return;
    };
    w.epoch.fetch_add(1, Ordering::SeqCst);
    lock_recover(&w.pool).clear();
    w.proxy_failures.store(0, Ordering::Relaxed);
    slot.probe_failures = 0;
    slot.state = WorkerState::Down;
    slot.since = Instant::now();
    slot.backoff_until = Instant::now() + slot.backoff;
    slot.backoff = (slot.backoff * 2).min(shared.cfg.backoff_max);
}

/// Launches slot `k` (synchronously) and moves it to `Starting`. On
/// launch failure the slot goes `Down` with escalated backoff.
fn launch_slot(shared: &Arc<FleetShared>, k: usize) {
    let Some(w) = shared.workers.get(k) else {
        return;
    };
    let attempt = {
        let mut slot = lock_recover(&w.slot);
        // Claim the slot for this launch; `Starting` with no handle means
        // "launch in progress" and is skipped by every other path.
        slot.state = WorkerState::Starting;
        slot.since = Instant::now();
        slot.handle = None;
        slot.addr = None;
        slot.attempts += 1;
        if slot.attempts > 1 {
            w.restarts.fetch_add(1, Ordering::Relaxed);
        }
        slot.attempts - 1
    };
    match shared.launcher.launch(k, attempt) {
        Ok(handle) => {
            let mut slot = lock_recover(&w.slot);
            slot.addr = Some(handle.addr());
            slot.handle = Some(handle);
        }
        Err(_) => {
            let mut slot = lock_recover(&w.slot);
            mark_down(shared, k, &mut slot, "launch failed");
        }
    }
}

/// One monitor pass over slot `k`: relaunch expired backoffs, promote
/// ready workers, demote dead or wedged ones.
fn step_slot(shared: &Arc<FleetShared>, k: usize) {
    let Some(w) = shared.workers.get(k) else {
        return;
    };
    let decision = {
        let mut guard = lock_recover(&w.slot);
        let slot = &mut *guard;
        match slot.state {
            WorkerState::Down => {
                if Instant::now() >= slot.backoff_until {
                    Some(StepAction::Relaunch)
                } else {
                    None
                }
            }
            WorkerState::Starting => match slot.handle.as_mut() {
                None => None, // launch in progress elsewhere
                Some(handle) => {
                    if handle.poll_dead() {
                        slot.handle = None;
                        slot.addr = None;
                        mark_down(shared, k, slot, "died while starting");
                        None
                    } else if slot.since.elapsed() > shared.cfg.start_timeout {
                        handle.kill();
                        slot.handle = None;
                        slot.addr = None;
                        mark_down(shared, k, slot, "start timeout");
                        None
                    } else {
                        slot.addr.map(StepAction::ProbeStarting)
                    }
                }
            },
            WorkerState::Ready => match slot.handle.as_mut() {
                None => None,
                Some(handle) => {
                    if handle.poll_dead() {
                        slot.handle = None;
                        slot.addr = None;
                        mark_down(shared, k, slot, "died");
                        None
                    } else if w.proxy_failures.load(Ordering::Relaxed)
                        >= shared.cfg.breaker_threshold
                    {
                        // Wedged: accepting connections but failing every
                        // exchange. Kill and restart with backoff.
                        handle.kill();
                        slot.handle = None;
                        slot.addr = None;
                        mark_down(shared, k, slot, "breaker tripped");
                        None
                    } else {
                        slot.addr.map(StepAction::ProbeReady)
                    }
                }
            },
            WorkerState::Draining => None, // the drain thread owns it
        }
    };

    // Probes and launches run without the slot lock: a slow worker must
    // not block routing decisions that only need the slot's state.
    match decision {
        None => {}
        Some(StepAction::Relaunch) => launch_slot(shared, k),
        Some(StepAction::ProbeStarting(addr)) => {
            let ready = probe_ready(addr, probe_timeout(shared));
            let mut slot = lock_recover(&w.slot);
            if slot.state == WorkerState::Starting && slot.handle.is_some() && ready {
                slot.state = WorkerState::Ready;
                slot.since = Instant::now();
                slot.probe_failures = 0;
                slot.backoff = shared.cfg.backoff_base;
                w.proxy_failures.store(0, Ordering::Relaxed);
            }
        }
        Some(StepAction::ProbeReady(addr)) => {
            let ready = probe_ready(addr, probe_timeout(shared));
            let mut slot = lock_recover(&w.slot);
            if slot.state != WorkerState::Ready {
                return;
            }
            if ready {
                slot.probe_failures = 0;
            } else {
                slot.probe_failures += 1;
                if slot.probe_failures >= shared.cfg.breaker_threshold {
                    if let Some(handle) = slot.handle.as_mut() {
                        handle.kill();
                    }
                    slot.handle = None;
                    slot.addr = None;
                    mark_down(shared, k, &mut slot, "failed readiness probes");
                }
            }
        }
    }
}

enum StepAction {
    Relaunch,
    ProbeStarting(SocketAddr),
    ProbeReady(SocketAddr),
}

fn probe_timeout(shared: &Arc<FleetShared>) -> Duration {
    shared
        .cfg
        .upstream_timeout
        .min(Duration::from_millis(1_000))
}

fn monitor_loop(shared: &Arc<FleetShared>, shutdown: &Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        for k in 0..shared.cfg.size {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            step_slot(shared, k);
        }
        std::thread::sleep(shared.cfg.probe_interval);
    }
}

/// `GET /readyz` against a worker; `true` on a 200 within `timeout`.
fn probe_ready(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let req = format!("GET /readyz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if stream.write_all(req.as_bytes()).is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    matches!(reader.read_line(&mut line), Ok(n) if n > 0) && line.contains(" 200 ")
}

/// Best-effort `POST /v1/shutdown` to a worker (graceful stop: it drains
/// its queue and compacts its disk shard).
fn post_shutdown(addr: SocketAddr, timeout: Duration) {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let req = format!(
        "POST /v1/shutdown HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    let _ = stream.write_all(req.as_bytes());
    // Wait for the acknowledgement (or EOF) so the worker has actually
    // begun shutting down before the caller starts waiting on its exit.
    let mut buf = [0u8; 512];
    let _ = stream.read(&mut buf);
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

fn drain_worker(shared: &Arc<FleetShared>, k: usize) -> Result<(), String> {
    let Some(w) = shared.workers.get(k) else {
        return Err(format!("no worker {k} in a fleet of {}", shared.cfg.size));
    };
    {
        let mut slot = lock_recover(&w.slot);
        if slot.state != WorkerState::Ready {
            return Err(format!(
                "worker {k} is {}, only a ready worker can drain",
                slot.state.name()
            ));
        }
        slot.state = WorkerState::Draining;
        slot.since = Instant::now();
    }
    w.drains.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("batsched-fleet-drain-{k}"))
        .spawn(move || run_drain(&shared, k))
        .map_err(|e| format!("cannot spawn drain thread: {e}"))?;
    Ok(())
}

fn run_drain(shared: &Arc<FleetShared>, k: usize) {
    let Some(w) = shared.workers.get(k) else {
        return;
    };
    // New work already fails over (state is Draining); wait for in-flight
    // to finish, bounded by the drain timeout.
    let deadline = Instant::now() + shared.cfg.drain_timeout;
    while w.inflight.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let addr = lock_recover(&w.slot).addr;
    if let Some(addr) = addr {
        post_shutdown(addr, Duration::from_secs(2));
    }
    let mut slot = lock_recover(&w.slot);
    if let Some(handle) = slot.handle.as_mut() {
        if !handle.wait_exit(Duration::from_secs(5)) {
            handle.kill();
        }
    }
    slot.handle = None;
    slot.addr = None;
    slot.state = WorkerState::Down;
    slot.since = Instant::now();
    // An operator-intended restart is not a failure: relaunch immediately
    // with the base backoff, not an escalated one.
    slot.backoff = shared.cfg.backoff_base;
    slot.backoff_until = Instant::now();
    drop(slot);
    w.epoch.fetch_add(1, Ordering::SeqCst);
    lock_recover(&w.pool).clear();
    w.proxy_failures.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Router: accept loop and request handling
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<FleetShared>, shutdown: &Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let flag = Arc::clone(shutdown);
                if let Ok(h) = std::thread::Builder::new()
                    .name("batsched-fleet-conn".into())
                    .spawn(move || {
                        let _ = handle_client(stream, &shared, &flag);
                    })
                {
                    conns.push(h);
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(http::ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(http::ACCEPT_POLL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn handle_client(
    stream: TcpStream,
    shared: &Arc<FleetShared>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(http::IO_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut served = 0usize;

    loop {
        let mut idled = Duration::ZERO;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            stream.set_read_timeout(Some(http::IDLE_POLL))?;
            match reader.fill_buf() {
                Ok([]) => return Ok(()),
                Ok(_) => break,
                Err(e) if is_timeout(&e) => {
                    idled += http::IDLE_POLL;
                    if idled >= http::IDLE_TIMEOUT {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        stream.set_read_timeout(Some(http::IO_TIMEOUT))?;

        served += 1;
        let request = read_request(&mut reader);
        let wants_more = matches!(&request, Ok(req) if req.keep_alive)
            && served < http::MAX_REQUESTS_PER_CONNECTION
            && !shutdown.load(Ordering::SeqCst);

        let exit = serve_fleet_one(request, &mut stream, shared, shutdown, wants_more)?;
        if matches!(exit, ClientExit::Close) || !wants_more {
            return Ok(());
        }
    }
}

enum ClientExit {
    KeepGoing,
    Close,
}

fn serve_fleet_one(
    request: Result<Request, RequestError>,
    stream: &mut TcpStream,
    shared: &Arc<FleetShared>,
    shutdown: &Arc<AtomicBool>,
    keep_alive: bool,
) -> io::Result<ClientExit> {
    // Framing failures mirror the worker frontend exactly: typed error,
    // then close — the router never guesses where the next request starts.
    let req = match request {
        Ok(req) => req,
        Err(RequestError::TooLarge) => {
            write_response(
                stream,
                413,
                reason_phrase(413),
                &ErrorResponse::new("too_large", "request head or body exceeds the size limit")
                    .to_json(),
                &[],
                false,
            )?;
            return Ok(ClientExit::Close);
        }
        Err(RequestError::Malformed(msg)) => {
            write_response(
                stream,
                400,
                reason_phrase(400),
                &ErrorResponse::new("bad_http", msg).to_json(),
                &[],
                false,
            )?;
            return Ok(ClientExit::Close);
        }
        Err(RequestError::Unsupported(msg)) => {
            write_response(
                stream,
                501,
                reason_phrase(501),
                &ErrorResponse::new("unsupported_transfer_encoding", msg).to_json(),
                &[],
                false,
            )?;
            return Ok(ClientExit::Close);
        }
        Err(RequestError::Io(e)) => return Err(e),
    };

    let echo_header = req
        .request_id
        .as_ref()
        .map(|id| format!("X-Request-Id: {id}"));
    let echo: Vec<&str> = echo_header.as_deref().into_iter().collect();

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/schedule") => proxy_schedule(&req, stream, shared, keep_alive),
        ("GET", "/healthz") => {
            write_response(stream, 200, "OK", r#"{"ok":true}"#, &echo, keep_alive)?;
            Ok(ClientExit::KeepGoing)
        }
        ("GET", "/readyz") => {
            let status = status_of(shared);
            if status.ready {
                write_response(stream, 200, "OK", r#"{"ready":true}"#, &echo, keep_alive)?;
            } else {
                let mut reasons: Vec<String> = status
                    .workers
                    .iter()
                    .filter(|w| w.state != "ready")
                    .map(|w| format!("\"worker_{}_{}\"", w.id, w.state))
                    .collect();
                if shared.shutting_down.load(Ordering::SeqCst) {
                    reasons.push("\"shutting_down\"".to_string());
                }
                let body = format!("{{\"ready\":false,\"reasons\":[{}]}}", reasons.join(","));
                write_response(stream, 503, reason_phrase(503), &body, &echo, keep_alive)?;
            }
            Ok(ClientExit::KeepGoing)
        }
        ("GET", "/v1/fleet") => {
            // lint:allow(panic-path): FleetStatus is an owned in-memory struct
            // of strings/ints with derived Serialize; serialisation cannot fail.
            let body = serde_json::to_string(&status_of(shared)).expect("fleet status serialises");
            write_response(stream, 200, "OK", &body, &echo, keep_alive)?;
            Ok(ClientExit::KeepGoing)
        }
        ("GET", "/v1/metrics") => {
            write_response_typed(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &metrics_of(shared),
                &echo,
                keep_alive,
            )?;
            Ok(ClientExit::KeepGoing)
        }
        ("POST", path) if path.starts_with("/v1/fleet/drain/") => {
            let spec = path.strip_prefix("/v1/fleet/drain/").unwrap_or_default();
            match spec.parse::<usize>() {
                Ok(k) => match drain_worker(shared, k) {
                    Ok(()) => {
                        let body = format!("{{\"ok\":true,\"draining\":{k}}}");
                        write_response(stream, 200, "OK", &body, &echo, keep_alive)?;
                    }
                    Err(msg) => {
                        write_response(
                            stream,
                            409,
                            "Conflict",
                            &ErrorResponse::new("drain_rejected", msg).to_json(),
                            &echo,
                            keep_alive,
                        )?;
                    }
                },
                Err(_) => {
                    write_response(
                        stream,
                        400,
                        reason_phrase(400),
                        &ErrorResponse::new(
                            "bad_request",
                            format!("'{spec}' is not a worker index"),
                        )
                        .to_json(),
                        &echo,
                        keep_alive,
                    )?;
                }
            }
            Ok(ClientExit::KeepGoing)
        }
        ("POST", "/v1/shutdown") => {
            write_response(
                stream,
                200,
                "OK",
                r#"{"ok":true,"shutting_down":true}"#,
                &echo,
                false,
            )?;
            shutdown.store(true, Ordering::SeqCst);
            Ok(ClientExit::Close)
        }
        _ => {
            write_response(
                stream,
                404,
                reason_phrase(404),
                &ErrorResponse::new("not_found", format!("no route {} {}", req.method, req.path))
                    .to_json(),
                &echo,
                keep_alive,
            )?;
            Ok(ClientExit::KeepGoing)
        }
    }
}

// ---------------------------------------------------------------------------
// Proxying
// ---------------------------------------------------------------------------

/// A fully buffered upstream response, ready to relay or retry.
struct UpstreamResponse {
    status: u16,
    content_type: String,
    x_cache: Option<String>,
    request_id: Option<String>,
    keep_alive: bool,
    body: Vec<u8>,
}

fn proxy_schedule(
    req: &Request,
    stream: &mut TcpStream,
    shared: &Arc<FleetShared>,
    keep_alive: bool,
) -> io::Result<ClientExit> {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    // Routing key: FNV-1a over the raw body bytes, folded onto a home
    // slot. Raw-byte hashing keeps routing allocation- and parse-free;
    // the canonical cross-format key stays a worker-side concern (each
    // wire spelling of a document consistently warms one slice).
    let hash = wire::fnv1a64(&req.body);
    let trace_id = req.request_id.clone().unwrap_or_else(|| {
        crate::trace::make_trace_id(&req.body, shared.trace_seq.fetch_add(1, Ordering::Relaxed))
    });

    let mut tried = vec![false; shared.cfg.size];
    let mut attempts = 0usize;
    let verdict = loop {
        // Re-snapshot liveness each attempt: a worker the monitor just
        // demoted must not be retried, and one it just admitted may be.
        let mut live = shared.live_mask();
        for (l, t) in live.iter_mut().zip(&tried) {
            *l &= !t;
        }
        let Some(k) = route(hash, &live) else {
            break None; // nobody (left) to ask
        };
        if attempts > shared.cfg.retry_budget {
            break None;
        }
        if attempts > 0 {
            shared.retries.fetch_add(1, Ordering::Relaxed);
        }
        attempts += 1;
        if let Some(t) = tried.get_mut(k) {
            *t = true;
        }
        match proxy_attempt(shared, k, req, &trace_id) {
            Ok(resp) => break Some((k, resp)),
            Err(_) => continue,
        }
    };

    match verdict {
        Some((k, resp)) => {
            let rid = format!(
                "X-Request-Id: {}",
                resp.request_id.as_deref().unwrap_or(&trace_id)
            );
            let fw = format!("X-Fleet-Worker: {k}");
            let mut headers: Vec<&str> = vec![rid.as_str(), fw.as_str()];
            let xc = resp.x_cache.as_ref().map(|v| format!("X-Cache: {v}"));
            if let Some(xc) = &xc {
                headers.push(xc.as_str());
            }
            write_response_bytes(
                stream,
                resp.status,
                reason_phrase(resp.status),
                &resp.content_type,
                &resp.body,
                &headers,
                keep_alive,
            )?;
            Ok(ClientExit::KeepGoing)
        }
        None => {
            shared.unavailable.fetch_add(1, Ordering::Relaxed);
            let rid = format!("X-Request-Id: {trace_id}");
            write_response(
                stream,
                503,
                reason_phrase(503),
                &ErrorResponse::new(
                    "upstream_unavailable",
                    format!(
                        "no worker answered after {attempts} attempt(s); the request is \
                         idempotent and may be retried"
                    ),
                )
                .to_json(),
                &[rid.as_str()],
                keep_alive,
            )?;
            Ok(ClientExit::KeepGoing)
        }
    }
}

/// One bounded attempt against worker `k`: checkout (pooled or fresh),
/// exchange, repool on success. A stale pooled connection gets one fresh
/// retry before the attempt counts as failed — an idle-closed keep-alive
/// is not evidence the worker is sick.
fn proxy_attempt(
    shared: &Arc<FleetShared>,
    k: usize,
    req: &Request,
    trace_id: &str,
) -> io::Result<UpstreamResponse> {
    let Some(w) = shared.workers.get(k) else {
        return Err(io::Error::other("worker index out of range"));
    };
    let addr = shared
        .addr_of(k)
        .ok_or_else(|| io::Error::other("worker has no address"))?;
    w.inflight.fetch_add(1, Ordering::SeqCst);
    let result = (|| {
        // Bind the checkout first: popping inside the `if let` scrutinee
        // would hold the pool guard across the exchange (and deadlock in
        // repool).
        let pooled = lock_recover(&w.pool).pop();
        if let Some(mut conn) = pooled {
            if let Ok(resp) = exchange(&mut conn, addr, req, trace_id) {
                repool(shared, k, conn, resp.keep_alive);
                return Ok(resp);
            }
        }
        let epoch = w.epoch.load(Ordering::SeqCst);
        let stream = TcpStream::connect_timeout(&addr, shared.cfg.upstream_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(shared.cfg.upstream_timeout))?;
        stream.set_write_timeout(Some(shared.cfg.upstream_timeout))?;
        let mut conn = UpstreamConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            epoch,
        };
        let resp = exchange(&mut conn, addr, req, trace_id)?;
        repool(shared, k, conn, resp.keep_alive);
        Ok(resp)
    })();
    w.inflight.fetch_sub(1, Ordering::SeqCst);
    match &result {
        Ok(_) => {
            w.proxied.fetch_add(1, Ordering::Relaxed);
            w.proxy_failures.store(0, Ordering::Relaxed);
        }
        Err(_) => {
            w.upstream_errors.fetch_add(1, Ordering::Relaxed);
            w.proxy_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
    result
}

/// Returns a healthy keep-alive connection to worker `k`'s pool — unless
/// the worker was restarted since checkout (stale epoch) or the pool is
/// already full.
fn repool(shared: &Arc<FleetShared>, k: usize, conn: UpstreamConn, keep_alive: bool) {
    const MAX_POOLED: usize = 8;
    if !keep_alive {
        return;
    }
    let Some(w) = shared.workers.get(k) else {
        return;
    };
    if w.epoch.load(Ordering::SeqCst) != conn.epoch {
        return;
    }
    let mut pool = lock_recover(&w.pool);
    if pool.len() < MAX_POOLED {
        pool.push(conn);
    }
}

/// Sends the proxied request and reads the complete framed response.
fn exchange(
    conn: &mut UpstreamConn,
    addr: SocketAddr,
    req: &Request,
    trace_id: &str,
) -> io::Result<UpstreamResponse> {
    let mut head = format!(
        "POST /v1/schedule HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n",
        req.body.len()
    );
    if let Some(ct) = &req.content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    if req.accept_binary {
        head.push_str(&format!("Accept: {}\r\n", crate::wire_bin::CONTENT_TYPE));
    }
    head.push_str(&format!(
        "X-Request-Id: {trace_id}\r\nConnection: keep-alive\r\n\r\n"
    ));
    conn.writer.write_all(head.as_bytes())?;
    conn.writer.write_all(&req.body)?;
    conn.writer.flush()?;
    read_upstream_response(&mut conn.reader)
}

/// Reads one head line, treating EOF and truncation as hard errors — a
/// response that stops mid-head means the upstream died mid-exchange.
fn read_resp_line<R: BufRead>(reader: &mut R) -> io::Result<String> {
    const MAX_LINE: u64 = 16 * 1024;
    let mut raw = Vec::new();
    let n = reader.by_ref().take(MAX_LINE).read_until(b'\n', &mut raw)?;
    if n == 0 || raw.last() != Some(&b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "upstream closed mid-response",
        ));
    }
    String::from_utf8(raw)
        .map(|s| s.trim_end_matches(['\r', '\n']).to_string())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))
}

fn read_upstream_response<R: BufRead>(reader: &mut R) -> io::Result<UpstreamResponse> {
    let status_line = read_resp_line(reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unreadable status line {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    let mut content_type = String::from("application/json");
    let mut x_cache = None;
    let mut request_id = None;
    let mut keep_alive = true;
    loop {
        let line = read_resp_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok();
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_string();
        } else if name.eq_ignore_ascii_case("x-cache") {
            x_cache = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-request-id") {
            request_id = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    let len = content_length.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "upstream response without Content-Length",
        )
    })?;
    if len > http::MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "upstream response body over the size cap",
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(UpstreamResponse {
        status,
        content_type,
        x_cache,
        request_id,
        keep_alive,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_slot_matches_the_cache_fold() {
        for size in [1usize, 2, 3, 5, 8] {
            for hash in [0u64, 1, 0xdead_beef, u64::MAX, 0x1234_5678_9abc_def0] {
                let s = home_slot(hash, size);
                assert!(s < size);
                assert_eq!(s, ((hash ^ (hash >> 32)) as usize) % size);
            }
        }
    }

    #[test]
    fn route_is_total_and_prefers_home() {
        let live = [true, true, true];
        for hash in 0..200u64 {
            let s = route(hash, &live).unwrap();
            assert_eq!(s, home_slot(hash, 3), "all-live routes straight home");
        }
        assert_eq!(route(7, &[]), None);
        assert_eq!(route(7, &[false, false]), None);
    }

    #[test]
    fn removing_a_worker_only_remaps_its_slice() {
        let all = [true, true, true, true];
        for hash in 0..500u64 {
            let before = route(hash, &all).unwrap();
            let mut without = all;
            without[1] = false;
            let after = route(hash, &without).unwrap();
            if before != 1 {
                assert_eq!(before, after, "survivors keep their slices");
            } else {
                assert_ne!(after, 1, "the dead worker's slice fails over");
            }
        }
    }

    #[test]
    fn shard_paths_are_per_worker() {
        let base = Path::new("/tmp/cache.bin");
        assert_eq!(shard_path(base, 0), PathBuf::from("/tmp/cache.bin.shard-0"));
        assert_eq!(shard_path(base, 7), PathBuf::from("/tmp/cache.bin.shard-7"));
    }

    #[test]
    fn announced_addr_parses() {
        assert_eq!(
            parse_announced_addr("listening on http://127.0.0.1:8080\n"),
            Some("127.0.0.1:8080".parse().unwrap())
        );
        assert_eq!(
            parse_announced_addr("fault plane ARMED with 2 rule(s)"),
            None
        );
        assert_eq!(parse_announced_addr("http://not-an-addr"), None);
    }

    #[test]
    fn invalid_fleet_configs_are_typed() {
        let cases = [
            (
                FleetConfig {
                    size: 0,
                    ..FleetConfig::default()
                },
                FleetConfigError::ZeroSize,
            ),
            (
                FleetConfig {
                    upstream_timeout: Duration::ZERO,
                    ..FleetConfig::default()
                },
                FleetConfigError::ZeroUpstreamTimeout,
            ),
            (
                FleetConfig {
                    probe_interval: Duration::ZERO,
                    ..FleetConfig::default()
                },
                FleetConfigError::ZeroProbeInterval,
            ),
            (
                FleetConfig {
                    backoff_base: Duration::ZERO,
                    ..FleetConfig::default()
                },
                FleetConfigError::ZeroBackoff,
            ),
            (
                FleetConfig {
                    breaker_threshold: 0,
                    ..FleetConfig::default()
                },
                FleetConfigError::ZeroBreakerThreshold,
            ),
        ];
        for (cfg, expected) in cases {
            assert_eq!(validate(&cfg), Err(expected));
        }
        assert_eq!(validate(&FleetConfig::default()), Ok(()));
    }
}
