//! Ablation studies beyond the paper's own tables:
//!
//! 1. **Factor knockout** — drop one term of `B = SR+CR+ENR+CIF+DPF` at a
//!    time and measure the final battery cost on G2/G3 (which factors pull
//!    their weight?).
//! 2. **Initial-weight rule** — the DESIGN.md §4.1 discrepancy quantified.
//! 3. **β sensitivity** — how the advantage over the energy-optimal DP
//!    baseline grows with the battery's non-ideality.
//! 4. **Series truncation** — σ error vs the 10-term paper setting.

#![forbid(unsafe_code)]

use batsched_baselines::{RakhmatovDp, Scheduler};
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_bench::Table;
use batsched_core::{schedule, FactorMask, InitialWeight, SchedulerConfig};
use batsched_taskgraph::paper::{g2, g3};

fn main() {
    let g2 = g2();
    let g3 = g3();

    println!("== Ablation 1: suitability-factor knockouts ==\n");
    let mut t = Table::new(["Mask", "G2 σ (d=75)", "G3 σ (d=230)"]);
    let base = SchedulerConfig::paper();
    let full_g2 = schedule(&g2, Minutes::new(75.0), &base)
        .unwrap()
        .cost
        .value();
    let full_g3 = schedule(&g3, Minutes::new(230.0), &base)
        .unwrap()
        .cost
        .value();
    t.row([
        "all factors".to_string(),
        format!("{full_g2:.0}"),
        format!("{full_g3:.0}"),
    ]);
    for i in 0..5 {
        let cfg = SchedulerConfig {
            factor_mask: FactorMask::without(i),
            ..base.clone()
        };
        let a = schedule(&g2, Minutes::new(75.0), &cfg)
            .unwrap()
            .cost
            .value();
        let b = schedule(&g3, Minutes::new(230.0), &cfg)
            .unwrap()
            .cost
            .value();
        t.row([
            format!("without {}", FactorMask::NAMES[i]),
            format!("{a:.0} ({:+.1}%)", (a - full_g2) / full_g2 * 100.0),
            format!("{b:.0} ({:+.1}%)", (b - full_g3) / full_g3 * 100.0),
        ]);
    }
    print!("{}", t.render());

    println!("\n== Ablation 2: initial-sequence weight rule (DESIGN.md §4.1) ==\n");
    let mut t = Table::new(["Rule", "G2 σ (d=75)", "G3 σ (d=230)"]);
    for (name, rule) in [
        (
            "average current (default, matches Table 2)",
            InitialWeight::AverageCurrent,
        ),
        (
            "average energy (the §4.1 prose)",
            InitialWeight::AverageEnergy,
        ),
        ("average power", InitialWeight::AveragePower),
    ] {
        let cfg = SchedulerConfig {
            initial_weight: rule,
            ..base.clone()
        };
        let a = schedule(&g2, Minutes::new(75.0), &cfg)
            .unwrap()
            .cost
            .value();
        let b = schedule(&g3, Minutes::new(230.0), &cfg)
            .unwrap()
            .cost
            .value();
        t.row([name.to_string(), format!("{a:.0}"), format!("{b:.0}")]);
    }
    print!("{}", t.render());

    println!("\n== Ablation 3: advantage over the DP baseline vs battery non-ideality (β) ==\n");
    let mut t = Table::new(["β", "ours σ", "DP [1] σ", "advantage"]);
    let dp_algo = RakhmatovDp::default();
    for beta in [0.1, 0.2, 0.273, 0.5, 1.0, 2.0] {
        let cfg = SchedulerConfig {
            beta,
            ..base.clone()
        };
        let model = RvModel::new(beta, 10).unwrap();
        let ours = schedule(&g3, Minutes::new(230.0), &cfg).unwrap();
        let ours_cost = ours.schedule.battery_cost(&g3, &model).value();
        let dp_cost = dp_algo
            .schedule(&g3, Minutes::new(230.0))
            .unwrap()
            .battery_cost(&g3, &model)
            .value();
        t.row([
            format!("{beta}"),
            format!("{ours_cost:.0}"),
            format!("{dp_cost:.0}"),
            format!("{:+.1}%", (dp_cost - ours_cost) / ours_cost * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("\n(small β = sluggish diffusion = strong rate/recovery effects; as β grows the");
    println!("battery approaches ideal and the DP baseline catches up in the limit.)");

    println!("\n== Ablation 4: series truncation error at the paper's operating point ==\n");
    let plan = schedule(&g3, Minutes::new(230.0), &base).unwrap();
    let profile = plan.schedule.to_profile(&g3);
    let reference = RvModel::new(0.273, 400).unwrap();
    let ref_sigma = reference.sigma(&profile, profile.end()).value();
    let mut t = Table::new(["terms", "σ", "error vs 400-term"]);
    for terms in [1usize, 2, 5, 10, 20, 50, 100] {
        let m = RvModel::new(0.273, terms).unwrap();
        let s = m.sigma(&profile, profile.end()).value();
        t.row([
            format!("{terms}"),
            format!("{s:.1}"),
            format!("{:+.3}%", (s - ref_sigma) / ref_sigma * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("\nthe paper's 10-term truncation is within a fraction of a percent of converged.");
}
