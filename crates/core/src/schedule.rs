//! The scheduler's output: an ordered, design-point-assigned task sequence.

use batsched_battery::model::BatteryModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validation failures for a [`Schedule`] against its graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The order is not a topological permutation of the graph's tasks.
    NotTopological,
    /// The assignment vector length disagrees with the task count.
    AssignmentLength {
        /// The graph's task count.
        expected: usize,
        /// The assignment vector's length.
        found: usize,
    },
    /// An assignment references a design-point column that does not exist.
    PointOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The nonexistent point.
        point: PointId,
    },
    /// The schedule finishes after the deadline.
    DeadlineViolated {
        /// When the schedule actually ends.
        makespan: Minutes,
        /// The deadline it had to meet.
        deadline: Minutes,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotTopological => write!(f, "order is not a topological permutation"),
            Self::AssignmentLength { expected, found } => {
                write!(
                    f,
                    "assignment has {found} entries, graph has {expected} tasks"
                )
            }
            Self::PointOutOfRange { task, point } => {
                write!(f, "task {task} assigned nonexistent design point {point}")
            }
            Self::DeadlineViolated { makespan, deadline } => {
                write!(f, "schedule ends at {makespan}, after deadline {deadline}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete scheduling decision: execution order plus one design point per
/// task (indexed by `TaskId`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    order: Vec<TaskId>,
    assignment: Vec<PointId>,
}

impl Schedule {
    /// Creates a schedule from an execution order and a task-indexed
    /// assignment. Invariants are checked by [`Schedule::validate`], kept
    /// separate so partially built schedules can be inspected in tests.
    pub fn new(order: Vec<TaskId>, assignment: Vec<PointId>) -> Self {
        Self { order, assignment }
    }

    /// Execution order (positions 0..n).
    pub fn order(&self) -> &[TaskId] {
        &self.order
    }

    /// Task-indexed design-point assignment.
    pub fn assignment(&self) -> &[PointId] {
        &self.assignment
    }

    /// The design point task `t` runs at.
    pub fn point_of(&self, t: TaskId) -> PointId {
        self.assignment[t.index()]
    }

    /// Total sequential execution time. Order-independent: the sum of the
    /// chosen design points' durations.
    pub fn makespan(&self, g: &TaskGraph) -> Minutes {
        self.order
            .iter()
            .map(|&t| g.duration(t, self.point_of(t)))
            .sum()
    }

    /// Start time of every task in execution order.
    pub fn start_times(&self, g: &TaskGraph) -> Vec<(TaskId, Minutes)> {
        let mut clock = Minutes::ZERO;
        self.order
            .iter()
            .map(|&t| {
                let s = clock;
                clock += g.duration(t, self.point_of(t));
                (t, s)
            })
            .collect()
    }

    /// The discharge profile this schedule presents to the battery:
    /// back-to-back constant-current intervals from `t = 0`.
    pub fn to_profile(&self, g: &TaskGraph) -> LoadProfile {
        profile_of(g, &self.order, &self.assignment)
    }

    /// Battery cost of the schedule under `model`: apparent charge at the
    /// completion instant (the paper's `CalculateBatteryCost`).
    pub fn battery_cost<M: BatteryModel + ?Sized>(
        &self,
        g: &TaskGraph,
        model: &M,
    ) -> MilliAmpMinutes {
        let profile = self.to_profile(g);
        model.apparent_charge(&profile, profile.end())
    }

    /// Charge actually delivered (`Σ I·D`) — the ideal-battery cost.
    pub fn direct_charge(&self, g: &TaskGraph) -> MilliAmpMinutes {
        self.order
            .iter()
            .map(|&t| g.point(t, self.point_of(t)).charge())
            .sum()
    }

    /// Checks the schedule against its graph and an optional deadline.
    ///
    /// # Errors
    ///
    /// Any [`ScheduleError`]; the first problem found is reported.
    pub fn validate(&self, g: &TaskGraph, deadline: Option<Minutes>) -> Result<(), ScheduleError> {
        if self.assignment.len() != g.task_count() {
            return Err(ScheduleError::AssignmentLength {
                expected: g.task_count(),
                found: self.assignment.len(),
            });
        }
        for t in g.task_ids() {
            let p = self.point_of(t);
            if p.index() >= g.point_count() {
                return Err(ScheduleError::PointOutOfRange { task: t, point: p });
            }
        }
        if !batsched_taskgraph::topo::is_topological(g, &self.order) {
            return Err(ScheduleError::NotTopological);
        }
        if let Some(d) = deadline {
            let makespan = self.makespan(g);
            if makespan.value() > d.value() + 1e-9 {
                return Err(ScheduleError::DeadlineViolated {
                    makespan,
                    deadline: d,
                });
            }
        }
        Ok(())
    }

    /// Compact human-readable rendering: `T1@DP5 → T4@DP5 → …`.
    pub fn display<'a>(&'a self, g: &'a TaskGraph) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Schedule, &'a TaskGraph);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (k, &t) in self.0.order.iter().enumerate() {
                    if k > 0 {
                        write!(f, " → ")?;
                    }
                    write!(f, "{}@{}", self.1.name(t), self.0.point_of(t))?;
                }
                Ok(())
            }
        }
        D(self, g)
    }
}

/// Builds the back-to-back discharge profile of running `order` with the
/// task-indexed `assignment`, pre-sized to the exact interval count. The
/// single profile-construction path shared by [`Schedule::to_profile`] and
/// [`battery_cost_of`].
pub fn profile_of(g: &TaskGraph, order: &[TaskId], assignment_by_task: &[PointId]) -> LoadProfile {
    let mut p = LoadProfile::with_capacity(order.len());
    for &t in order {
        let pt = g.point(t, assignment_by_task[t.index()]);
        p.push(pt.duration, pt.current)
            .expect("validated design points are positive-duration");
    }
    p
}

/// Battery cost of running `order` with `assignment` — the free-function
/// form of [`Schedule::battery_cost`] used by tests and baselines that
/// score under an arbitrary [`BatteryModel`]. Returns `(cost, makespan)`.
/// RV-model hot loops should prefer [`EngineCost`], which skips the
/// profile construction and the exponentials entirely.
pub fn battery_cost_of<M: BatteryModel + ?Sized>(
    g: &TaskGraph,
    order: &[TaskId],
    assignment_by_task: &[PointId],
    model: &M,
) -> (MilliAmpMinutes, Minutes) {
    let p = profile_of(g, order, assignment_by_task);
    let end = p.end();
    (model.apparent_charge(&p, end), end)
}

/// A [`SigmaEvaluator`](batsched_battery::eval::SigmaEvaluator) bound to a
/// task graph's `(task, column)` design-point catalogue, bundled with its
/// reusable buffers: the allocation-free, exponential-free replacement for
/// repeated [`battery_cost_of`] calls in schedule-search inner loops.
///
/// The suffix cache inside makes consecutive evaluations of *similar*
/// schedules (one design-point swap, one adjacent transposition) pay only
/// for the changed prefix.
#[derive(Debug, Clone)]
pub struct EngineCost {
    eval: batsched_battery::eval::SigmaEvaluator,
    m: usize,
    entries: Vec<u32>,
    scratch: batsched_battery::eval::SigmaScratch,
}

/// Builds the σ-evaluation engine over `g`'s design-point catalogue. The
/// single definition of the entry scheme: entries are ordered
/// `task-major, column-minor`, so entry id = `task.index() * m + column`.
/// Everything constructing an evaluator for a graph must go through here —
/// a second copy of this mapping that drifted would silently score the
/// wrong design points.
pub fn graph_evaluator(
    g: &TaskGraph,
    model: &batsched_battery::rv::RvModel,
) -> batsched_battery::eval::SigmaEvaluator {
    batsched_battery::eval::SigmaEvaluator::new(
        model,
        g.task_ids()
            .flat_map(|t| g.task(t).points.iter().map(|p| (p.duration, p.current))),
    )
}

/// Catalogue entry id of `(task, column)` in an evaluator built by
/// [`graph_evaluator`] for a graph with `m` design points per task. The
/// only definition of the id formula — everything indexing into a
/// graph evaluator must go through here.
#[inline]
pub fn entry_id(task: TaskId, m: usize, column: PointId) -> u32 {
    (task.index() * m + column.index()) as u32
}

/// σ and makespan of (order, task-indexed assignment) through a graph
/// evaluator — the single map-to-entries-and-evaluate body shared by
/// [`EngineCost::cost`] and the window search's `SearchContext::cost_of`.
pub(crate) fn eval_assignment_cost(
    eval: &batsched_battery::eval::SigmaEvaluator,
    m: usize,
    order: &[TaskId],
    assignment_by_task: &[PointId],
    entries: &mut Vec<u32>,
    scratch: &mut batsched_battery::eval::SigmaScratch,
) -> (MilliAmpMinutes, Minutes) {
    entries.clear();
    entries.extend(
        order
            .iter()
            .map(|&t| entry_id(t, m, assignment_by_task[t.index()])),
    );
    eval.sigma_seq(entries, scratch)
}

impl EngineCost {
    /// Precomputes the engine tables for `g` under `model`.
    pub fn new(g: &TaskGraph, model: &batsched_battery::rv::RvModel) -> Self {
        Self {
            eval: graph_evaluator(g, model),
            m: g.point_count(),
            entries: Vec::with_capacity(g.task_count()),
            scratch: batsched_battery::eval::SigmaScratch::new(),
        }
    }

    /// Whether this engine was built over exactly `g`'s design-point
    /// catalogue (same entry order, bit-equal durations and currents).
    /// Lets a long-lived workspace reuse the engine — and skip the
    /// `entries × terms` exponentials of a rebuild — when the same graph
    /// comes back (the model must be compared separately).
    pub fn catalogue_matches(&self, g: &TaskGraph) -> bool {
        self.m == g.point_count()
            && self.eval.catalogue_matches(
                g.task_ids()
                    .flat_map(|t| g.task(t).points.iter().map(|p| (p.duration, p.current))),
            )
    }

    /// σ and makespan of running `order` with the task-indexed
    /// `assignment`. Matches [`battery_cost_of`] under the same
    /// [`batsched_battery::rv::RvModel`] to ≤ 1e-9 relative error.
    pub fn cost(
        &mut self,
        order: &[TaskId],
        assignment_by_task: &[PointId],
    ) -> (MilliAmpMinutes, Minutes) {
        eval_assignment_cost(
            &self.eval,
            self.m,
            order,
            assignment_by_task,
            &mut self.entries,
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::ideal::CoulombCounter;
    use batsched_battery::rv::RvModel;
    use batsched_battery::units::MilliAmps;
    use batsched_taskgraph::DesignPoint;

    fn dp(current: f64, duration: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(current), Minutes::new(duration))
    }

    fn chain2() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.task("A", vec![dp(100.0, 1.0), dp(40.0, 2.0)]);
        let c = b.task("B", vec![dp(200.0, 3.0), dp(10.0, 6.0)]);
        b.edge(a, c);
        b.build().unwrap()
    }

    #[test]
    fn makespan_and_profile() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(0)]);
        assert_eq!(s.makespan(&g), Minutes::new(5.0));
        let p = s.to_profile(&g);
        assert_eq!(p.len(), 2);
        assert_eq!(p.intervals()[1].start, Minutes::new(2.0));
        assert_eq!(p.intervals()[1].current, MilliAmps::new(200.0));
        assert_eq!(
            s.direct_charge(&g),
            MilliAmpMinutes::new(40.0 * 2.0 + 200.0 * 3.0)
        );
    }

    #[test]
    fn start_times_accumulate() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0), PointId(0)]);
        let st = s.start_times(&g);
        assert_eq!(
            st,
            vec![(TaskId(0), Minutes::ZERO), (TaskId(1), Minutes::new(1.0))]
        );
    }

    #[test]
    fn battery_cost_matches_models() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0), PointId(0)]);
        assert_eq!(
            s.battery_cost(&g, &CoulombCounter::new()),
            s.direct_charge(&g)
        );
        let rv = RvModel::date05();
        assert!(s.battery_cost(&g, &rv).value() > s.direct_charge(&g).value());
        let (c, mk) = battery_cost_of(&g, s.order(), s.assignment(), &rv);
        assert_eq!(c, s.battery_cost(&g, &rv));
        assert_eq!(mk, s.makespan(&g));
    }

    #[test]
    fn validation_catches_everything() {
        let g = chain2();
        // Wrong order.
        let s = Schedule::new(vec![TaskId(1), TaskId(0)], vec![PointId(0), PointId(0)]);
        assert_eq!(
            s.validate(&g, None).unwrap_err(),
            ScheduleError::NotTopological
        );
        // Wrong assignment length.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0)]);
        assert!(matches!(
            s.validate(&g, None).unwrap_err(),
            ScheduleError::AssignmentLength {
                expected: 2,
                found: 1
            }
        ));
        // Bad point id.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(9), PointId(0)]);
        assert!(matches!(
            s.validate(&g, None).unwrap_err(),
            ScheduleError::PointOutOfRange { .. }
        ));
        // Deadline violation.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(1)]);
        assert!(matches!(
            s.validate(&g, Some(Minutes::new(5.0))).unwrap_err(),
            ScheduleError::DeadlineViolated { .. }
        ));
        // All good.
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(0), PointId(0)]);
        assert!(s.validate(&g, Some(Minutes::new(4.0))).is_ok());
    }

    #[test]
    fn display_renders_order_and_points() {
        let g = chain2();
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(0)]);
        assert_eq!(format!("{}", s.display(&g)), "A@DP2 → B@DP1");
    }

    #[test]
    fn serde_round_trip() {
        let s = Schedule::new(vec![TaskId(0), TaskId(1)], vec![PointId(1), PointId(0)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
