//! `batsched-lint` — a dependency-free invariant linter for this
//! workspace.
//!
//! Nine PRs of scheduler-kernel and serving work accumulated invariants
//! that `cargo clippy` cannot see: panics are only safe inside the
//! solver's `catch_unwind` boundary, the sharded cache's locks are taken
//! sequentially and never nested, every wire-derived allocation is capped
//! before it happens, bit-identity modules must never iterate a hash
//! table, and every crate root forbids `unsafe_code`. This crate turns
//! those reviewer-memory rules into CI gates.
//!
//! Design: a comment/string/raw-string-aware lexer ([`lexer`]) feeds a
//! brace-tracking structural pass and a rule registry ([`rules`]); no
//! regex-over-source, no external dependencies, sub-second over the whole
//! workspace. Violations are suppressed only by a machine-checked
//! annotation — `// lint:allow(<rule>): <reason>` trailing the offending
//! line or on the comment block above it — and a suppression that no
//! longer matches a
//! violation is itself an error (stale-allow detection), so the
//! annotation inventory can only shrink.
//!
//! See `docs/LINT.md` for the rule catalogue and a how-to-add-a-rule
//! walkthrough.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use rules::{Finding, META_MALFORMED_ALLOW, META_STALE_ALLOW, RULES};

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Request-serving module: the `panic-path` rule applies.
    pub serving: bool,
    /// Wire/disk decoder module: `uncapped-wire-alloc` applies.
    pub decoder: bool,
    /// Bit-identity kernel / canonical-hash module:
    /// `nondeterministic-iter` applies.
    pub bit_identity: bool,
    /// Crate root (`lib.rs`, `main.rs`, `bin/*.rs`): must carry
    /// `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// `crates/cli` may call `std::process::exit`.
    pub exempt_exit: bool,
}

/// Request-serving modules of `crates/service`: a panic here escapes the
/// solver's `catch_unwind` and kills a connection/router/supervisor
/// thread (PR 6).
const SERVING: [&str; 9] = [
    "crates/service/src/http.rs",
    "crates/service/src/fleet.rs",
    "crates/service/src/service.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/disk.rs",
    "crates/service/src/wire.rs",
    "crates/service/src/wire_bin.rs",
    "crates/service/src/metrics.rs",
    "crates/service/src/trace.rs",
];

/// Modules that decode wire- or disk-derived bytes: allocations sized
/// from decoded values must be visibly capped (PR 8's `terms` DoS fix).
const DECODER: [&str; 4] = [
    "crates/service/src/wire.rs",
    "crates/service/src/wire_bin.rs",
    "crates/service/src/disk.rs",
    "crates/service/src/http.rs",
];

/// Bit-identity kernel and canonical-hash modules (PRs 1–4, 8): hash
/// iteration order would silently break the bit-identity proptests.
const BIT_IDENTITY: [&str; 4] = [
    "crates/core/src/search.rs",
    "crates/battery/src/eval.rs",
    "crates/service/src/wire.rs",
    "crates/service/src/wire_bin.rs",
];

/// Classifies a forward-slash workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let crate_root = rel.ends_with("/src/lib.rs")
        || rel == "src/lib.rs"
        || rel.ends_with("/src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"));
    FileClass {
        serving: SERVING.contains(&rel),
        decoder: DECODER.contains(&rel),
        bit_identity: BIT_IDENTITY.contains(&rel),
        crate_root,
        exempt_exit: rel.starts_with("crates/cli/"),
    }
}

/// Sweep result: findings plus throughput counters.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files: usize,
    pub lines: u64,
}

/// The linter: the rule registry minus any rules disabled through the
/// test hook ([`Linter::disable`]).
#[derive(Debug, Default, Clone)]
pub struct Linter {
    disabled: BTreeSet<String>,
}

impl Linter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Test hook: disables one rule. Returns `false` (and disables
    /// nothing) for a name not in the registry.
    pub fn disable(&mut self, rule: &str) -> bool {
        if RULES.contains(&rule) {
            self.disabled.insert(rule.to_string());
            true
        } else {
            false
        }
    }

    fn enabled(&self, rule: &str) -> bool {
        !self.disabled.contains(rule)
    }

    /// Lints one source text under an explicit classification; `file` is
    /// the label findings carry. Returns findings sorted by line.
    pub fn lint_source(&self, file: &str, class: &FileClass, src: &str) -> Vec<Finding> {
        let lexed = lexer::lex(src);
        let ctx = rules::Ctx::build(src, &lexed);
        let mut raw = Vec::new();
        rules::run_rules(file, class, &ctx, |r| self.enabled(r), &mut raw);

        // Apply suppressions. An allow covers exactly one line of code:
        // its own line when it trails code (`stmt; // lint:allow…`), else
        // the first token-bearing line after it — so a standalone
        // annotation sits above the violation and its reason may wrap
        // over several comment lines. Track use for stale-allow checks.
        let tok_lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        let target_of = |allow_line: u32| -> u32 {
            if tok_lines.binary_search(&allow_line).is_ok() {
                return allow_line;
            }
            let after = tok_lines.partition_point(|&l| l <= allow_line);
            tok_lines.get(after).copied().unwrap_or(allow_line)
        };
        let mut used = vec![false; lexed.allows.len()];
        let mut out: Vec<Finding> = Vec::new();
        for f in raw {
            let mut suppressed = false;
            for (k, a) in lexed.allows.iter().enumerate() {
                if a.rule == f.rule && target_of(a.line) == f.line {
                    used[k] = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                out.push(f);
            }
        }
        for (k, a) in lexed.allows.iter().enumerate() {
            if !RULES.contains(&a.rule.as_str()) {
                out.push(Finding {
                    file: file.to_string(),
                    line: a.line,
                    rule: META_MALFORMED_ALLOW.to_string(),
                    message: format!(
                        "lint:allow names unknown rule `{}` (known: {})",
                        a.rule,
                        RULES.join(", ")
                    ),
                });
            } else if !used[k] && self.enabled(&a.rule) {
                out.push(Finding {
                    file: file.to_string(),
                    line: a.line,
                    rule: META_STALE_ALLOW.to_string(),
                    message: format!(
                        "lint:allow({}) no longer matches a violation on the line it \
                         covers — delete it (reason was: {})",
                        a.rule, a.reason
                    ),
                });
            }
        }
        for (line, msg) in &lexed.allow_errors {
            out.push(Finding {
                file: file.to_string(),
                line: *line,
                rule: META_MALFORMED_ALLOW.to_string(),
                message: msg.clone(),
            });
        }
        out.sort();
        out
    }

    /// Lints one file on disk, classifying it by its path relative to
    /// `root`.
    pub fn lint_file(&self, root: &Path, rel: &str) -> std::io::Result<(Vec<Finding>, u64)> {
        let src = std::fs::read_to_string(root.join(rel))?;
        let class = classify(rel);
        let lines = src.lines().count() as u64;
        Ok((self.lint_source(rel, &class, &src), lines))
    }

    /// Sweeps the workspace rooted at `root`: `src/` plus every
    /// `crates/*/src/` tree (recursively, including `src/bin/`).
    /// `vendor/` shims, `target/`, integration-test dirs and the lint
    /// fixture corpus are outside those trees and never scanned.
    pub fn lint_workspace(&self, root: &Path) -> std::io::Result<Report> {
        let mut rep = Report::default();
        for rel in workspace_files(root)? {
            let (findings, lines) = self.lint_file(root, &rel)?;
            rep.findings.extend(findings);
            rep.files += 1;
            rep.lines += lines;
        }
        rep.findings.sort();
        Ok(rep)
    }
}

/// The deterministic, sorted list of workspace-relative source paths the
/// sweep covers.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut rels: Vec<String> = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let p = entry?.path();
            if p.is_dir() {
                roots.push(p.join("src"));
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, root, &mut rels)?;
        }
    }
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
