//! The Rakhmatov–Vrudhula analytical battery model (ICCAD 2001).
//!
//! This is the cost function of the DATE'05 paper (its equation 1). For a
//! discharge profile with intervals `k` of current `I_k`, start `t_k` and
//! duration `Δ_k`, the charge lost by time `T` is
//!
//! ```text
//! σ(T) = Σ_k I_k · [ Δ_k + 2 Σ_{m=1}^{M} ( e^{−β²m²(T−t_k−Δ_k)} − e^{−β²m²(T−t_k)} ) / (β²m²) ]
//! ```
//!
//! The first term is the charge actually delivered; the series is the
//! *unavailable charge*: ions that have not yet diffused to the electrode.
//! Two properties drive the whole paper:
//!
//! * **rate-capacity effect** — high currents inflate the series term, so a
//!   heavy interval "costs" more than its delivered charge;
//! * **recovery effect** — the series decays exponentially with the time
//!   since the interval ended, so charge drawn *early* is almost free by the
//!   end of the mission while charge drawn *late* is fully penalised.
//!
//! The battery (rated capacity `α`) is empty at the first `T` with
//! `σ(T) ≥ α`.
//!
//! ```
//! use batsched_battery::rv::RvModel;
//! use batsched_battery::profile::LoadProfile;
//! use batsched_battery::units::{MilliAmps, Minutes};
//! use batsched_battery::model::BatteryModel;
//!
//! let model = RvModel::date05();
//! let mut heavy_last = LoadProfile::new();
//! heavy_last.push(Minutes::new(10.0), MilliAmps::new(10.0))?;
//! heavy_last.push(Minutes::new(10.0), MilliAmps::new(500.0))?;
//! let heavy_first = heavy_last.reversed();
//! let end = heavy_last.end();
//! // Running the heavy task first lets the battery recover: lower σ.
//! assert!(
//!     model.apparent_charge(&heavy_first, end).value()
//!         < model.apparent_charge(&heavy_last, end).value()
//! );
//! # Ok::<(), batsched_battery::profile::ProfileError>(())
//! ```

use crate::model::BatteryModel;
use crate::profile::LoadProfile;
use crate::units::{MilliAmpMinutes, Minutes};
use std::fmt;

/// The β parameter used throughout the DATE'05 paper (`min^{-1/2}`).
pub const DATE05_BETA: f64 = 0.273;

/// Number of series terms the paper uses (its equation 1 sums `m = 1..10`).
pub const DATE05_TERMS: usize = 10;

/// Errors raised when constructing an [`RvModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvModelError {
    /// β must be strictly positive and finite.
    InvalidBeta,
    /// At least one series term is required.
    NoTerms,
}

impl fmt::Display for RvModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBeta => write!(f, "beta must be positive and finite"),
            Self::NoTerms => write!(f, "series must keep at least one term"),
        }
    }
}

impl std::error::Error for RvModelError {}

/// Rakhmatov–Vrudhula diffusion model with a truncated series.
///
/// The `β²m²` series coefficients are precomputed once at construction so
/// neither [`RvModel::sigma`] nor the
/// [`SigmaEvaluator`](crate::eval::SigmaEvaluator) recomputes them per
/// term per call. Serialization carries only `beta` and `terms`; the table
/// is rebuilt on deserialization.
#[derive(Debug, Clone)]
pub struct RvModel {
    beta: f64,
    terms: usize,
    /// `coeff[m-1] = β²m²` for `m = 1..=terms`.
    coeff: Vec<f64>,
}

impl PartialEq for RvModel {
    /// Equality on the defining parameters (the coefficient table is
    /// derived from them).
    fn eq(&self, other: &Self) -> bool {
        self.beta == other.beta && self.terms == other.terms
    }
}

impl serde::Serialize for RvModel {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Obj(vec![
            ("beta".into(), serde::Serialize::to_value(&self.beta)),
            ("terms".into(), serde::Serialize::to_value(&self.terms)),
        ])
    }
}

impl serde::Deserialize for RvModel {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::json::Error::custom("expected object for RvModel"))?;
        let beta: f64 = serde::json::field(obj, "beta")?;
        let terms: usize = serde::json::field(obj, "terms")?;
        Self::new(beta, terms).map_err(serde::json::Error::custom_display)
    }
}

impl Default for RvModel {
    /// The paper's configuration: β = 0.273, 10 series terms.
    fn default() -> Self {
        Self::new(DATE05_BETA, DATE05_TERMS).expect("paper parameters are valid")
    }
}

impl RvModel {
    /// Creates a model with the given β (in `min^{-1/2}`) and series length.
    ///
    /// # Errors
    ///
    /// * [`RvModelError::InvalidBeta`] when `beta` is not positive and finite.
    /// * [`RvModelError::NoTerms`] when `terms == 0`.
    pub fn new(beta: f64, terms: usize) -> Result<Self, RvModelError> {
        if !(beta.is_finite() && beta > 0.0) {
            return Err(RvModelError::InvalidBeta);
        }
        if terms == 0 {
            return Err(RvModelError::NoTerms);
        }
        let b2 = beta * beta;
        let coeff = (1..=terms).map(|m| b2 * (m * m) as f64).collect();
        Ok(Self { beta, terms, coeff })
    }

    /// The exact configuration of the DATE'05 paper.
    pub fn date05() -> Self {
        Self::default()
    }

    /// The diffusion parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of series terms kept.
    pub fn terms(&self) -> usize {
        self.terms
    }

    /// The precomputed series coefficients `β²m²` for `m = 1..=terms`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeff
    }

    /// σ(T): apparent charge lost by `at` — delivered charge plus
    /// transiently unavailable charge. Intervals beyond `at` are ignored; an
    /// interval in progress is clipped at `at`.
    pub fn sigma(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        let t = at.value();
        let mut total = 0.0;
        for iv in profile.intervals() {
            let start = iv.start.value();
            if start >= t {
                break;
            }
            let end = iv.end().value().min(t);
            let delta = end - start;
            total += iv.current.value() * (delta + 2.0 * self.series(t - end, t - start));
        }
        MilliAmpMinutes::new(total)
    }

    /// The delivered-charge part of σ at `at` (no diffusion penalty).
    pub fn direct(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        profile.direct_charge_until(at)
    }

    /// The unavailable-charge part of σ at `at` (σ minus delivered charge).
    /// Always non-negative; decays toward zero as the battery rests.
    pub fn unavailable(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        self.sigma(profile, at) - self.direct(profile, at)
    }

    /// `Σ_{m=1..M} (e^{−β²m²·since_end} − e^{−β²m²·since_start}) / (β²m²)`
    /// with `0 <= since_end <= since_start`.
    fn series(&self, since_end: f64, since_start: f64) -> f64 {
        let mut acc = 0.0;
        for &k in &self.coeff {
            acc += ((-k * since_end).exp() - (-k * since_start).exp()) / k;
        }
        acc
    }

    /// σ at every instant in `times` (which must be sorted ascending) in a
    /// single forward pass over the profile.
    ///
    /// Equivalent to mapping [`Self::sigma`] over `times` but
    /// `O((S + K)·M)` instead of `O(S·K·M)`: per-term accumulators for the
    /// completed intervals are decayed incrementally from sample to sample,
    /// so each interval's exponentials are computed once, when it
    /// completes, rather than once per sample. Used by the simulator's
    /// state-of-charge tracing.
    ///
    /// # Panics
    ///
    /// Panics when `times` is not sorted ascending (the incremental fold
    /// cannot rewind; silently continuing would return garbage). Callers
    /// with unordered grids should use
    /// [`BatteryModel::apparent_charge_sweep`], which checks and falls
    /// back to pointwise evaluation.
    pub fn sigma_sweep(&self, profile: &LoadProfile, times: &[Minutes]) -> Vec<MilliAmpMinutes> {
        let intervals = profile.intervals();
        let terms = self.terms;
        // Per-term Σ over completed intervals k of
        //   I_k (e^{−β²m²(T−e_k)} − e^{−β²m²(T−t_k)}),
        // maintained at the current sample instant T.
        let mut acc = vec![0.0f64; terms];
        let mut direct_done = 0.0; // delivered charge of completed intervals
        let mut next = 0usize; // first interval not yet folded into acc
        let mut prev_t = f64::NEG_INFINITY;

        let mut out = Vec::with_capacity(times.len());
        for &at in times {
            let t = at.value();
            assert!(t >= prev_t, "sigma_sweep times must be ascending");
            if t > prev_t && prev_t.is_finite() {
                let gap = t - prev_t;
                for (m, a) in acc.iter_mut().enumerate() {
                    *a *= (-self.coeff[m] * gap).exp();
                }
            }
            prev_t = t;

            // Fold intervals that have completed by `t`.
            while next < intervals.len() && intervals[next].end().value() <= t {
                let iv = &intervals[next];
                let (start, end, i) = (iv.start.value(), iv.end().value(), iv.current.value());
                for (m, a) in acc.iter_mut().enumerate() {
                    let k = self.coeff[m];
                    *a += i * ((-k * (t - end)).exp() - (-k * (t - start)).exp());
                }
                direct_done += i * (end - start);
                next += 1;
            }

            // At most one interval is in progress at `t`.
            let mut sigma = direct_done;
            for (m, a) in acc.iter().enumerate() {
                sigma += 2.0 * a / self.coeff[m];
            }
            if next < intervals.len() {
                let iv = &intervals[next];
                let start = iv.start.value();
                if start < t {
                    let i = iv.current.value();
                    sigma += i * (t - start);
                    for &k in &self.coeff {
                        sigma += 2.0 * i * (1.0 - (-k * (t - start)).exp()) / k;
                    }
                }
            }
            out.push(MilliAmpMinutes::new(sigma));
        }
        out
    }

    /// Upper bound on the truncation error of [`Self::sigma`] at `at`: the
    /// tail `Σ_{m>M} 2 I_k / (β² m²)` summed over active intervals, using
    /// `Σ_{m>M} 1/m² < 1/M`.
    pub fn truncation_bound(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        let b2 = self.beta * self.beta;
        let tail = 1.0 / self.terms as f64;
        let sum_i: f64 = profile
            .intervals()
            .iter()
            .filter(|iv| iv.start.value() < at.value())
            .map(|iv| iv.current.value())
            .sum();
        MilliAmpMinutes::new(2.0 * sum_i * tail / b2)
    }
}

impl BatteryModel for RvModel {
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        self.sigma(profile, at)
    }

    fn name(&self) -> &'static str {
        "rakhmatov-vrudhula"
    }

    /// Incremental single-pass sweep when `times` is ascending; falls back
    /// to pointwise evaluation otherwise, preserving the trait's
    /// order-insensitive contract.
    fn apparent_charge_sweep(
        &self,
        profile: &LoadProfile,
        times: &[Minutes],
    ) -> Vec<MilliAmpMinutes> {
        if times.windows(2).all(|w| w[0].value() <= w[1].value()) {
            self.sigma_sweep(profile, times)
        } else {
            times.iter().map(|&t| self.sigma(profile, t)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MilliAmps;

    fn min(v: f64) -> Minutes {
        Minutes::new(v)
    }
    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    fn single(duration: f64, current: f64) -> LoadProfile {
        LoadProfile::from_steps([(min(duration), ma(current))]).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert_eq!(
            RvModel::new(0.0, 10).unwrap_err(),
            RvModelError::InvalidBeta
        );
        assert_eq!(
            RvModel::new(-1.0, 10).unwrap_err(),
            RvModelError::InvalidBeta
        );
        assert_eq!(
            RvModel::new(f64::NAN, 10).unwrap_err(),
            RvModelError::InvalidBeta
        );
        assert_eq!(RvModel::new(0.5, 0).unwrap_err(), RvModelError::NoTerms);
        let m = RvModel::new(0.5, 7).unwrap();
        assert_eq!(m.beta(), 0.5);
        assert_eq!(m.terms(), 7);
    }

    #[test]
    fn date05_defaults() {
        let m = RvModel::date05();
        assert_eq!(m.beta(), DATE05_BETA);
        assert_eq!(m.terms(), DATE05_TERMS);
    }

    #[test]
    fn sigma_exceeds_direct_charge_at_profile_end() {
        let m = RvModel::date05();
        let p = single(10.0, 100.0);
        let sigma = m.sigma(&p, p.end());
        assert!(sigma.value() > p.direct_charge().value());
    }

    #[test]
    fn sigma_decays_to_direct_charge_long_after_the_load() {
        let m = RvModel::date05();
        let p = single(10.0, 100.0);
        let far = min(10_000.0);
        let sigma = m.sigma(&p, far).value();
        let direct = p.direct_charge().value();
        assert!(
            (sigma - direct).abs() < 1e-6,
            "sigma {sigma} vs direct {direct}"
        );
    }

    #[test]
    fn unavailable_charge_matches_hand_computation() {
        // Single interval [0, Δ] evaluated at T = Δ:
        // unavailable = 2·I·Σ (1 − e^{−β²m²Δ}) / (β²m²).
        let m = RvModel::date05();
        let (i, d) = (519.0, 11.2);
        let p = single(d, i);
        let b2 = DATE05_BETA * DATE05_BETA;
        let mut expect = 0.0;
        for mm in 1..=10 {
            let k = b2 * (mm * mm) as f64;
            expect += (1.0 - (-k * d).exp()) / k;
        }
        expect *= 2.0 * i;
        let got = m.unavailable(&p, min(d)).value();
        assert!((got - expect).abs() < 1e-9, "got {got}, expected {expect}");
        // Magnitude sanity (hand value ≈ 15.4 k mA·min for 519 mA / 11.2 min).
        assert!((got - 15_425.0).abs() < 75.0, "got {got}");
    }

    #[test]
    fn early_heavy_load_costs_less_than_late_heavy_load() {
        let m = RvModel::date05();
        let late = LoadProfile::from_steps([(min(20.0), ma(10.0)), (min(5.0), ma(400.0))]).unwrap();
        let early = late.reversed();
        let t = late.end();
        let s_late = m.sigma(&late, t).value();
        let s_early = m.sigma(&early, t).value();
        assert!(
            s_early < s_late,
            "early {s_early} should beat late {s_late}"
        );
        // Both still dominate the direct charge.
        assert!(s_early > late.direct_charge().value());
    }

    #[test]
    fn sigma_is_monotone_while_under_load() {
        let m = RvModel::date05();
        let p = single(30.0, 250.0);
        let mut prev = -1.0;
        for k in 0..=30 {
            let s = m.sigma(&p, min(k as f64)).value();
            assert!(s >= prev, "sigma must not decrease under load");
            prev = s;
        }
    }

    #[test]
    fn sigma_decreases_during_rest() {
        let m = RvModel::date05();
        let p = single(10.0, 250.0);
        let at_end = m.sigma(&p, min(10.0)).value();
        let rested = m.sigma(&p, min(20.0)).value();
        assert!(
            rested < at_end,
            "recovery must lower sigma: {rested} vs {at_end}"
        );
        assert!(rested > p.direct_charge().value() - 1e-9);
    }

    #[test]
    fn sigma_scales_linearly_with_current() {
        let m = RvModel::date05();
        let p1 = single(10.0, 100.0);
        let p2 = single(10.0, 300.0);
        let t = min(10.0);
        let s1 = m.sigma(&p1, t).value();
        let s2 = m.sigma(&p2, t).value();
        assert!((s2 - 3.0 * s1).abs() < 1e-9);
    }

    #[test]
    fn sigma_ignores_intervals_beyond_t_and_clips_in_progress() {
        let m = RvModel::date05();
        let p = LoadProfile::from_steps([(min(10.0), ma(100.0)), (min(10.0), ma(400.0))]).unwrap();
        let only_first = single(10.0, 100.0);
        let s_clip = m.sigma(&p, min(10.0)).value();
        let s_first = m.sigma(&only_first, min(10.0)).value();
        assert!((s_clip - s_first).abs() < 1e-12);

        // Clipping mid-interval equals a shortened interval.
        let p_half = single(5.0, 100.0);
        let s_half = m.sigma(&single(10.0, 100.0), min(5.0)).value();
        assert!((s_half - m.sigma(&p_half, min(5.0)).value()).abs() < 1e-12);
    }

    #[test]
    fn more_terms_increase_sigma_toward_the_true_series() {
        let p = single(10.0, 100.0);
        let t = min(10.0);
        let mut prev = 0.0;
        for terms in [1usize, 2, 5, 10, 50, 200] {
            let m = RvModel::new(DATE05_BETA, terms).unwrap();
            let s = m.sigma(&p, t).value();
            assert!(s > prev, "series terms are positive at T = end");
            prev = s;
        }
        // The 10-term value is within the truncation bound of the 200-term one.
        let m10 = RvModel::new(DATE05_BETA, 10).unwrap();
        let m200 = RvModel::new(DATE05_BETA, 200).unwrap();
        let gap = m200.sigma(&p, t).value() - m10.sigma(&p, t).value();
        assert!(gap <= m10.truncation_bound(&p, t).value());
    }

    #[test]
    fn larger_beta_means_faster_diffusion_and_less_penalty() {
        let p = single(10.0, 100.0);
        let t = min(10.0);
        let slow = RvModel::new(0.1, 10).unwrap().sigma(&p, t).value();
        let fast = RvModel::new(1.0, 10).unwrap().sigma(&p, t).value();
        assert!(fast < slow);
    }

    #[test]
    fn lifetime_found_and_refined() {
        let m = RvModel::date05();
        // 100 mA constant load, capacity 3000 mA·min. An ideal battery lasts
        // 30 min; hand evaluation of sigma gives sigma(5) ~ 2648 and
        // sigma(10) ~ 3850, so the RV battery dies between 5 and 10 min.
        let p = single(100.0, 100.0);
        let lt = m
            .lifetime(&p, MilliAmpMinutes::new(3000.0))
            .expect("battery must die");
        assert!(lt.value() < 10.0, "death after sigma(10) > 3000: {lt}");
        assert!(lt.value() > 5.0, "death before sigma(5) < 3000: {lt}");
        assert!(
            lt.value() < 30.0,
            "rate-capacity effect beats the ideal 30 min"
        );
        // At the reported instant, sigma is at capacity (within tolerance).
        let s = m.sigma(&p, lt).value();
        assert!((s - 3000.0).abs() < 1.0, "sigma at death {s}");
    }

    #[test]
    fn lifetime_none_when_capacity_suffices() {
        let m = RvModel::date05();
        let p = single(10.0, 10.0);
        assert_eq!(m.lifetime(&p, MilliAmpMinutes::new(1e9)), None);
    }

    #[test]
    fn empty_profile_has_zero_sigma() {
        let m = RvModel::date05();
        let p = LoadProfile::new();
        assert_eq!(m.sigma(&p, min(100.0)).value(), 0.0);
        assert_eq!(m.lifetime(&p, MilliAmpMinutes::new(1.0)), None);
    }

    #[test]
    fn coefficients_are_beta2_m2() {
        let m = RvModel::new(0.5, 4).unwrap();
        let expect = [0.25, 1.0, 2.25, 4.0];
        for (a, b) in m.coefficients().iter().zip(expect) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn sweep_matches_pointwise_sigma() {
        let m = RvModel::date05();
        let mut p = LoadProfile::new();
        p.push(min(5.0), ma(300.0)).unwrap();
        p.push_rest(min(3.0)).unwrap();
        p.push(min(2.0), ma(800.0)).unwrap();
        p.push(min(10.0), ma(40.0)).unwrap();
        // Sample boundaries, interiors of intervals, gaps, and beyond.
        let times: Vec<Minutes> = [0.0, 0.1, 2.5, 5.0, 6.5, 8.0, 9.0, 10.0, 15.0, 20.0, 60.0]
            .iter()
            .map(|&t| min(t))
            .collect();
        let swept = m.sigma_sweep(&p, &times);
        for (at, got) in times.iter().zip(&swept) {
            let want = m.sigma(&p, *at).value();
            assert!(
                (got.value() - want).abs() <= 1e-9 * want.max(1.0),
                "sweep at {at}: {got} vs {want}"
            );
        }
        // Repeated instants are allowed.
        let twice = m.sigma_sweep(&p, &[min(5.0), min(5.0)]);
        assert_eq!(twice[0], twice[1]);
    }

    #[test]
    fn trait_sweep_tolerates_unsorted_grids() {
        // The generic trait contract is order-insensitive: unsorted grids
        // take the pointwise fallback instead of corrupting the fold.
        let m = RvModel::date05();
        let p = single(10.0, 250.0);
        let grid = [min(10.0), min(2.0), min(7.0)];
        let swept = m.apparent_charge_sweep(&p, &grid);
        for (at, got) in grid.iter().zip(&swept) {
            assert_eq!(got.value(), m.sigma(&p, *at).value());
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn direct_sweep_rejects_unsorted_grids() {
        let m = RvModel::date05();
        let p = single(10.0, 250.0);
        m.sigma_sweep(&p, &[min(10.0), min(2.0)]);
    }

    #[test]
    fn serde_round_trip_rebuilds_coefficients() {
        let m = RvModel::new(0.41, 7).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: RvModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.coefficients(), m.coefficients());
        assert!(serde_json::from_str::<RvModel>("{\"beta\":-1.0,\"terms\":3}").is_err());
    }

    #[test]
    fn rest_gaps_between_bursts_recover_capacity() {
        let m = RvModel::date05();
        let packed =
            LoadProfile::from_steps([(min(5.0), ma(300.0)), (min(5.0), ma(300.0))]).unwrap();
        let mut spaced = LoadProfile::new();
        spaced.push(min(5.0), ma(300.0)).unwrap();
        spaced.push_rest(min(30.0)).unwrap();
        spaced.push(min(5.0), ma(300.0)).unwrap();
        let s_packed = m.sigma(&packed, packed.end()).value();
        let s_spaced = m.sigma(&spaced, spaced.end()).value();
        assert!(
            s_spaced < s_packed,
            "a rest before the final burst lets the first burst's penalty decay"
        );
    }
}
