//! A synthetic DVS workload: generate a fork-join task graph in the style
//! of the paper's G3, schedule it under a sweep of deadlines, and compare
//! every algorithm in the workspace.
//!
//! Run with: `cargo run --example fork_join_dvs`

use batsched::baselines::{
    ChowdhuryScaling, KhanVemuri, RakhmatovDp, RandomSearch, Scheduler, SimulatedAnnealing,
};
use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::taskgraph::analysis::{max_makespan, min_makespan};
use batsched::taskgraph::synth::{fork_join, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two fork stages of widths 4 and 3 — 10 tasks, 5 design points each,
    // synthesised with the paper's G3 voltage-scaling factors.
    let mut rng = StdRng::seed_from_u64(2005);
    let graph = fork_join(&[4, 3], &TaskParams::default(), &mut rng)?;
    println!(
        "fork-join workload: {} tasks, {} edges, makespan range [{:.1}, {:.1}] min",
        graph.task_count(),
        graph.edge_count(),
        min_makespan(&graph).value(),
        max_makespan(&graph).value()
    );

    let model = RvModel::date05();
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(KhanVemuri::paper()),
        Box::new(RakhmatovDp::default()),
        Box::new(ChowdhuryScaling),
        Box::new(SimulatedAnnealing {
            steps: 10_000,
            ..Default::default()
        }),
        Box::new(RandomSearch::default()),
    ];

    // Sweep the deadline from barely feasible to fully relaxed.
    let lo = min_makespan(&graph).value();
    let hi = max_makespan(&graph).value();
    print!("{:>24}", "deadline ->");
    let deadlines: Vec<f64> = (1..=4).map(|k| lo + (hi - lo) * k as f64 / 4.0).collect();
    for d in &deadlines {
        print!(" {d:>9.1}");
    }
    println!();

    for algo in &algos {
        print!("{:>24}", algo.name());
        for &d in &deadlines {
            match algo.schedule(&graph, Minutes::new(d)) {
                Ok(s) => {
                    s.validate(&graph, Some(Minutes::new(d)))?;
                    print!(" {:>9.0}", s.battery_cost(&graph, &model).value());
                }
                Err(_) => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    println!("\n(battery σ in mA·min; smaller is better; every schedule validated against");
    println!(" the precedence constraints and its deadline)");
    Ok(())
}
