//! Per-task implementation options ("design points").
//!
//! A design point is one way to run a task: a voltage/frequency pair on a
//! DVS processor, or one bitstream variant on an FPGA. Each carries the
//! task's execution time and the *platform-level* average current (CPU +
//! memory + display, per the paper's §1 assumption that peripheral costs are
//! folded into the task).

use batsched_battery::units::{Energy, MilliAmpMinutes, MilliAmps, Minutes, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One implementation option for a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Execution time of the task at this design point.
    pub duration: Minutes,
    /// Average platform current while the task runs at this design point.
    pub current: MilliAmps,
    /// Supply voltage (normalised; only ratios matter). Used by the
    /// true-energy metric; the charge metric ignores it.
    pub voltage: Volts,
}

impl DesignPoint {
    /// Creates a design point with unit voltage.
    pub fn new(current: MilliAmps, duration: Minutes) -> Self {
        Self {
            duration,
            current,
            voltage: Volts::new(1.0),
        }
    }

    /// Creates a design point with an explicit supply voltage.
    pub fn with_voltage(current: MilliAmps, duration: Minutes, voltage: Volts) -> Self {
        Self {
            duration,
            current,
            voltage,
        }
    }

    /// Charge drawn if the task runs to completion here (`I·D`, mA·min).
    pub fn charge(&self) -> MilliAmpMinutes {
        self.current * self.duration
    }

    /// `true` when duration and current are finite and positive / non-negative.
    pub fn is_valid(&self) -> bool {
        self.duration.is_finite()
            && self.duration.value() > 0.0
            && self.current.is_finite()
            && self.current.is_non_negative()
            && self.voltage.is_finite()
            && self.voltage.value() > 0.0
    }

    /// Energy under the chosen metric.
    pub fn energy(&self, metric: EnergyMetric) -> Energy {
        match metric {
            EnergyMetric::Charge => Energy::new(self.current.value() * self.duration.value()),
            EnergyMetric::TrueEnergy => {
                Energy::new(self.current.value() * self.voltage.value() * self.duration.value())
            }
        }
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} @ {:.1}", self.current, self.duration)
    }
}

/// Which notion of "energy" weight-based heuristics should use.
///
/// The paper defines `En = Σ I·V·D` in §4 but its `CalculateFactors`
/// pseudocode (Fig. 2) computes `Σ I·D`; both are provided. `Charge` is the
/// default because the battery cost σ is itself a charge (mA·min).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EnergyMetric {
    /// `I·D` (mA·min) — matches Fig. 2's `CalculateFactors`.
    #[default]
    Charge,
    /// `I·V·D` — matches the §4 prose definition of ENR.
    TrueEnergy,
}

/// Removes design points that are dominated (some other point is no slower
/// *and* draws no more current) and sorts the survivors by ascending
/// duration. The result satisfies the paper's matrix conventions: durations
/// ascending, currents (weakly) descending.
pub fn pareto_filter(mut points: Vec<DesignPoint>) -> Vec<DesignPoint> {
    points.retain(|p| p.is_valid());
    points.sort_by(|a, b| {
        batsched_battery::units::total_cmp(a.duration.value(), b.duration.value()).then(
            batsched_battery::units::total_cmp(a.current.value(), b.current.value()),
        )
    });
    let mut kept: Vec<DesignPoint> = Vec::with_capacity(points.len());
    for p in points {
        // Sorted by duration: p is dominated iff some kept point draws <= current.
        if kept
            .last()
            .is_none_or(|k| p.current.value() < k.current.value())
        {
            kept.push(p);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(current: f64, duration: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(current), Minutes::new(duration))
    }

    #[test]
    fn charge_and_energy() {
        let p =
            DesignPoint::with_voltage(MilliAmps::new(100.0), Minutes::new(2.0), Volts::new(0.5));
        assert_eq!(p.charge(), MilliAmpMinutes::new(200.0));
        assert_eq!(p.energy(EnergyMetric::Charge).value(), 200.0);
        assert_eq!(p.energy(EnergyMetric::TrueEnergy).value(), 100.0);
    }

    #[test]
    fn validity() {
        assert!(
            dp(0.0, 1.0).is_valid(),
            "zero current is a legal idle point"
        );
        assert!(!dp(-1.0, 1.0).is_valid());
        assert!(!dp(1.0, 0.0).is_valid());
        assert!(!dp(f64::NAN, 1.0).is_valid());
        let bad_v = DesignPoint::with_voltage(MilliAmps::new(1.0), Minutes::new(1.0), Volts::ZERO);
        assert!(!bad_v.is_valid());
    }

    #[test]
    fn pareto_filter_keeps_the_frontier() {
        let pts = vec![
            dp(100.0, 5.0),
            dp(120.0, 6.0), // dominated: slower and hungrier than (100, 5)
            dp(50.0, 8.0),
            dp(50.0, 9.0), // dominated by (50, 8)
            dp(20.0, 12.0),
        ];
        let kept = pareto_filter(pts);
        let currents: Vec<f64> = kept.iter().map(|p| p.current.value()).collect();
        assert_eq!(currents, vec![100.0, 50.0, 20.0]);
        // Output satisfies the paper's conventions.
        for w in kept.windows(2) {
            assert!(w[0].duration.value() < w[1].duration.value());
            assert!(w[0].current.value() > w[1].current.value());
        }
    }

    #[test]
    fn pareto_filter_drops_invalid_points() {
        let kept = pareto_filter(vec![dp(f64::NAN, 1.0), dp(10.0, -2.0)]);
        assert!(kept.is_empty());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", dp(917.0, 7.3)), "917 mA @ 7.3 min");
    }
}
