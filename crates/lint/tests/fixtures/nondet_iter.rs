//! nondeterministic-iter fixture: linted under a bit-identity
//! classification.
use std::collections::BTreeMap;
use std::collections::HashMap;

fn bad_hash(xs: &[(u64, u64)]) -> HashMap<u64, u64> {
    xs.iter().copied().collect()
}

fn ok_btree(xs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
    xs.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_may_hash() {
        let _ = HashSet::<u32>::new();
    }
}
