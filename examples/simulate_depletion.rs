//! Execute a schedule on platforms the paper abstracts away: a DVS
//! processor with voltage-switch latency and an FPGA that reloads a
//! bitstream between tasks — and watch a marginal battery die mid-mission.
//!
//! Run with: `cargo run --example simulate_depletion`

use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::sim::{Platform, SimEvent, Simulator};
use batsched::taskgraph::paper::g3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = g3();
    let deadline = Minutes::new(230.0);
    let plan = schedule(&graph, deadline, &SchedulerConfig::paper())?;
    let model = RvModel::date05();
    println!("plan: {}\n", plan.schedule.display(&graph));

    // 1. The paper's idealised platform vs platforms with switch overheads.
    println!("== platform overhead sensitivity ==");
    println!("{:>28} {:>10} {:>10}", "platform", "makespan", "sigma");
    let capacity = MilliAmpMinutes::new(40_000.0);
    for (name, platform) in [
        ("ideal (paper)", Platform::paper()),
        (
            "DVS, 0.1 min/level @ 80 mA",
            Platform::dvs(Minutes::new(0.1), MilliAmps::new(80.0)),
        ),
        (
            "FPGA, 0.5 min reconfig @ 150 mA",
            Platform::fpga(Minutes::new(0.5), MilliAmps::new(150.0)),
        ),
    ] {
        let sim = Simulator {
            platform,
            capacity,
            deadline: Some(deadline),
            soc_samples: 32,
        };
        let r = sim.run(&graph, &plan.schedule, &model);
        println!(
            "{name:>28} {:>10.1} {:>10.0}{}",
            r.makespan.value(),
            r.final_sigma.value(),
            if r.success { "" } else { "   <- FAILS" }
        );
    }

    // 2. Deplete a marginal battery and show the event log tail.
    println!("\n== marginal battery (14,000 mA·min) ==");
    let sim = Simulator::paper(MilliAmpMinutes::new(14_000.0), Some(deadline));
    let r = sim.run(&graph, &plan.schedule, &model);
    println!("verdict: {r}\n");
    for e in r
        .events
        .iter()
        .rev()
        .take(6)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        match e {
            SimEvent::TaskCompleted { task, at, sigma } => println!(
                "  {:>6.1} min  completed {:<4} (sigma = {:.0})",
                at.value(),
                graph.name(*task),
                sigma.value()
            ),
            SimEvent::TaskStarted { task, at } => {
                println!("  {:>6.1} min  started   {}", at.value(), graph.name(*task))
            }
            SimEvent::BatteryDepleted { at } => {
                println!("  {:>6.1} min  BATTERY DEPLETED", at.value())
            }
            other => println!("  {other:?}"),
        }
    }

    // 3. State-of-charge trace (CSV head) for plotting.
    println!("\nstate-of-charge CSV (first 5 rows):");
    for line in r.soc_csv().lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
