//! Scaling sweeps: how the algorithm's runtime grows with the task count
//! `n` and the design-point count `m` on layered random DAGs.

use batsched_battery::units::Minutes;
use batsched_core::{schedule, SchedulerConfig};
use batsched_taskgraph::analysis::max_makespan;
use batsched_taskgraph::synth::{layered, Rounding, ScalingScheme, TaskParams};
use batsched_taskgraph::TaskGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn params_with_m(m: usize) -> TaskParams {
    // Evenly spaced factors from 1.0 down to 0.33, m of them.
    let factors: Vec<f64> = (0..m)
        .map(|j| 1.0 - 0.67 * j as f64 / (m - 1).max(1) as f64)
        .collect();
    TaskParams {
        current_range: (100.0, 900.0),
        duration_range: (2.0, 12.0),
        factors,
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::PAPER,
    }
}

fn graph(n_layers: usize, width: usize, m: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    layered(n_layers, width, 0.35, &params_with_m(m), &mut rng).expect("valid generator config")
}

/// A deadline with moderate slack: 70% of the all-lean makespan.
fn deadline_for(g: &TaskGraph) -> Minutes {
    Minutes::new(max_makespan(g).value() * 0.7)
}

fn bench_scale_tasks(c: &mut Criterion) {
    let cfg = SchedulerConfig::paper();
    let mut group = c.benchmark_group("scale_task_count_m5");
    group.sample_size(10);
    for (layers, width) in [(5usize, 2usize), (5, 4), (10, 4), (10, 8)] {
        let g = graph(layers, width, 5, 42);
        let d = deadline_for(&g);
        group.bench_with_input(BenchmarkId::from_parameter(g.task_count()), &g, |b, g| {
            b.iter(|| black_box(schedule(g, d, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_scale_points(c: &mut Criterion) {
    let cfg = SchedulerConfig::paper();
    let mut group = c.benchmark_group("scale_point_count_n20");
    group.sample_size(10);
    for m in [2usize, 4, 6, 8] {
        let g = graph(5, 4, m, 7);
        let d = deadline_for(&g);
        group.bench_with_input(BenchmarkId::from_parameter(m), &g, |b, g| {
            b.iter(|| black_box(schedule(g, d, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale_tasks, bench_scale_points);
criterion_main!(benches);
