//! A minimal HTTP/1.1 frontend on `std::net::TcpListener` — no external
//! dependencies, persistent connections (`Connection: keep-alive`).
//!
//! Routes:
//!
//! * `POST /v1/schedule` — body is one request document, JSON by default
//!   or the binary wire format when `Content-Type:
//!   application/x-batsched-bin` is declared (an unknown media type is a
//!   typed 415 that keeps the connection alive); `Accept:
//!   application/x-batsched-bin` asks for the 200 response in binary
//!   (typed errors stay JSON). Answers `200` (with `X-Cache: hit|miss`),
//!   `400` for client errors, `503` when the queue is full, `500` for
//!   internal failures;
//! * `GET /v1/stats` — the service's counters as JSON;
//! * `GET /v1/metrics` — counters, gauges and latency histograms in
//!   Prometheus text exposition format;
//! * `GET /healthz` — liveness probe: answers 200 whenever the process
//!   can serve HTTP at all;
//! * `GET /readyz` — readiness probe: 503 (with the reasons) while the
//!   disk breaker is open, the worker pool is below target, or shutdown
//!   has begun;
//! * `POST /v1/shutdown` — acknowledges, then stops the acceptor (the
//!   owner's [`HttpServer::wait`] returns so it can drain the service).
//!
//! Every request on `/v1/schedule` carries a trace id: a client-supplied
//! `X-Request-Id` (sane ones are echoed verbatim on the response,
//! including typed errors) or one generated from the body's content hash
//! plus a monotonic sequence. When the service was started with a span
//! log, completing the request emits one structured JSON line with the
//! full stage timing breakdown (see [`crate::trace::Span`]).
//!
//! Each accepted connection runs a request loop: HTTP/1.1 connections are
//! kept alive by default (HTTP/1.0 ones only on an explicit
//! `Connection: keep-alive`), bounded by
//! [`ServiceConfig::max_requests_per_conn`] and a
//! [`ServiceConfig::idle_timeout`] between requests (defaults
//! [`MAX_REQUESTS_PER_CONNECTION`] and [`IDLE_TIMEOUT`]).
//! Framing is strict, because on a shared connection a parsing
//! slip desynchronises every later request: premature EOF anywhere in a
//! request, a duplicate/conflicting `Content-Length` and any
//! `Transfer-Encoding` are answered with a typed error and the connection
//! is closed — the daemon never guesses where the next request starts.
//!
//! The acceptor polls a non-blocking listener so shutdown needs no
//! self-connection trick; each accepted connection is handled on its own
//! thread (the worker pool, not the connection count, bounds solving
//! concurrency — the queue provides the backpressure).

#[cfg(doc)]
use crate::service::ServiceConfig;
use crate::service::{Disposition, Service};
use crate::trace::{self, Span};
use crate::wire::{ErrorResponse, ScheduleResponse};
use crate::wire_bin::{self, WireFormat};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request body (an n=50, m=8 instance is ~60 KB; this
/// leaves two orders of magnitude of headroom without letting one client
/// balloon memory).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Largest accepted request head (request line + headers). Everything a
/// connection can make the daemon buffer is capped: head lines are read
/// through a shrinking byte budget, so a client streaming newline-free
/// garbage cannot grow memory past it.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Default for [`ServiceConfig::max_requests_per_conn`]: requests served
/// on one connection before the daemon closes it (announced with
/// `Connection: close` on the final response). Bounds how long one client
/// can monopolise a connection thread.
pub const MAX_REQUESTS_PER_CONNECTION: usize = 1024;

/// Default for [`ServiceConfig::idle_timeout`]: how long a kept-alive
/// connection may sit idle between requests before the daemon closes it.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a framing-violation close waits for the peer to take the
/// typed error response before closing anyway (see [`linger_close`]).
const LINGER_TIMEOUT: Duration = Duration::from_millis(500);

pub(crate) const ACCEPT_POLL: Duration = Duration::from_millis(15);
/// Poll granularity while waiting at a request boundary — keeps idle
/// connections responsive to daemon shutdown without busy-waiting.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(100);
/// Per-read timeout once a request has started arriving.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running HTTP frontend bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections against `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(service: Arc<Service>, addr: &str) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("batsched-http-accept".into())
            .spawn(move || accept_loop(&listener, &service, &flag))?;
        Ok(HttpServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the acceptor to stop after its current poll tick.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the acceptor exits — either [`Self::stop`] was called
    /// or a client hit `POST /v1/shutdown`.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, shutdown: &Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let flag = Arc::clone(shutdown);
                if let Ok(h) = std::thread::Builder::new()
                    .name("batsched-http-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &service, &flag);
                    })
                {
                    conns.push(h);
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap finished connections here too: an idle or
                // slow-trickle workload otherwise accumulates exited
                // JoinHandles until the next successful accept.
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Why a connection's request loop ends.
enum LoopExit {
    /// Peer closed (or went idle past the timeout) at a request boundary.
    CleanClose,
    /// This response announced `Connection: close`; close after writing.
    AnnouncedClose,
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Small responses on a kept-alive connection: without NODELAY, Nagle
    // batches the next response behind the previous ACK.
    stream.set_nodelay(true)?;
    let (idle_timeout, max_requests) = service.http_limits();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut served = 0usize;

    loop {
        // Wait at the request boundary: EOF or idle timeout here is a
        // clean close, not an error. Poll in short read-timeout ticks so
        // a daemon shutdown doesn't wait out the whole idle window.
        let mut idled = Duration::ZERO;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            stream.set_read_timeout(Some(IDLE_POLL))?;
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // peer closed between requests
                Ok(_) => break,          // first bytes of the next request
                Err(e) if is_timeout(&e) => {
                    idled += IDLE_POLL;
                    if idled >= idle_timeout {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // A request is arriving: per-read timeout from here on. The
        // request's end-to-end clock starts at its first byte.
        stream.set_read_timeout(Some(IO_TIMEOUT))?;

        served += 1;
        let started = Instant::now();
        let request = read_request(&mut reader);
        let read_us = started.elapsed().as_micros() as u64;
        let wants_more = matches!(&request, Ok(req) if req.keep_alive)
            && served < max_requests
            && !shutdown.load(Ordering::SeqCst);

        let exit = serve_one(
            request,
            &mut stream,
            service,
            shutdown,
            wants_more,
            started,
            read_us,
        )?;
        // Continue the loop only when both sides agreed to keep going.
        if matches!(exit, LoopExit::AnnouncedClose) || !wants_more {
            return Ok(());
        }
    }
}

/// Lingering close for responses that reject a request mid-read
/// (oversized head, malformed framing): the socket still holds unread
/// request bytes, and closing with pending input makes the kernel send
/// RST — which can destroy the in-flight typed error before the peer
/// reads it. Half-close the write side (response and FIN go out in
/// order), then drain and discard input until the peer closes or a
/// short deadline passes, so the error response reliably survives.
fn linger_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let deadline = Instant::now() + LINGER_TIMEOUT;
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => break, // peer saw the FIN and closed
            Ok(_) => {}     // discarding the rejected request's tail
            Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Answers one parsed (or failed) request. Framing failures always close
/// the connection: after a malformed head or a short body the next
/// request's start is unknowable, and guessing would hand one client's
/// request to another's response.
fn serve_one(
    request: Result<Request, RequestError>,
    stream: &mut TcpStream,
    service: &Arc<Service>,
    shutdown: &Arc<AtomicBool>,
    keep_alive: bool,
    started: Instant,
    read_us: u64,
) -> io::Result<LoopExit> {
    let req = match request {
        Ok(req) => req,
        Err(RequestError::TooLarge) => {
            write_response(
                stream,
                413,
                "Payload Too Large",
                &ErrorResponse::new("too_large", "request head or body exceeds the size limit")
                    .to_json(),
                &[],
                false,
            )?;
            linger_close(stream);
            return Ok(LoopExit::AnnouncedClose);
        }
        Err(RequestError::Malformed(msg)) => {
            write_response(
                stream,
                400,
                "Bad Request",
                &ErrorResponse::new("bad_http", msg).to_json(),
                &[],
                false,
            )?;
            linger_close(stream);
            return Ok(LoopExit::AnnouncedClose);
        }
        Err(RequestError::Unsupported(msg)) => {
            write_response(
                stream,
                501,
                "Not Implemented",
                &ErrorResponse::new("unsupported_transfer_encoding", msg).to_json(),
                &[],
                false,
            )?;
            linger_close(stream);
            return Ok(LoopExit::AnnouncedClose);
        }
        Err(RequestError::Io(e)) => return Err(e),
    };

    // A sane client-supplied X-Request-Id is echoed on every response,
    // typed errors included, so the caller can correlate across retries.
    let echo_header = req
        .request_id
        .as_ref()
        .map(|id| format!("X-Request-Id: {id}"));
    let echo: Vec<&str> = echo_header.as_deref().into_iter().collect();

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/schedule") => {
            // Content negotiation: the declared Content-Type picks the
            // request decoder. An unknown media type is a typed 415 — the
            // framing was sound, so the connection stays usable.
            let Some(format) = negotiate_format(req.content_type.as_deref()) else {
                let declared = req.content_type.as_deref().unwrap_or("");
                write_response(
                    stream,
                    415,
                    reason_phrase(415),
                    &ErrorResponse::new(
                        "unsupported_media_type",
                        format!(
                            "unsupported Content-Type {declared:?}; use application/json or {}",
                            wire_bin::CONTENT_TYPE
                        ),
                    )
                    .to_json(),
                    &echo,
                    keep_alive,
                )?;
                return Ok(LoopExit::CleanClose);
            };
            let trace_id = req
                .request_id
                .clone()
                .unwrap_or_else(|| trace::make_trace_id(&req.body, service.next_trace_seq()));
            // Connection-level fault sites need the body text for their
            // key predicate, but `call_bytes` consumes the body — copy it
            // only while a plane is armed (never on the production path).
            let fault_key = if service.faults().is_armed() {
                Some(String::from_utf8_lossy(&req.body).into_owned())
            } else {
                None
            };
            let reply = service.call_bytes(req.body, format);
            let status = trace::status_code(reply.disposition);
            if let Some(key) = &fault_key {
                // A stalled upstream holds the answer: the request was read
                // and answered internally, but no response byte leaves —
                // exactly what a wedged worker looks like from a router.
                if let Some(stall) = service.faults().conn_stall(key) {
                    std::thread::sleep(stall);
                }
                // A dropped connection severs mid-body: full head, half the
                // body, then close — the peer sees a premature EOF inside
                // a Content-Length-framed response.
                if service.faults().conn_drop(key) {
                    write_severed_response(stream, status, &reply.body)?;
                    return Ok(LoopExit::AnnouncedClose);
                }
            }
            let x_cache = match reply.disposition {
                Disposition::Ok { cached: true } => Some("X-Cache: hit"),
                Disposition::Ok { cached: false } => Some("X-Cache: miss"),
                _ => None,
            };
            let rid_header = format!("X-Request-Id: {trace_id}");
            let mut headers: Vec<&str> = vec![rid_header.as_str()];
            headers.extend(x_cache);
            let write_started = Instant::now();
            // `Accept`-negotiated binary responses are transcoded at this
            // edge from the canonical JSON the service (and its cache
            // tiers) always speak. Only a 200 schedule has a binary
            // spelling; typed errors stay JSON so failures are always
            // debuggable with any client.
            let binary_body = if req.accept_binary && status == 200 {
                serde_json::from_str::<ScheduleResponse>(&reply.body)
                    .ok()
                    .map(|resp| wire_bin::encode_response(&resp))
            } else {
                None
            };
            match &binary_body {
                Some(bin) => write_response_bytes(
                    stream,
                    200,
                    reason_phrase(200),
                    wire_bin::CONTENT_TYPE,
                    bin,
                    &headers,
                    keep_alive,
                )?,
                None => write_response(
                    stream,
                    status,
                    reason_phrase(status),
                    &reply.body,
                    &headers,
                    keep_alive,
                )?,
            }
            let write_us = write_started.elapsed().as_micros() as u64;
            service.observe_http(read_us, write_us);
            let total_us = started.elapsed().as_micros() as u64;
            service.log_span(
                &Span::new(trace_id, &reply, read_us, write_us, total_us)
                    .with_fleet_worker(service.fleet_worker()),
            );
            Ok(LoopExit::CleanClose)
        }
        ("GET", "/v1/stats") => {
            write_response(stream, 200, "OK", &service.stats_json(), &echo, keep_alive)?;
            Ok(LoopExit::CleanClose)
        }
        ("GET", "/v1/metrics") => {
            write_response_typed(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &service.metrics_text(),
                &echo,
                keep_alive,
            )?;
            Ok(LoopExit::CleanClose)
        }
        ("GET", "/healthz") => {
            write_response(stream, 200, "OK", r#"{"ok":true}"#, &echo, keep_alive)?;
            Ok(LoopExit::CleanClose)
        }
        ("GET", "/readyz") => {
            match service.readiness() {
                Ok(()) => {
                    write_response(stream, 200, "OK", r#"{"ready":true}"#, &echo, keep_alive)?;
                }
                Err(reasons) => {
                    let listed: Vec<String> = reasons.iter().map(|r| format!("\"{r}\"")).collect();
                    let body = format!("{{\"ready\":false,\"reasons\":[{}]}}", listed.join(","));
                    write_response(stream, 503, "Service Unavailable", &body, &echo, keep_alive)?;
                }
            }
            Ok(LoopExit::CleanClose)
        }
        ("POST", "/v1/shutdown") => {
            write_response(
                stream,
                200,
                "OK",
                r#"{"ok":true,"shutting_down":true}"#,
                &echo,
                false,
            )?;
            shutdown.store(true, Ordering::SeqCst);
            Ok(LoopExit::AnnouncedClose)
        }
        _ => {
            write_response(
                stream,
                404,
                "Not Found",
                &ErrorResponse::new("not_found", format!("no route {} {}", req.method, req.path))
                    .to_json(),
                &echo,
                keep_alive,
            )?;
            Ok(LoopExit::CleanClose)
        }
    }
}

/// Writes a deliberately truncated response for an injected `conn-drop`
/// fault: a sound head declaring the full `Content-Length`, then only half
/// the body. The caller closes the connection, so the peer observes an
/// upstream dying mid-body — the failover case a fleet router must retry.
fn write_severed_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason_phrase(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    // lint:allow(panic-path): ..len()/2 of the same slice is in-bounds by
    // construction; fault-injection-only path (conn-drop).
    stream.write_all(&body.as_bytes()[..body.len() / 2])?;
    stream.flush()
}

pub(crate) fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// One fully framed request off the wire. Shared with the fleet router,
/// which frames client requests with exactly the same rules before
/// proxying them.
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    /// Raw body bytes; wire-format interpretation (JSON vs binary) is
    /// route-level content negotiation, not a framing concern.
    pub(crate) body: Vec<u8>,
    /// The `Content-Type` header value, if any (parameters included).
    pub(crate) content_type: Option<String>,
    /// `true` when the `Accept` header asks for binary responses.
    pub(crate) accept_binary: bool,
    /// Whether the *client* side of the keep-alive negotiation allows
    /// another request on this connection.
    pub(crate) keep_alive: bool,
    /// A sane client-supplied `X-Request-Id`, already sanitised.
    pub(crate) request_id: Option<String>,
}

pub(crate) enum RequestError {
    /// The request violates HTTP framing; the connection must close.
    Malformed(String),
    /// Head or declared body size beyond the configured caps.
    TooLarge,
    /// Syntactically valid but using a feature this daemon refuses
    /// (currently any `Transfer-Encoding`); answered 501, then close.
    Unsupported(String),
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one head line (CRLF- or LF-terminated) through the shrinking
/// `budget`. Returns `None` on EOF before any byte of this line.
fn read_head_line<R: BufRead>(
    reader: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut raw = Vec::new();
    // Allow one byte beyond the budget so "line exactly exhausts the
    // budget without terminating" is distinguishable from EOF.
    let n = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n > *budget {
        return Err(RequestError::TooLarge);
    }
    *budget -= n;
    if n == 0 {
        return Ok(None);
    }
    if raw.last() != Some(&b'\n') {
        // More bytes would have been read if the stream had them: the
        // peer closed (or half-closed) mid-line.
        return Err(RequestError::Malformed(
            "premature EOF inside the request head".into(),
        ));
    }
    let line = String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()))
}

/// Reads and strictly frames one request: request line, headers, body.
///
/// Framing rules (each violation is typed, and closes the connection):
///
/// * the request line must be exactly `METHOD SP PATH SP HTTP/x.y`;
/// * EOF anywhere mid-head or mid-body is `Malformed` — a truncated
///   request must fail fast, not sit out the IO timeout in `read_exact`;
/// * `Content-Length` may appear at most once and must parse — duplicate
///   or conflicting values are the classic request-smuggling vector;
/// * any `Transfer-Encoding` is `Unsupported` (501): this daemon never
///   parses chunked bodies, and silently reading the body as empty would
///   poison every later request on the connection.
pub(crate) fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, RequestError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_head_line(reader, &mut budget)?
        .ok_or_else(|| RequestError::Malformed("EOF before the request line".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if v.starts_with("HTTP/") => {
            (m.to_string(), p.to_string(), v.to_string())
        }
        _ => {
            return Err(RequestError::Malformed(format!(
                "unreadable request line {request_line:?}"
            )))
        }
    };
    // Keep-alive default by version: 1.1 persists unless told otherwise,
    // 1.0 closes unless told otherwise. Anything else is refused rather
    // than guessed at.
    let mut keep_alive = match version.as_str() {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v => {
            return Err(RequestError::Malformed(format!(
                "unsupported protocol version {v:?}"
            )))
        }
    };

    let mut content_length: Option<usize> = None;
    let mut request_id: Option<String> = None;
    let mut content_type: Option<String> = None;
    let mut accept_binary = false;
    loop {
        let line = read_head_line(reader, &mut budget)?
            .ok_or_else(|| RequestError::Malformed("premature EOF in headers".into()))?;
        if line.is_empty() {
            break; // blank line: end of head
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header line without a colon: {line:?}"
            )));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .parse()
                .map_err(|_| RequestError::Malformed(format!("bad Content-Length {value:?}")))?;
            match content_length {
                None => content_length = Some(parsed),
                Some(_) => {
                    return Err(RequestError::Malformed(
                        "duplicate Content-Length header".into(),
                    ))
                }
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(RequestError::Unsupported(format!(
                "Transfer-Encoding ({value}) is not supported; send a Content-Length body"
            )));
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("accept") {
            accept_binary = value
                .split(',')
                .any(|t| media_type(t).eq_ignore_ascii_case(wire_bin::CONTENT_TYPE));
        } else if name.eq_ignore_ascii_case("x-request-id") {
            // An insane id (empty, oversized, non-printable) is ignored —
            // the request still gets a generated trace id — rather than
            // rejected: the id is advisory, not part of the contract.
            request_id = trace::sanitize_client_id(value);
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            RequestError::Malformed("premature EOF in the request body".into())
        } else {
            RequestError::Io(e)
        }
    })?;
    // The body stays raw bytes: UTF-8 is a JSON-format concern, validated
    // by the service with a typed error that keeps the connection alive —
    // the framing here was fine.
    Ok(Request {
        method,
        path,
        body,
        content_type,
        accept_binary,
        keep_alive,
        request_id,
    })
}

/// The media type of a `Content-Type`/`Accept` value: the part before any
/// `;` parameters, trimmed.
fn media_type(value: &str) -> &str {
    value.split(';').next().unwrap_or("").trim()
}

/// Resolves the request's declared `Content-Type` to a wire format. An
/// absent header (or `application/json`) is the JSON compat path; anything
/// unrecognised is `None` → a typed 415.
fn negotiate_format(content_type: Option<&str>) -> Option<WireFormat> {
    match content_type.map(media_type) {
        None | Some("") => Some(WireFormat::Json),
        Some(t) if t.eq_ignore_ascii_case("application/json") => Some(WireFormat::Json),
        Some(t) if t.eq_ignore_ascii_case(wire_bin::CONTENT_TYPE) => Some(WireFormat::Binary),
        Some(_) => None,
    }
}

pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    extra_headers: &[&str],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_typed(
        stream,
        status,
        reason,
        "application/json",
        body,
        extra_headers,
        keep_alive,
    )
}

pub(crate) fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[&str],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_bytes(
        stream,
        status,
        reason,
        content_type,
        body.as_bytes(),
        extra_headers,
        keep_alive,
    )
}

pub(crate) fn write_response_bytes(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[&str],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
