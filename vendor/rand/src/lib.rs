//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides the exact surface this workspace uses: [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! high-quality, and dependency-free. Streams differ from the real
//! `StdRng` (ChaCha12), which is fine: the workspace only relies on
//! determinism per seed, never on specific draws.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per
                // draw for the spans this workspace uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

uint_range!(usize, u8, u16, u32, u64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5f64..=2.5);
            assert!((0.5..=2.5).contains(&y));
            let z = rng.gen_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
