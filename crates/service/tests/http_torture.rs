//! HTTP torture tests: keep-alive request loops, strict framing, and the
//! failure modes that become correctness-critical once two requests share
//! a connection — truncated heads and bodies, oversize heads, duplicate
//! `Content-Length`, `Transfer-Encoding`, per-connection request caps and
//! HTTP/1.0 semantics.

use batsched_service::http::{IDLE_TIMEOUT, MAX_HEAD_BYTES, MAX_REQUESTS_PER_CONNECTION};
use batsched_service::wire::ScheduleResponse;
use batsched_service::{HttpServer, ScheduleRequest, Service, ServiceConfig};
use batsched_taskgraph::paper::{g2, g3};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot() -> (Arc<Service>, HttpServer, SocketAddr) {
    let svc = Arc::new(Service::start(ServiceConfig::default()));
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    (svc, server, addr)
}

fn schedule_body(deadline: f64) -> String {
    serde_json::to_string(&ScheduleRequest::new(g2(), deadline)).expect("serialises")
}

/// A test client that speaks framed HTTP on one connection: reads each
/// response by its `Content-Length`, so many responses can share the
/// stream.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

struct Response {
    status: u16,
    head: String,
    body: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send_raw(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("send");
    }

    fn request_raw(&mut self, method: &str, path: &str, body: &str, connection: &str) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(&raw);
    }

    fn request_typed(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        connection: &str,
    ) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(&raw);
    }

    /// Reads one framed response (status line + headers + Content-Length
    /// bytes of body). Panics on a closed stream.
    fn read_response(&mut self) -> Response {
        self.try_read_response().expect("connection closed early")
    }

    /// `None` when the server has closed the connection at a boundary.
    fn try_read_response(&mut self) -> Option<Response> {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read head line");
            if n == 0 {
                assert!(head.is_empty(), "EOF mid-head: {head:?}");
                return None;
            }
            if line.trim_end().is_empty() {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("unparseable status line: {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("numeric Content-Length"))
            })
            .expect("response carries Content-Length");
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        Some(Response {
            status,
            head,
            body: String::from_utf8(body).expect("UTF-8 body"),
        })
    }

    /// Asserts the server has closed: the next read returns EOF.
    fn assert_closed(&mut self) {
        assert!(
            self.try_read_response().is_none(),
            "expected the server to close the connection"
        );
    }
}

// ---------------------------------------------------------- keep-alive

#[test]
fn keep_alive_pipelines_hit_miss_and_error_on_one_connection() {
    let (svc, server, addr) = boot();
    let miss_body = schedule_body(75.0);
    let mut c = Client::connect(addr);

    // miss → hit → well-framed client error → another hit, all on ONE
    // connection; the client error must NOT poison the stream.
    c.request_raw("POST", "/v1/schedule", &miss_body, "keep-alive");
    let r = c.read_response();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.head.contains("X-Cache: miss"), "{}", r.head);
    assert!(r.head.contains("Connection: keep-alive"), "{}", r.head);
    let first: ScheduleResponse = serde_json::from_str(&r.body).expect("schedule body");

    c.request_raw("POST", "/v1/schedule", &miss_body, "keep-alive");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.head.contains("X-Cache: hit"), "{}", r.head);
    let warm: ScheduleResponse = serde_json::from_str(&r.body).expect("schedule body");
    assert_eq!(warm, first, "keep-alive hit replays identical content");

    c.request_raw("POST", "/v1/schedule", "{ nope", "keep-alive");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("bad_json"), "{}", r.body);
    assert!(
        r.head.contains("Connection: keep-alive"),
        "a well-framed bad request keeps the connection: {}",
        r.head
    );

    c.request_raw("GET", "/v1/stats", "", "keep-alive");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"cache_hits\":1"), "{}", r.body);

    // Explicit close is honoured: response announces it, then EOF.
    c.request_raw("GET", "/healthz", "", "close");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.head.contains("Connection: close"), "{}", r.head);
    c.assert_closed();

    // One TCP connection carried the whole conversation.
    assert_eq!(svc.stats().received, 3);
    drop(server);
    svc.shutdown();
}

#[test]
fn pipelined_requests_sent_back_to_back_are_answered_in_order() {
    let (svc, server, addr) = boot();
    let body = schedule_body(75.0);
    let mut c = Client::connect(addr);
    // Write three requests before reading any response.
    for _ in 0..3 {
        c.request_raw("POST", "/v1/schedule", &body, "keep-alive");
    }
    let r1 = c.read_response();
    let r2 = c.read_response();
    let r3 = c.read_response();
    assert_eq!((r1.status, r2.status, r3.status), (200, 200, 200));
    assert!(r1.head.contains("X-Cache: miss"));
    assert!(r2.head.contains("X-Cache: hit"));
    assert!(r3.head.contains("X-Cache: hit"));
    assert_eq!(r1.body, r2.body);
    assert_eq!(r2.body, r3.body);
    drop(server);
    svc.shutdown();
}

#[test]
fn http10_closes_by_default_but_keeps_alive_on_request() {
    let (svc, server, addr) = boot();

    let mut c = Client::connect(addr);
    c.send_raw("GET /healthz HTTP/1.0\r\nHost: localhost\r\n\r\n");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.head.contains("Connection: close"), "{}", r.head);
    c.assert_closed();

    let mut c = Client::connect(addr);
    c.send_raw("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.head.contains("Connection: keep-alive"), "{}", r.head);
    c.send_raw("GET /healthz HTTP/1.0\r\nConnection: close\r\n\r\n");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    c.assert_closed();

    drop(server);
    svc.shutdown();
}

#[test]
fn request_cap_closes_the_connection_with_announcement() {
    let (svc, server, addr) = boot();
    let mut c = Client::connect(addr);
    for k in 1..=MAX_REQUESTS_PER_CONNECTION {
        c.request_raw("GET", "/healthz", "", "keep-alive");
        let r = c.read_response();
        assert_eq!(r.status, 200);
        let expect_close = k == MAX_REQUESTS_PER_CONNECTION;
        assert_eq!(
            r.head.contains("Connection: close"),
            expect_close,
            "request {k}: {}",
            r.head
        );
    }
    c.assert_closed();
    drop(server);
    svc.shutdown();
}

// ------------------------------------------------------- strict framing

#[test]
fn truncated_head_fails_fast_with_400() {
    let (svc, server, addr) = boot();
    let started = Instant::now();
    let mut c = Client::connect(addr);
    // Head cut off mid-headers (no blank line), then half-close: must be
    // answered 400 immediately, not after the 10 s IO timeout burns down.
    c.send_raw("POST /v1/schedule HTTP/1.1\r\nContent-Length: 10\r\n");
    c.stream.shutdown(Shutdown::Write).expect("half-close");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("bad_http"), "{}", r.body);
    assert!(r.head.contains("Connection: close"), "{}", r.head);
    c.assert_closed();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "truncated head must fail fast, took {:?}",
        started.elapsed()
    );
    drop(server);
    svc.shutdown();
}

#[test]
fn truncated_request_line_fails_fast_with_400() {
    let (svc, server, addr) = boot();
    let started = Instant::now();
    let mut c = Client::connect(addr);
    c.send_raw("POST /v1/sched"); // no line terminator at all
    c.stream.shutdown(Shutdown::Write).expect("half-close");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(started.elapsed() < Duration::from_secs(5));
    c.assert_closed();
    drop(server);
    svc.shutdown();
}

#[test]
fn truncated_body_fails_fast_with_400() {
    let (svc, server, addr) = boot();
    let started = Instant::now();
    let mut c = Client::connect(addr);
    c.send_raw("POST /v1/schedule HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"v\":1");
    c.stream.shutdown(Shutdown::Write).expect("half-close");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("bad_http"), "{}", r.body);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "truncated body must fail fast, took {:?}",
        started.elapsed()
    );
    c.assert_closed();
    drop(server);
    svc.shutdown();
}

#[test]
fn oversize_head_is_rejected_413() {
    let (svc, server, addr) = boot();
    let mut c = Client::connect(addr);
    c.send_raw("GET /healthz HTTP/1.1\r\n");
    // One enormous header line, no newline in sight.
    let filler = "x".repeat(MAX_HEAD_BYTES + 64);
    c.send_raw(&format!("X-Filler: {filler}"));
    let r = c.read_response();
    assert_eq!(r.status, 413);
    assert!(r.body.contains("too_large"), "{}", r.body);
    c.assert_closed();
    drop(server);
    svc.shutdown();
}

#[test]
fn duplicate_and_conflicting_content_length_are_rejected() {
    for (a, b) in [(10usize, 20usize), (10, 10)] {
        let (svc, server, addr) = boot();
        let mut c = Client::connect(addr);
        c.send_raw(&format!(
            "POST /v1/schedule HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\n{}",
            "z".repeat(a.max(b))
        ));
        let r = c.read_response();
        assert_eq!(r.status, 400, "CL {a} vs {b}");
        assert!(r.body.contains("duplicate Content-Length"), "{}", r.body);
        assert!(r.head.contains("Connection: close"), "{}", r.head);
        c.assert_closed();
        drop(server);
        svc.shutdown();
    }
}

#[test]
fn unparseable_content_length_is_rejected() {
    let (svc, server, addr) = boot();
    let mut c = Client::connect(addr);
    c.send_raw("POST /v1/schedule HTTP/1.1\r\nContent-Length: 10, 10\r\n\r\n");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("bad Content-Length"), "{}", r.body);
    c.assert_closed();
    drop(server);
    svc.shutdown();
}

#[test]
fn transfer_encoding_is_refused_with_501() {
    let (svc, server, addr) = boot();
    for te in ["chunked", "gzip, chunked", "identity"] {
        let mut c = Client::connect(addr);
        c.send_raw(&format!(
            "POST /v1/schedule HTTP/1.1\r\nTransfer-Encoding: {te}\r\n\r\n"
        ));
        let r = c.read_response();
        assert_eq!(r.status, 501, "TE {te:?}");
        assert!(
            r.body.contains("unsupported_transfer_encoding"),
            "{}",
            r.body
        );
        assert!(r.head.contains("Connection: close"), "{}", r.head);
        c.assert_closed();
    }
    drop(server);
    svc.shutdown();
}

#[test]
fn unknown_content_type_is_415_and_keeps_the_connection() {
    let (svc, server, addr) = boot();
    let body = schedule_body(75.0);
    let mut c = Client::connect(addr);
    // Unknown media types are a client mistake, not a framing violation:
    // the typed 415 must not poison the keep-alive stream.
    for ct in ["text/plain", "application/xml", "application/json2"] {
        c.request_typed("POST", "/v1/schedule", ct, &body, "keep-alive");
        let r = c.read_response();
        assert_eq!(r.status, 415, "{ct}");
        assert!(r.body.contains("unsupported_media_type"), "{}", r.body);
        assert!(r.head.contains("Connection: keep-alive"), "{}", r.head);
    }
    // The SAME connection still serves real requests; a charset parameter
    // on application/json is fine.
    c.request_typed(
        "POST",
        "/v1/schedule",
        "application/json; charset=utf-8",
        &body,
        "keep-alive",
    );
    let r = c.read_response();
    assert_eq!(r.status, 200, "{}", r.body);
    c.request_raw("POST", "/v1/schedule", &body, "close");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.head.contains("X-Cache: hit"), "{}", r.head);
    c.assert_closed();
    // Rejected uploads never reach the service.
    assert_eq!(svc.stats().received, 2);
    drop(server);
    svc.shutdown();
}

#[test]
fn non_utf8_json_body_is_a_typed_400_not_a_framing_error() {
    let (svc, server, addr) = boot();
    let mut c = Client::connect(addr);
    // A well-framed body that is not UTF-8: semantic error, typed answer,
    // connection preserved.
    c.send_raw("POST /v1/schedule HTTP/1.1\r\nContent-Length: 4\r\nConnection: keep-alive\r\n\r\n");
    c.stream.write_all(&[0xff, 0xfe, 0x01, 0x02]).expect("send");
    let r = c.read_response();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("bad_json"), "{}", r.body);
    assert!(r.head.contains("Connection: keep-alive"), "{}", r.head);
    c.request_raw("GET", "/healthz", "", "close");
    assert_eq!(c.read_response().status, 200);
    c.assert_closed();
    drop(server);
    svc.shutdown();
}

#[test]
fn malformed_request_line_closes_after_400() {
    let (svc, server, addr) = boot();
    for raw in [
        "GARBAGE\r\n\r\n",
        "GET /x HTTP/1.1 extra\r\n\r\n",
        "GET /x SMTP/1.0\r\n\r\n",
        "GET /x HTTP/2.0\r\n\r\n",
        "GET /x HTTP/1.1\r\nno-colon-line\r\n\r\n",
    ] {
        let mut c = Client::connect(addr);
        c.send_raw(raw);
        let r = c.read_response();
        assert_eq!(r.status, 400, "raw {raw:?}");
        assert!(r.head.contains("Connection: close"), "{}", r.head);
        c.assert_closed();
    }
    drop(server);
    svc.shutdown();
}

// --------------------------------------------------- lifecycle details

#[test]
#[allow(clippy::assertions_on_constants)]
fn idle_timeout_constant_is_sane() {
    // The torture suite cannot afford to sit out a real idle window; pin
    // the contract instead so a config regression is at least loud.
    assert!(IDLE_TIMEOUT >= Duration::from_secs(1));
    assert!(IDLE_TIMEOUT <= Duration::from_secs(60));
    assert!(MAX_REQUESTS_PER_CONNECTION >= 8);
}

#[test]
fn clean_disconnect_between_requests_is_not_an_error() {
    let (svc, server, addr) = boot();
    {
        let mut c = Client::connect(addr);
        c.request_raw("GET", "/healthz", "", "keep-alive");
        let r = c.read_response();
        assert_eq!(r.status, 200);
        // Drop the connection at a request boundary (no close header).
    }
    // The daemon keeps serving fresh connections afterwards.
    let mut c = Client::connect(addr);
    c.request_raw("GET", "/healthz", "", "close");
    assert_eq!(c.read_response().status, 200);
    drop(server);
    svc.shutdown();
}

#[test]
fn shutdown_endpoint_closes_its_own_keep_alive_connection() {
    let (svc, server, addr) = boot();
    let mut c = Client::connect(addr);
    c.request_raw("GET", "/healthz", "", "keep-alive");
    assert_eq!(c.read_response().status, 200);
    c.request_raw("POST", "/v1/shutdown", "", "keep-alive");
    let r = c.read_response();
    assert_eq!(r.status, 200);
    assert!(r.head.contains("Connection: close"), "{}", r.head);
    c.assert_closed();
    server.wait(); // acceptor exits because the endpoint tripped the flag
    svc.shutdown();
}

#[test]
fn keep_alive_duplicate_stream_stays_on_one_connection_and_hits() {
    // The A/B scenario loadgen measures, asserted functionally here: a
    // duplicate-heavy stream over one connection is all cache hits after
    // the first request, and every response is bit-identical.
    let (svc, server, addr) = boot();
    let bodies = [schedule_body(75.0), {
        serde_json::to_string(&ScheduleRequest::new(g3(), 230.0)).expect("serialises")
    }];
    let mut c = Client::connect(addr);
    let mut first: Vec<Option<String>> = vec![None, None];
    for round in 0..10 {
        for (i, b) in bodies.iter().enumerate() {
            c.request_raw("POST", "/v1/schedule", b, "keep-alive");
            let r = c.read_response();
            assert_eq!(r.status, 200, "round {round}: {}", r.body);
            match &first[i] {
                None => first[i] = Some(r.body),
                Some(expect) => assert_eq!(&r.body, expect, "round {round}"),
            }
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.received, 20);
    assert_eq!(stats.cache_hits, 18);
    drop(server);
    svc.shutdown();
}
