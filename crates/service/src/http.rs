//! A minimal HTTP/1.1 frontend on `std::net::TcpListener` — no external
//! dependencies, one request per connection (`Connection: close`).
//!
//! Routes:
//!
//! * `POST /v1/schedule` — body is one wire-format request document;
//!   answers `200` (with `X-Cache: hit|miss`), `400` for client errors,
//!   `503` when the queue is full, `500` for internal failures;
//! * `GET /v1/stats` — the service's counters as JSON;
//! * `GET /healthz` — liveness probe;
//! * `POST /v1/shutdown` — acknowledges, then stops the acceptor (the
//!   owner's [`HttpServer::wait`] returns so it can drain the service).
//!
//! The acceptor polls a non-blocking listener so shutdown needs no
//! self-connection trick; each accepted connection is handled on its own
//! thread (the worker pool, not the connection count, bounds solving
//! concurrency — the queue provides the backpressure).

use crate::service::{Disposition, Service};
use crate::wire::ErrorResponse;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request body (an n=50, m=8 instance is ~60 KB; this
/// leaves two orders of magnitude of headroom without letting one client
/// balloon memory).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Largest accepted request head (request line + headers). Everything a
/// connection can make the daemon buffer is capped: the reader is
/// hard-limited to `MAX_HEAD_BYTES + MAX_BODY_BYTES`, so a client
/// streaming newline-free garbage cannot grow memory past that.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

const ACCEPT_POLL: Duration = Duration::from_millis(15);
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running HTTP frontend bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections against `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(service: Arc<Service>, addr: &str) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("batsched-http-accept".into())
            .spawn(move || accept_loop(&listener, &service, &flag))?;
        Ok(HttpServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the acceptor to stop after its current poll tick.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the acceptor exits — either [`Self::stop`] was called
    /// or a client hit `POST /v1/shutdown`.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, shutdown: &Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let flag = Arc::clone(shutdown);
                if let Ok(h) = std::thread::Builder::new()
                    .name("batsched-http-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &service, &flag);
                    })
                {
                    conns.push(h);
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Hard cap on everything this connection can make us buffer: a client
    // streaming an enormous (or newline-free) head hits the limit and gets
    // a parse failure instead of growing memory without bound.
    let limit = (MAX_HEAD_BYTES + MAX_BODY_BYTES) as u64;
    let mut reader = BufReader::new(io::Read::take(stream.try_clone()?, limit));
    let mut stream = stream;

    let (method, path, body) = match read_request(&mut reader) {
        Ok(parts) => parts,
        Err(RequestError::TooLarge) => {
            return write_response(
                &mut stream,
                413,
                "Payload Too Large",
                &ErrorResponse::new("too_large", "request body exceeds the size limit").to_json(),
                None,
            );
        }
        Err(RequestError::Malformed(msg)) => {
            return write_response(
                &mut stream,
                400,
                "Bad Request",
                &ErrorResponse::new("bad_http", msg).to_json(),
                None,
            );
        }
        Err(RequestError::Io(e)) => return Err(e),
    };

    match (method.as_str(), path.as_str()) {
        ("POST", "/v1/schedule") => {
            let reply = service.call(body);
            let (status, reason) = match reply.disposition {
                Disposition::Ok { .. } => (200, "OK"),
                Disposition::ClientError => (400, "Bad Request"),
                Disposition::Overloaded => (503, "Service Unavailable"),
                Disposition::Internal => (500, "Internal Server Error"),
            };
            let x_cache = match reply.disposition {
                Disposition::Ok { cached: true } => Some("X-Cache: hit"),
                Disposition::Ok { cached: false } => Some("X-Cache: miss"),
                _ => None,
            };
            write_response(&mut stream, status, reason, &reply.body, x_cache)
        }
        ("GET", "/v1/stats") => write_response(&mut stream, 200, "OK", &service.stats_json(), None),
        ("GET", "/healthz") => write_response(&mut stream, 200, "OK", r#"{"ok":true}"#, None),
        ("POST", "/v1/shutdown") => {
            let out = write_response(
                &mut stream,
                200,
                "OK",
                r#"{"ok":true,"shutting_down":true}"#,
                None,
            );
            shutdown.store(true, Ordering::SeqCst);
            out
        }
        _ => write_response(
            &mut stream,
            404,
            "Not Found",
            &ErrorResponse::new("not_found", format!("no route {method} {path}")).to_json(),
            None,
        ),
    }
}

enum RequestError {
    Malformed(String),
    TooLarge,
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn read_request<R: BufRead>(reader: &mut R) -> Result<(String, String, String), RequestError> {
    let mut head_bytes = 0usize;
    let mut request_line = String::new();
    head_bytes += reader.read_line(&mut request_line)?;
    if head_bytes > MAX_HEAD_BYTES {
        return Err(RequestError::TooLarge);
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(RequestError::Malformed("unreadable request line".into())),
    };

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        if n == 0 || line.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| RequestError::Malformed("body is not UTF-8".into()))?;
    Ok((method, path, body))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    extra_header: Option<&str>,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(h) = extra_header {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
