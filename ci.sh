#!/usr/bin/env bash
# CI pipeline: formatting, lints, build, tests (both feature configs),
# example compile-check, the service smoke test (daemon + loadgen burst),
# and the perf/service snapshots. Mirrors the recipes in ./justfile.
#
# `./ci.sh serve-smoke` runs only the daemon smoke test (used by
# `just serve-smoke`); `./ci.sh chaos-smoke` runs only the fault-injection
# drill against a real armed daemon (used by `just chaos`);
# `./ci.sh metrics-smoke` boots a span-logging daemon, drives traffic and
# verifies the /v1/metrics exposition and the span log (used by
# `just metrics`); `./ci.sh fleet-smoke` boots the fleet router with 3
# real worker processes, kill -9s one mid-burst and asserts zero lost
# requests, respawn and the drain/readyz transitions (used by
# `just fleet`).
set -euo pipefail
cd "$(dirname "$0")"

serve_smoke() {
  echo "==> service smoke (daemon + loadgen burst + warm restart)"
  cargo build --release -q -p batsched-cli -p batsched-bench
  local log cache
  log="$(mktemp)"
  cache="$(mktemp -u).jsonl"

  # Boots the daemon on a free port with a disk-backed cache, waits for
  # the announced address, runs one loadgen smoke mode against it, then
  # waits for the clean exit. On failure, never leave the daemon orphaned.
  smoke_round() {
    local mode="$1"
    : > "$log"
    ./target/release/batsched serve --http 127.0.0.1:0 --disk-cache "$cache" 2> "$log" &
    local pid=$!
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" | head -1 || true)
      [ -n "$addr" ] && break
      sleep 0.1
    done
    if [ -z "$addr" ]; then
      echo "daemon did not announce an address; log:" >&2
      cat "$log" >&2
      kill "$pid" 2> /dev/null || true
      wait "$pid" 2> /dev/null || true
      rm -f "$log" "$cache"
      exit 1
    fi
    if ! ./target/release/loadgen "$mode" --addr "$addr"; then
      echo "smoke burst ($mode) failed; daemon log:" >&2
      cat "$log" >&2
      kill "$pid" 2> /dev/null || true
      wait "$pid" 2> /dev/null || true
      rm -f "$log" "$cache"
      exit 1
    fi
    wait "$pid"
  }

  # Round 1: schedule (JSON + binary wire formats, one shared cache key)
  # + malformed + keep-alive pass + stats + shutdown (the daemon compacts
  # its disk cache on the way out).
  smoke_round --smoke
  echo "daemon shut down cleanly"
  # Round 2: a fresh daemon on the same cache file must answer the same
  # request — in either wire format — as an X-Cache hit attributed to the
  # disk tier.
  smoke_round --smoke-warm
  echo "warm restart served from the disk tier"
  rm -f "$log" "$cache"
}

chaos_smoke() {
  echo "==> chaos smoke (armed daemon + loadgen fault drill)"
  cargo build --release -q -p batsched-cli -p batsched-bench
  local log cache
  log="$(mktemp)"
  cache="$(mktemp -u).jsonl"

  # Boot a real daemon with the fault plane armed: one solver panic
  # (targeted at the G2/deadline-75 request), a burst of 10 disk-append
  # failures, and 500 ms of injected latency (2x the request deadline) on
  # every 20th request. The rules mirror CHAOS_FAULTS in loadgen.rs —
  # keep the two lists in lockstep.
  ./target/release/batsched serve --http 127.0.0.1:0 --disk-cache "$cache" \
    --request-timeout 250 --disk-breaker 3 --disk-probe-ms 150 \
    --fault 'solver-panic:count=1,key="deadline":75' \
    --fault 'disk-append:after=5,count=10' \
    --fault 'solver-latency:every=20,ms=500,count=5' 2> "$log" &
  local pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" | head -1 || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon did not announce an address; log:" >&2
    cat "$log" >&2
    kill "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    rm -f "$log" "$cache"
    exit 1
  fi
  # --check asserts: zero lost requests, only typed timeout/internal
  # errors, >=1 worker respawn, disk breaker tripped then re-armed.
  if ! ./target/release/loadgen --chaos --check --addr "$addr"; then
    echo "chaos drill failed; daemon log:" >&2
    cat "$log" >&2
    kill "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    rm -f "$log" "$cache"
    exit 1
  fi
  wait "$pid"
  echo "chaos drill survived: typed errors only, pool respawned, disk tier re-armed"
  rm -f "$log" "$cache"
}

metrics_smoke() {
  echo "==> metrics smoke (daemon + /v1/metrics scrape + span log)"
  cargo build --release -q -p batsched-cli -p batsched-bench
  local log spans
  log="$(mktemp)"
  spans="$(mktemp)"
  : > "$spans"

  # Boot the daemon with structured span logging; loadgen's first request
  # is a /readyz probe, so the drive only starts once the pool is ready.
  ./target/release/batsched serve --http 127.0.0.1:0 --log-json "$spans" 2> "$log" &
  local pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" | head -1 || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon did not announce an address; log:" >&2
    cat "$log" >&2
    kill "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    rm -f "$log" "$spans"
    exit 1
  fi
  # loadgen drives 4 /v1/schedule requests (cold, 2 hits, malformed),
  # scrapes /v1/metrics and asserts exposition shape and exact counts.
  if ! ./target/release/loadgen --metrics-smoke --addr "$addr"; then
    echo "metrics smoke failed; daemon log:" >&2
    cat "$log" >&2
    kill "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    rm -f "$log" "$spans"
    exit 1
  fi
  wait "$pid"

  # The span log must carry exactly one span per /v1/schedule request
  # (stats/metrics/readyz/shutdown emit none) with client ids preserved.
  local lines
  lines=$(grep -c '"trace_id"' "$spans" || true)
  if [ "$lines" -ne 4 ]; then
    echo "expected 4 span lines, got $lines; span log:" >&2
    cat "$spans" >&2
    rm -f "$log" "$spans"
    exit 1
  fi
  for id in '"trace_id":"metrics-smoke-1"' '"trace_id":"metrics-smoke-bad"'; do
    if ! grep -q "$id" "$spans"; then
      echo "client trace id $id missing from span log:" >&2
      cat "$spans" >&2
      rm -f "$log" "$spans"
      exit 1
    fi
  done
  echo "metrics exposition well-formed; span log carried $lines spans with client ids"
  rm -f "$log" "$spans"
}

fleet_smoke() {
  echo "==> fleet smoke (router + 3 workers, kill -9 mid-burst, drain/restart)"
  cargo build --release -q -p batsched-cli -p batsched-bench
  local log cache
  log="$(mktemp)"
  cache="$(mktemp -u).jsonl"

  # Boot the router with 3 supervised `batsched serve` children, each
  # owning its own disk shard ($cache.shard-K). Small probe/backoff
  # budgets keep the kill -9 → respawn → ready cycle fast.
  ./target/release/batsched fleet --http 127.0.0.1:0 --size 3 --workers 1 \
    --disk-cache "$cache" \
    --probe-interval-ms 50 --restart-backoff-ms 100 --restart-backoff-max-ms 1000 \
    2> "$log" &
  local pid=$!
  local addr=""
  for _ in $(seq 1 200); do
    # Only the router announces "listening on" — worker announce lines
    # are consumed by the launcher, never re-emitted.
    addr=$(grep -oE 'listening on http://127\.0\.0\.1:[0-9]+' "$log" \
      | head -1 | grep -oE '127\.0\.0\.1:[0-9]+' || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "fleet router did not announce an address; log:" >&2
    cat "$log" >&2
    kill "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    rm -f "$log" "$cache".shard-*
    exit 1
  fi
  # loadgen --fleet-smoke: warm burst with pinned routing, kill -9 of the
  # worker owning a known hash slice (pid read from /v1/fleet), zero-loss
  # failover burst, respawn + /readyz recovery, drain drill asserting the
  # ready -> not-ready -> ready transition, then /v1/shutdown.
  if ! ./target/release/loadgen --fleet-smoke --addr "$addr"; then
    echo "fleet drill failed; router log:" >&2
    cat "$log" >&2
    kill "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    rm -f "$log" "$cache".shard-*
    exit 1
  fi
  wait "$pid"
  echo "fleet drill survived: kill -9 lost nothing, worker respawned, drain cycled readyz"
  rm -f "$log" "$cache".shard-*
}

if [ "${1:-}" = "serve-smoke" ]; then
  serve_smoke
  exit 0
fi

if [ "${1:-}" = "chaos-smoke" ]; then
  chaos_smoke
  exit 0
fi

if [ "${1:-}" = "metrics-smoke" ]; then
  metrics_smoke
  exit 0
fi

if [ "${1:-}" = "fleet-smoke" ]; then
  fleet_smoke
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -D warnings (parallel feature)"
cargo clippy --workspace --all-targets --features parallel -- -D warnings

echo "==> batsched-lint (invariant gates: panic-path, nested-lock, uncapped-wire-alloc, nondeterministic-iter, crate-hygiene)"
# The workspace invariant linter (crates/lint): hard gate, zero findings
# allowed — suppressions only via an annotated, machine-checked
# `// lint:allow(<rule>): <reason>`, and stale allows are errors too.
# See docs/LINT.md for the rule catalogue.
cargo run --release -q -p batsched-lint --bin batsched-lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples (compile-check examples/)"
cargo build --release --examples

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (workspace, parallel feature)"
cargo test --workspace -q --features parallel

serve_smoke

chaos_smoke

metrics_smoke

fleet_smoke

echo "==> fleet drill (parallel feature, zero-loss floors enforced)"
# The acceptance gate runs in both feature configs: the in-process fleet
# drill (router + 3 workers, kill mid-burst) must lose zero requests with
# the parallel solver kernels compiled in too.
cargo run --release -q -p batsched-bench --features parallel --bin loadgen -- --fleet --quick --check

echo "==> perf smoke + snapshot (BENCH_scheduler.json, floors enforced)"
# Quick-mode perf smoke: regenerates the snapshot and fails the pipeline if
# sigma_full_vs_naive or cdp_speedup regress below their conservative 2x
# floors, if row_carry (carry-off/on schedule_in ratio) drops below 1.5x,
# or if the sweep_scaling fitted growth exponent climbs above 1.4 (same
# command as `just bench-quick`).
cargo run --release -q -p batsched-bench --bin repro_bench_json -- --quick --check

echo "==> wire-format A/B (binary admission floor enforced)"
# --wire --check admits the n-scaling instances in both wire formats:
# the fused single-pass binary decode+hash must produce the same cache
# key as the JSON path and beat JSON parse+hash by >= 2x at n=200.
cargo run --release -q -p batsched-bench --bin loadgen -- --wire --quick --check

echo "==> service load snapshot (BENCH_service.json, keep-alive floor enforced)"
# --check gates the keep-alive vs connection-per-request A/B (>= 1.5x on
# the duplicate-heavy stream) and re-runs the wire admission gate; the
# snapshot records the wire envelope alongside the request streams.
cargo run --release -q -p batsched-bench --bin loadgen -- --quick --check

echo "CI OK"
