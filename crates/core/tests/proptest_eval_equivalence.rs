//! Property-based equivalence of the σ-evaluation engine against the
//! naive profile path at the scheduler level: on arbitrary task graphs,
//! random topological orders, random assignments and single-column swaps,
//! [`EngineCost`] must match [`battery_cost_of`] and every window the
//! search emits must carry the same σ the naive evaluation assigns it —
//! all to ≤ 1e-9 relative error, with and without the `parallel` feature.

use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::search::{diag_evaluate_windows, positional_cost_naive};
use batsched_core::{battery_cost_of, schedule, EngineCost, SchedulerConfig};
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::synth::{
    chain, fork_join, layered, random_dag, Rounding, ScalingScheme, TaskParams,
};
use batsched_taskgraph::topo::topological_order;
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REL_TOL: f64 = 1e-9;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..6, any::<u64>(), 0usize..4, 2usize..7).prop_map(|(m, seed, family, n)| {
        let params = TaskParams {
            current_range: (50.0, 950.0),
            duration_range: (1.0, 15.0),
            factors: (0..m)
                .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
                .collect(),
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => chain(n, &params, &mut rng),
            1 => fork_join(&[n], &params, &mut rng),
            2 => layered(3, 2, 0.4, &params, &mut rng),
            _ => random_dag(n + 2, 0.35, &params, &mut rng),
        }
        .expect("valid generator parameters")
    })
}

fn assert_rel_close(engine: f64, naive: f64) {
    assert!(
        (engine - naive).abs() <= REL_TOL * naive.abs().max(1.0),
        "engine {engine} vs naive {naive}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `EngineCost` matches `battery_cost_of` on random assignments and
    /// stays matched through a chain of random single-column swaps sharing
    /// one suffix cache.
    #[test]
    fn engine_cost_matches_battery_cost_of(g in arb_graph(), seed in any::<u64>()) {
        let model = RvModel::date05();
        let mut engine = EngineCost::new(&g, &model);
        let mut rng = StdRng::seed_from_u64(seed);
        let order = topological_order(&g);
        let m = g.point_count();
        let mut assignment: Vec<PointId> = (0..g.task_count())
            .map(|_| PointId(rng.gen_range(0..m)))
            .collect();
        for _ in 0..24 {
            let (ec, emk) = engine.cost(&order, &assignment);
            let (nc, nmk) = battery_cost_of(&g, &order, &assignment, &model);
            assert_rel_close(ec.value(), nc.value());
            prop_assert!((emk.value() - nmk.value()).abs() <= 1e-9 * nmk.value().max(1.0));
            // Single-column swap — the dominant move of every search loop.
            let t = TaskId(rng.gen_range(0..g.task_count()));
            assignment[t.index()] = PointId(rng.gen_range(0..m));
        }
    }

    /// Every window record the engine-backed search emits carries the σ
    /// the naive evaluation computes for its assignment.
    #[test]
    fn window_costs_match_naive_evaluation(g in arb_graph(), slack in 0.1f64..1.0) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let cfg = SchedulerConfig::paper();
        let model = cfg.battery_model().unwrap();
        let seq = topological_order(&g);
        let (records, best) = diag_evaluate_windows(&g, &cfg, d, &model, &seq).unwrap();
        prop_assert!(best < records.len());
        for r in &records {
            let assign_pos: Vec<usize> = seq
                .iter()
                .map(|&t| r.assignment[t.index()].index())
                .collect();
            let (naive, naive_mk) = positional_cost_naive(&g, &model, &seq, &assign_pos);
            assert_rel_close(r.cost.value(), naive.value());
            prop_assert!(
                (r.makespan.value() - naive_mk.value()).abs()
                    <= 1e-9 * naive_mk.value().max(1.0)
            );
        }
        // The recorded best is the argmin (first on ties).
        for (i, r) in records.iter().enumerate() {
            if i != best {
                prop_assert!(r.cost.value() >= records[best].cost.value());
            }
        }
    }

    /// The full iterative driver's reported cost matches a from-scratch
    /// naive recomputation of its returned schedule.
    #[test]
    fn solution_cost_matches_naive_recomputation(g in arb_graph(), slack in 0.0f64..1.0) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let sol = schedule(&g, d, &SchedulerConfig::paper()).unwrap();
        let naive = sol.schedule.battery_cost(&g, &RvModel::date05());
        assert_rel_close(sol.cost.value(), naive.value());
    }
}
