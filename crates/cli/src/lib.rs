//! # batsched-cli
//!
//! Command-line front end: schedule task-graph JSON files, compare
//! algorithms, generate synthetic workloads, export DOT, and simulate
//! execution against a battery. The argument parser is hand-rolled (no
//! dependency) and fully unit-tested; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use batsched_baselines::{
    ChowdhuryScaling, KhanVemuri, RakhmatovDp, RandomSearch, Scheduler, SimulatedAnnealing,
};
use batsched_battery::rv::RvModel;
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_core::SchedulerConfig;
use batsched_sim::Simulator;
use batsched_taskgraph::synth::{self, TaskParams};
use batsched_taskgraph::{io as gio, TaskGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// CLI failure: a message and a suggestion to try `--help`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "batsched — battery-aware task scheduling (Khan & Vemuri, DATE 2005)

USAGE:
  batsched schedule <graph.json> --deadline <min> [--algo <name>] [--beta <f>] [--json]
  batsched trace    <graph.json> --deadline <min> [--beta <f>]
  batsched compare  <graph.json> --deadline <min> [--beta <f>]
  batsched simulate <graph.json> --deadline <min> --capacity <mA·min> [--soc-csv]
  batsched gen --family <chain|fork-join|layered|series-parallel|random>
               [--tasks <n>] [--points <m>] [--seed <s>]
  batsched demo <g2|g3>
  batsched dot  <graph.json>
  batsched serve (--http <addr> | --jsonl)
               [--workers <n>] [--queue <n>] [--cache <n>]
               [--shards <n>] [--disk-cache <path>] [--disk-format <v1|v2>]
               [--request-timeout <ms>] [--fsync <never|always|N>]
               [--disk-breaker <n>] [--disk-probe-ms <ms>]
               [--idle-timeout-ms <ms>] [--max-requests-per-conn <n>]
               [--worker-id <k>]
               [--log-json <path|stderr>] [--log-level <error|warn|info|debug>]
               [--log-rate-limit <n>]
               [--fault <site:k=v,...>]...
  batsched fleet --http <addr> [--size <n>] [--retry-budget <n>]
               [--upstream-timeout-ms <ms>] [--probe-interval-ms <ms>]
               [--restart-backoff-ms <ms>] [--restart-backoff-max-ms <ms>]
               [--breaker <n>] [--drain-timeout-ms <ms>]
               [--start-timeout-ms <ms>] [--disk-cache <path>]
               [<serve options, passed through to every worker>]

ALGORITHMS (--algo): khan-vemuri (default), rakhmatov-dp, chowdhury,
                     annealing, random

Graphs are JSON as produced by `gen`/`demo`. Deadlines are minutes; the
battery cost is the Rakhmatov–Vrudhula apparent charge σ in mA·min.

`serve` runs the batch-scheduling daemon (see docs/SERVICE.md): --jsonl
answers one request document per stdin line on stdout; --http exposes
POST /v1/schedule (keep-alive connections), GET /v1/stats, GET /healthz
and POST /v1/shutdown on the given address (port 0 picks a free port; the
bound address is printed to stderr). --cache sizes the in-memory result
cache (entries, split over --shards independently locked shards);
--disk-cache persists results to an append-only record file so a restarted
daemon answers previously-seen requests warm; --disk-format picks the
record encoding new appends use (v2, the compact binary default, or v1
JSONL for compat — both formats always load, and compaction rewrites the
file in the chosen format); --fsync picks its durability
policy (never, always, or sync every N appends — default every 8).
--request-timeout bounds each request's queue-to-reply time; expired
requests answer a typed `timeout` error (HTTP 504) instead of hanging.
--disk-breaker trips the disk tier into degraded mode (memory + cold
solves) after N consecutive I/O errors; --disk-probe-ms sets how often a
probe request retries the sick tier until it heals and re-arms.
--log-json emits one structured JSON span per completed request (stage
timings, outcome, trace id, solver phase counters) to the given file or to
stderr; --log-level filters by severity (default info) and
--log-rate-limit caps span lines per second (default 5000; overflow is
counted, not written). The HTTP frontend also serves GET /v1/metrics
(Prometheus text: counters, gauges, per-stage latency histograms) and
GET /readyz (503 while the breaker is tripped, workers are below target,
or shutdown has begun).
--idle-timeout-ms and --max-requests-per-conn bound keep-alive connections
(both must be nonzero; defaults 5000 ms / 1024 requests). --worker-id marks
the daemon as fleet worker K (stamped on spans and exported as the
batsched_fleet_worker_id gauge).
--fault (repeatable) arms the fault-injection plane for chaos drills, e.g.
--fault solver-panic:after=3,count=1 or --fault disk-append:count=10
(sites: disk-read, disk-append, disk-write, solver-panic, solver-latency,
conn-drop, conn-stall; params: after, count, every, ms, key).

`fleet` runs a front-tier router (see docs/FLEET.md) that spawns and
supervises --size `batsched serve` worker processes on loopback ports and
routes each request by folded content-hash bits to a consistent worker, so
every worker's cache stays hot on its slice. Crashed or wedged workers are
respawned with exponential backoff (--restart-backoff-ms, doubling to
--restart-backoff-max-ms, breaker trips after --breaker consecutive
failures); failed exchanges are retried on surviving workers up to
--retry-budget extra attempts before a typed `upstream_unavailable` 503.
With --disk-cache each worker persists to its own <path>.shard-K file.
The router serves POST /v1/schedule, GET /healthz, /readyz, /v1/fleet,
/v1/metrics, POST /v1/fleet/drain/<k> and POST /v1/shutdown. Unrecognised
serve options (--workers, --request-timeout, --fault, ...) are passed
through to every worker.";

/// Parsed option map: positional args + `--key value` pairs + `--flag`s.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Opts {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` pairs.
    pub options: Vec<(String, String)>,
    /// Bare `--flag`s.
    pub flags: Vec<String>,
}

impl Opts {
    /// Looks up the value of `--key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value passed for a repeatable `--key`, in order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.options
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// `true` when `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses a required float option.
    ///
    /// # Errors
    ///
    /// [`CliError`] when missing or not a number.
    pub fn require_f64(&self, key: &str) -> Result<f64, CliError> {
        let raw = self
            .get(key)
            .ok_or_else(|| err(format!("missing required option --{key}")))?;
        raw.parse()
            .map_err(|_| err(format!("--{key} expects a number, got '{raw}'")))
    }
}

/// Splits raw arguments into positionals, options and flags.
///
/// # Errors
///
/// [`CliError`] when a `--key` that expects a value trails the list.
pub fn parse_args(args: &[String]) -> Result<Opts, CliError> {
    const VALUE_OPTS: [&str; 35] = [
        "deadline",
        "algo",
        "beta",
        "capacity",
        "family",
        "tasks",
        "points",
        "seed",
        "http",
        "workers",
        "queue",
        "cache",
        "shards",
        "disk-cache",
        "disk-format",
        "request-timeout",
        "fsync",
        "fault",
        "disk-breaker",
        "disk-probe-ms",
        "idle-timeout-ms",
        "max-requests-per-conn",
        "worker-id",
        "log-json",
        "log-level",
        "log-rate-limit",
        "size",
        "retry-budget",
        "upstream-timeout-ms",
        "probe-interval-ms",
        "restart-backoff-ms",
        "restart-backoff-max-ms",
        "breaker",
        "drain-timeout-ms",
        "start-timeout-ms",
    ];
    let mut opts = Opts::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUE_OPTS.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| err(format!("option --{name} expects a value")))?;
                opts.options.push((name.to_string(), v.clone()));
            } else {
                opts.flags.push(name.to_string());
            }
        } else {
            opts.positional.push(a.clone());
        }
    }
    Ok(opts)
}

fn algo_by_name(name: &str, beta: f64) -> Result<Box<dyn Scheduler>, CliError> {
    let config = SchedulerConfig {
        beta,
        ..SchedulerConfig::paper()
    };
    Ok(match name {
        "khan-vemuri" | "ours" => Box::new(KhanVemuri { config }),
        "rakhmatov-dp" | "dp" => Box::new(RakhmatovDp::default()),
        "chowdhury" => Box::new(ChowdhuryScaling),
        "annealing" | "sa" => Box::new(SimulatedAnnealing::default()),
        "random" => Box::new(RandomSearch::default()),
        other => return Err(err(format!("unknown algorithm '{other}'"))),
    })
}

fn load_graph(path: &str) -> Result<TaskGraph, CliError> {
    let raw = std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    gio::from_json(&raw).map_err(|e| err(format!("{path}: {e}")))
}

/// Runs the CLI against `args` (without the program name), writing human
/// output to `out`. Returns `Err` for user errors (exit code 2 in `main`).
///
/// # Errors
///
/// [`CliError`] with a one-line message for any user-facing failure.
pub fn run(args: &[String], out: &mut String) -> Result<(), CliError> {
    let Some(cmd) = args.first().map(String::as_str) else {
        out.push_str(USAGE);
        out.push('\n');
        return Ok(());
    };
    let rest: Vec<String> = args[1..].to_vec();
    let opts = parse_args(&rest)?;
    match cmd {
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            out.push('\n');
            Ok(())
        }
        "schedule" => cmd_schedule(&opts, out),
        "trace" => cmd_trace(&opts, out),
        "compare" => cmd_compare(&opts, out),
        "simulate" => cmd_simulate(&opts, out),
        "gen" => cmd_gen(&opts, out),
        "demo" => cmd_demo(&opts, out),
        "dot" => cmd_dot(&opts, out),
        "serve" => cmd_serve(&opts, out),
        "fleet" => cmd_fleet(&opts, out),
        other => Err(err(format!(
            "unknown command '{other}' (try `batsched help`)"
        ))),
    }
}

fn cmd_schedule(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| err("schedule needs a graph file"))?;
    let g = load_graph(path)?;
    let deadline = Minutes::new(opts.require_f64("deadline")?);
    let beta = opts.get("beta").map_or(Ok(0.273), |b| {
        b.parse::<f64>().map_err(|_| err("--beta expects a number"))
    })?;
    let algo = algo_by_name(opts.get("algo").unwrap_or("khan-vemuri"), beta)?;
    let s = algo
        .schedule(&g, deadline)
        .map_err(|e| err(e.to_string()))?;
    let model = RvModel::new(beta, 10).map_err(|e| err(e.to_string()))?;
    if opts.flag("json") {
        let _ = writeln!(
            out,
            "{}",
            serde_json::to_string_pretty(&s).expect("schedules serialise")
        );
    } else {
        let _ = writeln!(out, "algorithm : {}", algo.name());
        let _ = writeln!(out, "schedule  : {}", s.display(&g));
        let _ = writeln!(
            out,
            "makespan  : {:.1} (deadline {:.1})",
            s.makespan(&g),
            deadline
        );
        let _ = writeln!(out, "battery σ : {:.0}", s.battery_cost(&g, &model));
        let _ = writeln!(out, "direct    : {:.0}", s.direct_charge(&g));
    }
    Ok(())
}

fn cmd_trace(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| err("trace needs a graph file"))?;
    let g = load_graph(path)?;
    let deadline = Minutes::new(opts.require_f64("deadline")?);
    let beta = opts.get("beta").map_or(Ok(0.273), |b| {
        b.parse::<f64>().map_err(|_| err("--beta expects a number"))
    })?;
    let config = SchedulerConfig {
        beta,
        ..SchedulerConfig::paper()
    };
    let sol = batsched_core::schedule(&g, deadline, &config).map_err(|e| err(e.to_string()))?;
    out.push_str(&batsched_core::report::summary(&g, &sol));
    out.push('\n');
    out.push_str(&batsched_core::report::sequences_table(&g, &sol));
    out.push('\n');
    out.push_str(&batsched_core::report::windows_table(&g, &sol));
    Ok(())
}

fn cmd_compare(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| err("compare needs a graph file"))?;
    let g = load_graph(path)?;
    let deadline = Minutes::new(opts.require_f64("deadline")?);
    let beta = opts.get("beta").map_or(Ok(0.273), |b| {
        b.parse::<f64>().map_err(|_| err("--beta expects a number"))
    })?;
    let model = RvModel::new(beta, 10).map_err(|e| err(e.to_string()))?;
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>10}",
        "algorithm", "sigma mA·min", "makespan"
    );
    for name in [
        "khan-vemuri",
        "rakhmatov-dp",
        "chowdhury",
        "annealing",
        "random",
    ] {
        let algo = algo_by_name(name, beta)?;
        match algo.schedule(&g, deadline) {
            Ok(s) => {
                let _ = writeln!(
                    out,
                    "{:<22} {:>12.0} {:>10.1}",
                    algo.name(),
                    s.battery_cost(&g, &model).value(),
                    s.makespan(&g).value()
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:<22} failed: {e}", algo.name());
            }
        }
    }
    Ok(())
}

fn cmd_simulate(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| err("simulate needs a graph file"))?;
    let g = load_graph(path)?;
    let deadline = Minutes::new(opts.require_f64("deadline")?);
    let capacity = MilliAmpMinutes::new(opts.require_f64("capacity")?);
    let plan = batsched_core::schedule(&g, deadline, &SchedulerConfig::paper())
        .map_err(|e| err(e.to_string()))?;
    let sim = Simulator::paper(capacity, Some(deadline));
    let report = sim.run(&g, &plan.schedule, &RvModel::date05());
    let _ = writeln!(out, "{report}");
    for e in &report.events {
        let _ = writeln!(out, "  {e:?}");
    }
    if opts.flag("soc-csv") {
        out.push_str(&report.soc_csv());
    }
    Ok(())
}

fn cmd_gen(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let family = opts
        .get("family")
        .ok_or_else(|| err("gen needs --family"))?;
    let n: usize = opts
        .get("tasks")
        .unwrap_or("12")
        .parse()
        .map_err(|_| err("--tasks expects an integer"))?;
    let m: usize = opts
        .get("points")
        .unwrap_or("5")
        .parse()
        .map_err(|_| err("--points expects an integer"))?;
    let seed: u64 = opts
        .get("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| err("--seed expects an integer"))?;
    if m < 2 {
        return Err(err("--points must be at least 2"));
    }
    let factors: Vec<f64> = (0..m)
        .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
        .collect();
    let params = TaskParams {
        factors,
        ..TaskParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match family {
        "chain" => synth::chain(n, &params, &mut rng),
        "fork-join" => synth::fork_join(&[n.saturating_sub(2).max(1)], &params, &mut rng),
        "layered" => synth::layered(n.div_ceil(4).max(2), 4, 0.35, &params, &mut rng),
        "series-parallel" => synth::series_parallel(3, &params, &mut rng),
        "random" => synth::random_dag(n, 0.3, &params, &mut rng),
        other => return Err(err(format!("unknown family '{other}'"))),
    }
    .map_err(|e| err(e.to_string()))?;
    out.push_str(&gio::to_json(&g));
    out.push('\n');
    Ok(())
}

fn cmd_demo(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let which = opts
        .positional
        .first()
        .ok_or_else(|| err("demo needs 'g2' or 'g3'"))?;
    let g = match which.as_str() {
        "g2" => batsched_taskgraph::paper::g2(),
        "g3" => batsched_taskgraph::paper::g3(),
        other => return Err(err(format!("unknown demo '{other}' (g2 or g3)"))),
    };
    out.push_str(&gio::to_json(&g));
    out.push('\n');
    Ok(())
}

/// Parses a sizing option (`--workers`, `--queue`, `--cache`).
fn sizing(opts: &Opts, key: &str, default: usize, min: usize) -> Result<usize, CliError> {
    let Some(raw) = opts.get(key) else {
        return Ok(default);
    };
    let n: usize = raw
        .parse()
        .map_err(|_| err(format!("--{key} expects an integer, got '{raw}'")))?;
    if n < min {
        return Err(err(format!("--{key} must be at least {min}")));
    }
    Ok(n)
}

/// Parses `--fsync never|always|N` into a [`batsched_service::FsyncPolicy`].
fn fsync_policy(opts: &Opts) -> Result<batsched_service::FsyncPolicy, CliError> {
    use batsched_service::FsyncPolicy;
    match opts.get("fsync") {
        None => Ok(FsyncPolicy::default()),
        Some("never") => Ok(FsyncPolicy::Never),
        Some("always") => Ok(FsyncPolicy::Always),
        Some(raw) => {
            let n: u32 = raw.parse().map_err(|_| {
                err(format!(
                    "--fsync expects never, always or an integer N (sync every N appends), got '{raw}'"
                ))
            })?;
            if n == 0 {
                return Err(err("--fsync must be at least 1 (or never/always)"));
            }
            Ok(FsyncPolicy::EveryN(n))
        }
    }
}

/// Parses `--disk-format v1|v2` into a [`batsched_service::DiskFormat`].
fn disk_format(opts: &Opts) -> Result<batsched_service::DiskFormat, CliError> {
    use batsched_service::DiskFormat;
    match opts.get("disk-format") {
        None => Ok(DiskFormat::default()),
        Some("v1") => Ok(DiskFormat::V1),
        Some("v2") => Ok(DiskFormat::V2),
        Some(raw) => Err(err(format!("--disk-format expects v1 or v2, got '{raw}'"))),
    }
}

fn cmd_serve(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    use batsched_service::{
        FaultPlane, FaultRule, HttpServer, Level, LogTarget, Service, ServiceConfig, StartError,
    };
    let request_timeout = match opts.get("request-timeout") {
        None => None,
        Some(raw) => {
            let ms: u64 = raw.parse().map_err(|_| {
                err(format!(
                    "--request-timeout expects an integer (milliseconds), got '{raw}'"
                ))
            })?;
            Some(std::time::Duration::from_millis(ms))
        }
    };
    let cfg = ServiceConfig {
        workers: sizing(opts, "workers", 2, 1)?,
        queue_capacity: sizing(opts, "queue", 64, 1)?,
        cache_capacity: sizing(opts, "cache", 256, 1)?,
        cache_shards: sizing(opts, "shards", 8, 1)?,
        disk_path: opts.get("disk-cache").map(std::path::PathBuf::from),
        disk_format: disk_format(opts)?,
        request_timeout,
        fsync_policy: fsync_policy(opts)?,
        disk_breaker_threshold: u32::try_from(sizing(opts, "disk-breaker", 3, 1)?)
            .map_err(|_| err("--disk-breaker is out of range"))?,
        disk_probe_interval: std::time::Duration::from_millis(sizing(
            opts,
            "disk-probe-ms",
            2_000,
            1,
        )? as u64),
        log_json: opts.get("log-json").map(LogTarget::parse),
        log_level: match opts.get("log-level") {
            None => Level::Info,
            Some(raw) => Level::parse(raw).ok_or_else(|| {
                err(format!(
                    "--log-level expects error, warn, info or debug, got '{raw}'"
                ))
            })?,
        },
        log_rate_limit: u32::try_from(sizing(opts, "log-rate-limit", 5_000, 1)?)
            .map_err(|_| err("--log-rate-limit is out of range"))?,
        // Zero values parse here but are rejected by the service's typed
        // config validation, like --request-timeout 0.
        idle_timeout: std::time::Duration::from_millis(
            sizing(opts, "idle-timeout-ms", 5_000, 0)? as u64
        ),
        max_requests_per_conn: sizing(opts, "max-requests-per-conn", 1024, 0)?,
        fleet_worker: match opts.get("worker-id") {
            None => None,
            Some(raw) => Some(
                raw.parse::<u32>()
                    .map_err(|_| err(format!("--worker-id expects an integer, got '{raw}'")))?,
            ),
        },
    };
    let fault_specs = opts.get_all("fault");
    let faults = if fault_specs.is_empty() {
        FaultPlane::disarmed()
    } else {
        let rules = fault_specs
            .iter()
            .map(|spec| FaultRule::parse(spec).map_err(|e| err(format!("--fault {spec}: {e}"))))
            .collect::<Result<Vec<_>, _>>()?;
        // Loud on purpose: an armed daemon fails requests by design.
        eprintln!("fault plane ARMED with {} rule(s)", rules.len());
        FaultPlane::armed(rules)
    };
    let start = |cfg: ServiceConfig| {
        let disk = cfg.disk_path.clone();
        Service::try_start_with_faults(cfg, faults.clone()).map_err(|e| match e {
            StartError::Io(io) => err(format!(
                "cannot open disk cache {}: {io}",
                disk.as_deref()
                    .unwrap_or(std::path::Path::new("?"))
                    .display()
            )),
            config => err(config.to_string()),
        })
    };
    match (opts.get("http"), opts.flag("jsonl")) {
        (Some(addr), false) => {
            let svc = std::sync::Arc::new(start(cfg)?);
            let server = HttpServer::bind(svc.clone(), addr)
                .map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
            // Announced on stderr immediately — `out` is only printed after
            // the daemon exits, and scripts need the resolved port up front.
            eprintln!("listening on http://{}", server.local_addr());
            let bound = server.local_addr();
            server.wait();
            svc.shutdown();
            let _ = writeln!(out, "served on http://{bound}; shutdown complete");
            let _ = writeln!(out, "{}", svc.stats_json());
            Ok(())
        }
        (None, true) => {
            let svc = start(cfg)?;
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            let summary = batsched_service::run_jsonl(&svc, stdin.lock(), &mut stdout)
                .map_err(|e| err(format!("jsonl session failed: {e}")))?;
            svc.shutdown();
            // stdout carries only the response stream; the summary goes to
            // stderr so pipe consumers never see a non-JSON trailer.
            eprintln!(
                "served {} requests ({} errors of which {} timeouts, {} cache hits)",
                summary.requests, summary.errors, summary.timeouts, summary.cache_hits
            );
            Ok(())
        }
        (Some(_), true) => Err(err("serve takes either --http <addr> or --jsonl, not both")),
        (None, false) => Err(err("serve needs --http <addr> or --jsonl")),
    }
}

fn cmd_fleet(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    use batsched_service::{Fleet, FleetConfig, ProcessLauncher};
    use std::time::Duration;
    let addr = opts
        .get("http")
        .ok_or_else(|| err("fleet needs --http <addr>"))?;
    let ms = |key: &str, default: u64| -> Result<u64, CliError> {
        match opts.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                err(format!(
                    "--{key} expects an integer (milliseconds), got '{raw}'"
                ))
            }),
        }
    };
    // Zero sizes/durations parse here and surface as typed fleet config
    // errors from Fleet::start, before anything is spawned.
    let cfg = FleetConfig {
        size: sizing(opts, "size", 3, 0)?,
        retry_budget: sizing(opts, "retry-budget", 2, 0)?,
        upstream_timeout: Duration::from_millis(ms("upstream-timeout-ms", 10_000)?),
        probe_interval: Duration::from_millis(ms("probe-interval-ms", 150)?),
        backoff_base: Duration::from_millis(ms("restart-backoff-ms", 200)?),
        backoff_max: Duration::from_millis(ms("restart-backoff-max-ms", 5_000)?),
        breaker_threshold: u32::try_from(sizing(opts, "breaker", 3, 0)?)
            .map_err(|_| err("--breaker is out of range"))?,
        drain_timeout: Duration::from_millis(ms("drain-timeout-ms", 30_000)?),
        start_timeout: Duration::from_millis(ms("start-timeout-ms", 30_000)?),
    };
    let size = cfg.size;
    let program = std::env::current_exe()
        .map_err(|e| err(format!("cannot locate the batsched binary: {e}")))?;
    let mut launcher = ProcessLauncher::new(program);
    launcher.disk_base = opts.get("disk-cache").map(std::path::PathBuf::from);
    // Worker-level serve options pass through verbatim; each worker adds
    // its own --http 127.0.0.1:0, --worker-id and --disk-cache shard.
    const PASS_THROUGH: [&str; 14] = [
        "workers",
        "queue",
        "cache",
        "shards",
        "disk-format",
        "request-timeout",
        "fsync",
        "disk-breaker",
        "disk-probe-ms",
        "idle-timeout-ms",
        "max-requests-per-conn",
        "log-json",
        "log-level",
        "log-rate-limit",
    ];
    for key in PASS_THROUGH {
        if let Some(v) = opts.get(key) {
            launcher.args.push(format!("--{key}"));
            launcher.args.push(v.to_string());
        }
    }
    for spec in opts.get_all("fault") {
        launcher.args.push("--fault".to_string());
        launcher.args.push(spec.to_string());
    }
    let fleet = Fleet::start(cfg, Box::new(launcher), addr).map_err(|e| err(e.to_string()))?;
    let bound = fleet.local_addr();
    // Announced on stderr immediately, like `serve` — scripts grep for
    // the resolved port before sending traffic.
    eprintln!("fleet of {size} worker(s); listening on http://{bound}");
    fleet.wait();
    let _ = writeln!(out, "fleet served on http://{bound}; shutdown complete");
    Ok(())
}

fn cmd_dot(opts: &Opts, out: &mut String) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| err("dot needs a graph file"))?;
    let g = load_graph(path)?;
    out.push_str(&gio::to_dot(&g));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_splits_kinds() {
        let o = parse_args(&sv(&["g.json", "--deadline", "75", "--json"])).unwrap();
        assert_eq!(o.positional, vec!["g.json"]);
        assert_eq!(o.get("deadline"), Some("75"));
        assert!(o.flag("json"));
        assert!(!o.flag("quiet"));
    }

    #[test]
    fn parse_args_rejects_trailing_value_option() {
        assert!(parse_args(&sv(&["--deadline"])).is_err());
    }

    #[test]
    fn no_args_prints_usage() {
        let mut out = String::new();
        run(&[], &mut out).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut out = String::new();
        let e = run(&sv(&["frobnicate"]), &mut out).unwrap_err();
        assert!(e.0.contains("unknown command"));
    }

    #[test]
    fn demo_and_schedule_round_trip() {
        let dir = std::env::temp_dir().join("batsched_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g2.json");
        let mut out = String::new();
        run(&sv(&["demo", "g2"]), &mut out).unwrap();
        std::fs::write(&path, &out).unwrap();

        let mut out = String::new();
        run(
            &sv(&["schedule", path.to_str().unwrap(), "--deadline", "75"]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("battery σ"), "{out}");
        assert!(out.contains("khan-vemuri"));

        let mut out = String::new();
        run(
            &sv(&["compare", path.to_str().unwrap(), "--deadline", "75"]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("rakhmatov-dp"));

        let mut out = String::new();
        run(
            &sv(&[
                "simulate",
                path.to_str().unwrap(),
                "--deadline",
                "75",
                "--capacity",
                "50000",
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("success"), "{out}");
    }

    #[test]
    fn gen_produces_loadable_graphs() {
        for family in ["chain", "fork-join", "layered", "series-parallel", "random"] {
            let mut out = String::new();
            run(&sv(&["gen", "--family", family, "--tasks", "8"]), &mut out).unwrap();
            let g = gio::from_json(&out).unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(g.task_count() >= 1);
        }
    }

    #[test]
    fn trace_renders_tables() {
        let dir = std::env::temp_dir().join("batsched_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g3t.json");
        let mut out = String::new();
        run(&sv(&["demo", "g3"]), &mut out).unwrap();
        std::fs::write(&path, &out).unwrap();
        let mut out = String::new();
        run(
            &sv(&["trace", path.to_str().unwrap(), "--deadline", "230"]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("win 4:5"), "{out}");
        assert!(out.contains("S1w"));
    }

    #[test]
    fn dot_renders() {
        let dir = std::env::temp_dir().join("batsched_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g3.json");
        let mut out = String::new();
        run(&sv(&["demo", "g3"]), &mut out).unwrap();
        std::fs::write(&path, &out).unwrap();
        let mut out = String::new();
        run(&sv(&["dot", path.to_str().unwrap()]), &mut out).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn schedule_reports_infeasible_deadline() {
        let dir = std::env::temp_dir().join("batsched_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g2b.json");
        let mut out = String::new();
        run(&sv(&["demo", "g2"]), &mut out).unwrap();
        std::fs::write(&path, &out).unwrap();
        let mut out = String::new();
        let e = run(
            &sv(&["schedule", path.to_str().unwrap(), "--deadline", "10"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("infeasible"), "{e}");
    }

    #[test]
    fn serve_argument_validation() {
        let mut out = String::new();
        let e = run(&sv(&["serve"]), &mut out).unwrap_err();
        assert!(e.0.contains("--http"), "{e}");
        let e = run(&sv(&["serve", "--http", "x", "--jsonl"]), &mut out).unwrap_err();
        assert!(e.0.contains("not both"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--workers", "0"]), &mut out).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--queue", "soon"]), &mut out).unwrap_err();
        assert!(e.0.contains("integer"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--shards", "0"]), &mut out).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(&sv(&["serve", "--http", "256.0.0.1:bad"]), &mut out).unwrap_err();
        assert!(e.0.contains("cannot bind"), "{e}");
        let e = run(
            &sv(&[
                "serve",
                "--jsonl",
                "--disk-cache",
                "/nonexistent-dir/batsched/cache.jsonl",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("cannot open disk cache"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--cache", "0"]), &mut out).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(
            &sv(&["serve", "--jsonl", "--request-timeout", "soon"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("milliseconds"), "{e}");
        // A zero timeout parses at the CLI but is rejected by the service's
        // typed config validation — the message must surface verbatim.
        let e = run(
            &sv(&["serve", "--jsonl", "--request-timeout", "0"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("invalid service config"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--fsync", "sometimes"]), &mut out).unwrap_err();
        assert!(e.0.contains("never, always"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--disk-format", "v3"]), &mut out).unwrap_err();
        assert!(e.0.contains("v1 or v2"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--fsync", "0"]), &mut out).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(
            &sv(&["serve", "--jsonl", "--log-level", "chatty"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("error, warn, info or debug"), "{e}");
        let e = run(
            &sv(&["serve", "--jsonl", "--log-rate-limit", "0"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(
            &sv(&[
                "serve",
                "--jsonl",
                "--log-json",
                "/nonexistent-dir/batsched/spans.jsonl",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("cannot open"), "{e}");
        let e = run(
            &sv(&["serve", "--jsonl", "--fault", "warp-core:breach=1"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("--fault warp-core:breach=1"), "{e}");
        // Zero connection limits parse at the CLI but are rejected by the
        // service's typed config validation.
        let e = run(
            &sv(&["serve", "--jsonl", "--idle-timeout-ms", "0"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("invalid service config"), "{e}");
        let e = run(
            &sv(&["serve", "--jsonl", "--max-requests-per-conn", "0"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("invalid service config"), "{e}");
        let e = run(&sv(&["serve", "--jsonl", "--worker-id", "one"]), &mut out).unwrap_err();
        assert!(e.0.contains("--worker-id expects an integer"), "{e}");
    }

    #[test]
    fn fleet_argument_validation() {
        let mut out = String::new();
        let e = run(&sv(&["fleet"]), &mut out).unwrap_err();
        assert!(e.0.contains("--http"), "{e}");
        // Typed fleet config errors surface before anything is spawned.
        let e = run(
            &sv(&["fleet", "--http", "127.0.0.1:0", "--size", "0"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("fleet size must be >= 1"), "{e}");
        let e = run(
            &sv(&["fleet", "--http", "127.0.0.1:0", "--breaker", "0"]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("breaker_threshold must be >= 1"), "{e}");
        let e = run(
            &sv(&[
                "fleet",
                "--http",
                "127.0.0.1:0",
                "--probe-interval-ms",
                "soon",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(e.0.contains("milliseconds"), "{e}");
    }

    #[test]
    fn get_all_collects_repeated_options() {
        let o = parse_args(&sv(&[
            "--fault",
            "solver-panic:count=1",
            "--fault",
            "disk-append:count=3",
        ]))
        .unwrap();
        assert_eq!(
            o.get_all("fault"),
            vec!["solver-panic:count=1", "disk-append:count=3"]
        );
        assert!(o.get_all("fsync").is_empty());
    }

    #[test]
    fn fsync_option_parses_all_forms() {
        use batsched_service::FsyncPolicy;
        let policy = |args: &[&str]| fsync_policy(&parse_args(&sv(args)).unwrap());
        assert_eq!(policy(&[]).unwrap(), FsyncPolicy::default());
        assert_eq!(policy(&["--fsync", "never"]).unwrap(), FsyncPolicy::Never);
        assert_eq!(policy(&["--fsync", "always"]).unwrap(), FsyncPolicy::Always);
        assert_eq!(policy(&["--fsync", "16"]).unwrap(), FsyncPolicy::EveryN(16));
        assert!(policy(&["--fsync", "0"]).is_err());
    }

    #[test]
    fn disk_format_option_parses_all_forms() {
        use batsched_service::DiskFormat;
        let fmt = |args: &[&str]| disk_format(&parse_args(&sv(args)).unwrap());
        assert_eq!(fmt(&[]).unwrap(), DiskFormat::V2);
        assert_eq!(fmt(&["--disk-format", "v1"]).unwrap(), DiskFormat::V1);
        assert_eq!(fmt(&["--disk-format", "v2"]).unwrap(), DiskFormat::V2);
        assert!(fmt(&["--disk-format", "jsonl"]).is_err());
    }

    #[test]
    fn every_algo_name_resolves() {
        for name in [
            "khan-vemuri",
            "ours",
            "rakhmatov-dp",
            "dp",
            "chowdhury",
            "annealing",
            "sa",
            "random",
        ] {
            assert!(algo_by_name(name, 0.273).is_ok(), "{name}");
        }
        assert!(algo_by_name("nope", 0.273).is_err());
    }
}
