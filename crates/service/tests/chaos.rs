//! Chaos tests: every fault-tolerance path driven by injected faults —
//! solver panics (isolation + respawn), request deadlines (call-side and
//! queue-shed), the disk-tier circuit breaker (trip, degraded mode,
//! probe re-arm), worker-death regression at the HTTP frontend, graceful
//! shutdown under injected latency, and fault attribution through the
//! observability surfaces (span log, `/v1/metrics`, `/readyz`).

use batsched_service::prelude::*;
use batsched_service::{LogTarget, Service};
use batsched_taskgraph::paper::g2;
use batsched_taskgraph::synth::{layered, Rounding, ScalingScheme, TaskParams};
use batsched_taskgraph::TaskGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn g2_body() -> String {
    serde_json::to_string(&ScheduleRequest::new(g2(), 75.0)).expect("serialises")
}

/// A unique (per `seed`) request body, so every call is a cold solve.
fn unique_body(seed: u64) -> String {
    let params = TaskParams {
        current_range: (100.0, 900.0),
        duration_range: (2.0, 12.0),
        factors: vec![1.0, 0.8, 0.6],
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::PAPER,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let g: TaskGraph = layered(3, 4, 0.35, &params, &mut rng).expect("valid generator config");
    let lo = batsched_taskgraph::analysis::min_makespan(&g).value();
    let hi = batsched_taskgraph::analysis::max_makespan(&g).value();
    let deadline = lo + (hi - lo) * 0.7;
    serde_json::to_string(&ScheduleRequest::new(g, deadline)).expect("serialises")
}

fn tmp_disk(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("batsched_chaos_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = dir.join(format!("{name}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

// --------------------------------------------- panic isolation + respawn

#[test]
fn solver_panic_answers_typed_error_and_respawns_the_worker() {
    // The panic targets the g2 request specifically (key predicate on its
    // deadline spelling); everything else must keep working.
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::SolverPanic)
        .key_contains("\"deadline\":75")
        .count(1)]);
    let svc = Service::try_start_with_faults(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        faults,
    )
    .unwrap();

    let reply = svc.call(g2_body());
    assert_eq!(reply.disposition, Disposition::Internal);
    let err: ErrorResponse = serde_json::from_str(&reply.body).expect("typed error body");
    assert_eq!(err.error, "internal");
    assert!(err.message.contains("panicked"), "{}", err.message);

    // The pool is back at full strength: the same request (fault budget
    // spent) and a fresh one both get real answers from the respawned
    // worker.
    let retried = svc.call(g2_body());
    assert_eq!(retried.disposition, Disposition::Ok { cached: false });
    let other = svc.call(unique_body(1));
    assert!(matches!(other.disposition, Disposition::Ok { .. }));

    let stats = svc.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
    assert_eq!(stats.internal_errors, 1);
    svc.shutdown();
}

#[test]
fn worker_death_never_drops_a_submitted_request() {
    // Regression: pre-isolation, a panicking worker dropped its reply
    // sender and (with the pool dead) later jobs sat in the queue forever.
    // Now every accepted request is answered: the panicking one with a
    // typed internal error, queued ones by the respawned worker.
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::SolverPanic).count(1)]);
    let svc = Service::try_start_with_faults(
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        },
        faults,
    )
    .unwrap();
    let receivers: Vec<_> = (0..6)
        .map(|i| svc.submit(unique_body(100 + i)).expect("queue has room"))
        .collect();
    let mut internal = 0;
    for rx in receivers {
        let reply = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("every accepted request is answered");
        match reply.disposition {
            Disposition::Ok { .. } => {}
            Disposition::Internal => internal += 1,
            other => panic!("unexpected disposition {other:?}"),
        }
    }
    assert_eq!(internal, 1, "exactly the injected panic");
    assert_eq!(svc.stats().worker_respawns, 1);
    svc.shutdown();
}

// ----------------------------------------------------- request deadlines

#[test]
fn slow_solve_times_out_with_typed_error() {
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::SolverLatency)
        .latency(Duration::from_millis(400))
        .count(1)]);
    let svc = Service::try_start_with_faults(
        ServiceConfig {
            workers: 1,
            request_timeout: Some(Duration::from_millis(80)),
            ..ServiceConfig::default()
        },
        faults,
    )
    .unwrap();
    let reply = svc.call(unique_body(2));
    assert_eq!(reply.disposition, Disposition::Timeout);
    let err: ErrorResponse = serde_json::from_str(&reply.body).expect("typed error body");
    assert_eq!(err.error, "timeout");
    assert_eq!(svc.stats().timeouts, 1);
    // The worker is not poisoned by a timed-out request: once the slow
    // solve drains, fresh requests answer fine.
    std::thread::sleep(Duration::from_millis(500));
    let fine = svc.call(unique_body(3));
    assert!(
        matches!(fine.disposition, Disposition::Ok { .. }),
        "{fine:?}"
    );
    svc.shutdown();
}

#[test]
fn jobs_expired_in_the_queue_are_shed_without_solving() {
    // One worker stuck 400ms; a 100ms deadline expires the queued jobs
    // behind it. The worker sheds them with a typed timeout instead of
    // solving work nobody is waiting for.
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::SolverLatency)
        .latency(Duration::from_millis(400))
        .count(1)]);
    let svc = Service::try_start_with_faults(
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            request_timeout: Some(Duration::from_millis(100)),
            ..ServiceConfig::default()
        },
        faults,
    )
    .unwrap();
    // Raw submits bypass `call`'s own deadline wait, so the replies seen
    // here are exactly what the worker sent.
    let slow = svc.submit(unique_body(10)).unwrap();
    let queued: Vec<_> = (0..3)
        .map(|i| svc.submit(unique_body(20 + i)).unwrap())
        .collect();
    let first = slow.recv_timeout(Duration::from_secs(60)).unwrap();
    assert!(
        matches!(first.disposition, Disposition::Ok { .. }),
        "the slow request itself finishes (only its caller gave up): {first:?}"
    );
    let mut solved_count = 0;
    for rx in queued {
        let reply = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        match reply.disposition {
            Disposition::Timeout => {
                let err: ErrorResponse =
                    serde_json::from_str(&reply.body).expect("typed error body");
                assert_eq!(err.error, "timeout");
            }
            Disposition::Ok { .. } => solved_count += 1,
            other => panic!("unexpected disposition {other:?}"),
        }
    }
    assert!(
        solved_count < 3,
        "at least one queued job expired behind the 400ms solve"
    );
    svc.shutdown();
}

// ------------------------------------------------- disk breaker lifecycle

#[test]
fn disk_breaker_trips_to_degraded_mode_and_rearms() {
    let path = tmp_disk("breaker");
    // Appends fail 4 times, then heal. Threshold 2 trips the breaker on
    // the second error; probes burn the remaining budget and re-arm.
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::DiskAppend).count(4)]);
    let svc = Service::try_start_with_faults(
        ServiceConfig {
            workers: 1,
            disk_path: Some(path.clone()),
            disk_breaker_threshold: 2,
            disk_probe_interval: Duration::from_millis(50),
            ..ServiceConfig::default()
        },
        faults,
    )
    .unwrap();

    // Two cold solves, two failed appends, breaker trips. The requests
    // themselves still succeed: a disk failure never fails a solvable
    // request.
    for seed in 0..2 {
        let reply = svc.call(unique_body(1000 + seed));
        assert_eq!(reply.disposition, Disposition::Ok { cached: false });
    }
    let stats = svc.stats();
    assert!(stats.disk_degraded, "breaker open after threshold errors");
    assert_eq!(stats.disk_breaker_trips, 1);
    assert_eq!(stats.disk_errors, 2);
    assert_eq!(stats.disk_entries, 0, "nothing reached the sick disk");

    // While degraded, traffic is served from memory + cold solves with no
    // disk I/O at all (the error counter only moves on probes).
    let reply = svc.call(unique_body(1100));
    assert_eq!(reply.disposition, Disposition::Ok { cached: false });

    // Probes (one per interval) burn the remaining fault budget and then
    // succeed, re-arming the tier.
    let mut rearmed = false;
    for seed in 0..100u64 {
        std::thread::sleep(Duration::from_millis(60));
        let reply = svc.call(unique_body(2000 + seed));
        assert!(matches!(reply.disposition, Disposition::Ok { .. }));
        if !svc.stats().disk_degraded {
            rearmed = true;
            break;
        }
    }
    assert!(rearmed, "probe interval must re-arm a healed disk");
    let stats = svc.stats();
    assert_eq!(stats.disk_rearms, 1);
    assert_eq!(stats.disk_errors, 4, "the whole fault budget was observed");
    assert!(stats.disk_entries > 0, "healed tier persists again");
    svc.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn disk_read_errors_fall_through_to_a_cold_solve() {
    let path = tmp_disk("read_faults");
    // Warm the disk tier, then restart with every read failing: the warm
    // key must still be answered (by re-solving), never erred.
    let cfg = ServiceConfig {
        workers: 1,
        disk_path: Some(path.clone()),
        ..ServiceConfig::default()
    };
    let svc = Service::try_start(cfg.clone()).unwrap();
    let cold = svc.call(g2_body());
    assert_eq!(cold.disposition, Disposition::Ok { cached: false });
    svc.shutdown();

    let faults = FaultPlane::armed([FaultRule::always(FaultSite::DiskRead)]);
    let svc = Service::try_start_with_faults(cfg, faults).unwrap();
    let reply = svc.call(g2_body());
    assert_eq!(
        reply.disposition,
        Disposition::Ok { cached: false },
        "read error downgraded the hit to a solve, not an error"
    );
    assert_eq!(reply.body, cold.body, "re-solve is bit-identical");
    let stats = svc.stats();
    assert_eq!(stats.disk_hits, 0);
    assert!(stats.disk_errors >= 1);
    svc.shutdown();
    std::fs::remove_file(&path).unwrap();
}

// -------------------------------------------------- shutdown under load

#[test]
fn shutdown_under_load_answers_every_accepted_request_exactly_once() {
    let path = tmp_disk("drain");
    // Every solve carries injected latency, so shutdown arrives with jobs
    // both in flight and queued.
    let faults = FaultPlane::armed([
        FaultRule::always(FaultSite::SolverLatency).latency(Duration::from_millis(25))
    ]);
    let svc = Arc::new(
        Service::try_start_with_faults(
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                disk_path: Some(path.clone()),
                ..ServiceConfig::default()
            },
            faults,
        )
        .unwrap(),
    );
    let receivers: Vec<_> = (0..12)
        .map(|i| svc.submit(unique_body(3000 + i)).expect("queue has room"))
        .collect();
    let accepted = receivers.len();
    let shutter = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || svc.shutdown())
    };
    let mut answered = 0;
    for rx in receivers {
        let reply = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("graceful shutdown drains every accepted request");
        assert!(matches!(reply.disposition, Disposition::Ok { .. }));
        // Exactly once: the channel held one reply and is now closed.
        assert!(rx.try_recv().is_err(), "no duplicate replies");
        answered += 1;
    }
    shutter.join().unwrap();
    assert_eq!(answered, accepted);
    // Submissions after shutdown are refused, not hung.
    let refused = svc.call(unique_body(9999));
    assert_eq!(refused.disposition, Disposition::Overloaded);
    // The drain compacted the disk tier: a fresh open sees one dense
    // record per unique request.
    let tier = batsched_service::DiskTier::open(&path).unwrap();
    assert_eq!(tier.len(), accepted);
    drop(tier);
    std::fs::remove_file(&path).unwrap();
}

// --------------------------------------------------------- HTTP frontend

/// Sends one framed POST over `stream` and reads back (status, body).
fn http_roundtrip(stream: &mut std::net::TcpStream, path: &str, body: &str) -> (u16, String) {
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut payload = vec![0u8; content_length];
    reader.read_exact(&mut payload).expect("body");
    (status, String::from_utf8(payload).expect("utf8 body"))
}

#[test]
fn http_keepalive_connection_survives_a_worker_panic() {
    // Regression for the silent-hang: a panicking worker behind a
    // keep-alive connection must produce a well-framed 500, and the same
    // connection must keep working against the respawned pool.
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::SolverPanic)
        .key_contains("\"deadline\":75")
        .count(1)]);
    let svc = Arc::new(
        Service::try_start_with_faults(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            faults,
        )
        .unwrap(),
    );
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");

    let (status, body) = http_roundtrip(&mut stream, "/v1/schedule", &g2_body());
    assert_eq!(status, 500);
    let err: ErrorResponse = serde_json::from_str(&body).expect("typed error body");
    assert_eq!(err.error, "internal");
    assert!(err.message.contains("panicked"), "{}", err.message);

    // Same connection, next request: answered by the respawned worker.
    let (status, body) = http_roundtrip(&mut stream, "/v1/schedule", &g2_body());
    assert_eq!(status, 200);
    assert!(body.contains("\"sigma\""), "{body}");

    let (status, stats_body) = {
        let mut s2 = std::net::TcpStream::connect(addr).expect("connect stats");
        let req = "GET /v1/stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
        s2.write_all(req.as_bytes()).expect("send stats");
        let mut raw = String::new();
        s2.read_to_string(&mut raw).expect("recv stats");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status");
        let payload = raw.split_once("\r\n\r\n").expect("split").1.to_string();
        (status, payload)
    };
    assert_eq!(status, 200);
    assert!(stats_body.contains("\"worker_panics\":1"), "{stats_body}");
    assert!(stats_body.contains("\"worker_respawns\":1"), "{stats_body}");

    drop(stream);
    server.stop();
}

// ------------------------------------- fault attribution in observability

/// Extracts the unsigned integer that follows `"field":` in a span line.
fn span_field(line: &str, field: &str) -> u64 {
    let tag = format!("\"{field}\":");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("span field {field} missing: {line}"));
    line[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("span field {field} not an integer: {line}"))
}

/// Extracts one sample's value from a Prometheus text exposition.
fn metric(text: &str, sample: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            (name == sample).then(|| value.parse::<f64>().expect("numeric sample") as u64)
        })
        .unwrap_or_else(|| panic!("metric {sample} missing from exposition"))
}

/// One `Connection: close` GET, returning (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
    s.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let payload = raw
        .split_once("\r\n\r\n")
        .expect("framed response")
        .1
        .to_string();
    (status, payload)
}

#[test]
fn injected_faults_are_attributed_in_span_log_and_metrics() {
    let disk = tmp_disk("obs_faults_disk");
    let span_path = tmp_disk("obs_faults_spans");

    // Three scripted faults, each aimed at a specific request: a solver
    // panic on the g2 body, 400 ms of latency (past the 150 ms deadline)
    // on one unique body, and two failing disk appends (threshold 2, so
    // the second trips the breaker).
    let slow = unique_body(60);
    let at = slow
        .find("\"deadline\":")
        .expect("body spells its deadline");
    let slow_key = slow[at..(at + 20).min(slow.len())].to_string();
    let faults = FaultPlane::armed([
        FaultRule::always(FaultSite::SolverPanic)
            .key_contains("\"deadline\":75")
            .count(1),
        FaultRule::always(FaultSite::SolverLatency)
            .key_contains(&slow_key)
            .latency(Duration::from_millis(400))
            .count(1),
        FaultRule::always(FaultSite::DiskAppend).count(2),
    ]);
    let svc = Arc::new(
        Service::try_start_with_faults(
            ServiceConfig {
                workers: 1,
                request_timeout: Some(Duration::from_millis(150)),
                disk_path: Some(disk.clone()),
                disk_breaker_threshold: 2,
                disk_probe_interval: Duration::from_secs(3600),
                log_json: Some(LogTarget::File(span_path.clone())),
                ..ServiceConfig::default()
            },
            faults,
        )
        .unwrap(),
    );
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");

    // Request 1: the injected panic answers a typed 500.
    let (status, _) = http_roundtrip(&mut stream, "/v1/schedule", &g2_body());
    assert_eq!(status, 500);
    // Request 2: injected latency blows the deadline, a typed 504. The
    // worker finishes the solve anyway; its disk append burns fault #1.
    let (status, _) = http_roundtrip(&mut stream, "/v1/schedule", &slow);
    assert_eq!(status, 504);
    std::thread::sleep(Duration::from_millis(600));
    // Request 3: a clean cold solve whose append burns fault #2 and trips
    // the breaker — the request itself still succeeds.
    let (status, _) = http_roundtrip(&mut stream, "/v1/schedule", &unique_body(61));
    assert_eq!(status, 200);

    // Degraded mode is a readiness failure, not a liveness one.
    let (status, ready) = http_get(addr, "/readyz");
    assert_eq!(status, 503, "tripped breaker must fail readiness: {ready}");
    assert!(ready.contains("disk_degraded"), "{ready}");
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "liveness is unaffected: {health}");

    // Every injected fault shows up in the scraped series.
    let (status, text) = http_get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&text, "batsched_worker_panics_total"), 1);
    assert_eq!(metric(&text, "batsched_internal_errors_total"), 1);
    assert_eq!(metric(&text, "batsched_timeouts_total"), 1);
    assert_eq!(metric(&text, "batsched_disk_errors_total"), 2);
    assert_eq!(metric(&text, "batsched_disk_breaker_trips_total"), 1);
    assert_eq!(metric(&text, "batsched_disk_breaker_open"), 1);
    assert_eq!(metric(&text, "batsched_ready"), 0);
    assert_eq!(
        metric(&text, "batsched_fault_injected_total"),
        4,
        "panic + latency + two disk appends"
    );
    // Histogram counts: three requests served end-to-end, three handled
    // by the worker (the timed-out solve still ran to completion).
    assert_eq!(metric(&text, "batsched_request_duration_us_count"), 3);
    assert_eq!(
        metric(&text, "batsched_stage_duration_us_count{stage=\"solve\"}"),
        3
    );

    drop(stream);
    server.stop();
    server.wait();
    svc.shutdown();

    // The span log: exactly one span per HTTP request, each attributing
    // its outcome (and, where the trace survived, its stages) correctly.
    let raw = std::fs::read_to_string(&span_path).expect("span log written");
    let spans: Vec<&str> = raw.lines().filter(|l| l.contains("\"trace_id\"")).collect();
    assert_eq!(spans.len(), 3, "one span per request: {raw}");

    assert!(
        spans[0].contains("\"outcome\":\"internal\""),
        "{}",
        spans[0]
    );
    assert!(spans[0].contains("\"status\":500"), "{}", spans[0]);
    assert!(spans[0].contains("\"level\":\"error\""), "{}", spans[0]);
    assert!(spans[0].contains("\"injected\":true"), "{}", spans[0]);

    assert!(spans[1].contains("\"outcome\":\"timeout\""), "{}", spans[1]);
    assert!(spans[1].contains("\"status\":504"), "{}", spans[1]);
    assert!(spans[1].contains("\"level\":\"warn\""), "{}", spans[1]);

    assert!(spans[2].contains("\"outcome\":\"solved\""), "{}", spans[2]);
    assert!(spans[2].contains("\"status\":200"), "{}", spans[2]);
    assert!(
        spans[2].contains("\"injected\":true"),
        "the failed append marks the request fault-involved: {}",
        spans[2]
    );
    assert!(span_field(spans[2], "solve_us") > 0, "{}", spans[2]);
    assert!(
        span_field(spans[2], "disk_us") > 0,
        "the failed append attempt is attributed to the disk stage: {}",
        spans[2]
    );
    // Stage attribution reconciles: the staged times (plus `other_us`)
    // sum exactly to the end-to-end latency.
    let staged = [
        "read_us",
        "queue_us",
        "parse_us",
        "hash_us",
        "cache_us",
        "disk_us",
        "solve_us",
        "serialize_us",
        "write_us",
        "other_us",
    ]
    .iter()
    .map(|f| span_field(spans[2], f))
    .sum::<u64>();
    assert_eq!(staged, span_field(spans[2], "total_us"), "{}", spans[2]);

    std::fs::remove_file(&disk).unwrap();
    std::fs::remove_file(&span_path).unwrap();
}

#[test]
fn http_timeout_maps_to_504_and_keeps_the_connection() {
    let faults = FaultPlane::armed([FaultRule::always(FaultSite::SolverLatency)
        .latency(Duration::from_millis(400))
        .count(1)]);
    let svc = Arc::new(
        Service::try_start_with_faults(
            ServiceConfig {
                workers: 1,
                request_timeout: Some(Duration::from_millis(80)),
                ..ServiceConfig::default()
            },
            faults,
        )
        .unwrap(),
    );
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");

    let (status, body) = http_roundtrip(&mut stream, "/v1/schedule", &unique_body(40));
    assert_eq!(status, 504);
    let err: ErrorResponse = serde_json::from_str(&body).expect("typed error body");
    assert_eq!(err.error, "timeout");

    // Well-framed: the same connection serves the next request once the
    // slow solve has drained.
    std::thread::sleep(Duration::from_millis(500));
    let (status, body) = http_roundtrip(&mut stream, "/v1/schedule", &unique_body(41));
    assert_eq!(status, 200, "{body}");

    drop(stream);
    server.stop();
}
