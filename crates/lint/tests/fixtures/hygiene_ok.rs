//! crate-hygiene fixture: a clean crate root.
#![forbid(unsafe_code)]

fn fine() -> u32 {
    7
}
