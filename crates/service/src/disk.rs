//! The disk cache tier: an append-only file of `{key, body}` records so a
//! restarted daemon serves previously computed answers as warm hits.
//!
//! Two record formats coexist in one file, distinguished by the first
//! byte of each record:
//!
//! * **v1** (JSONL, the compat format): one line per record,
//!   `{"key":"<16-hex>","body":"<response>"}` — always starts with `{`;
//! * **v2** (binary, the default): `0x00 'B' '2'` tag, key as 8 LE bytes,
//!   blob length as 4 LE bytes, then the [`crate::wire_bin`] response
//!   encoding, terminated by `\n`. A raw `0x00` can never open a valid v1
//!   line (JSON escapes control bytes), so the dispatch is unambiguous.
//!   v2 records are materially smaller and index without parsing any
//!   JSON, shrinking both the file and the load-on-start scan.
//!
//! On open the file is scanned once to build a key → record-span index
//! (last record per key wins); bodies stay on disk and are read on
//! demand, so the tier's memory cost is the index, not the payloads. A
//! torn tail — the daemon was killed mid-append — is truncated back to
//! the last whole record, so the next append starts clean. Writes go
//! through an append handle and are flushed per record, so a crash loses
//! at most the record being written. [`DiskTier::compact`] rewrites the
//! file with exactly one record per live key (temp file + atomic rename)
//! in the tier's configured format — compacting a [`DiskFormat::V2`] tier
//! upgrades any v1 records in place; the service runs it on graceful
//! shutdown so restarts load a dense file.
//!
//! A v2 `put` only stores bodies that survive a decode→re-render
//! bit-identity check (the cache contract is bit-identical replay);
//! anything else — hostile or free-form bodies included — falls back to a
//! v1 line, which stores arbitrary strings.
//!
//! Responses are pure functions of the canonical key, so a key that is
//! already present is never re-appended — the file grows with *distinct*
//! requests, not with traffic.

use crate::faults::{FaultPlane, FaultSite};
use crate::wire::ScheduleResponse;
use crate::wire_bin;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When appended records are fsynced to stable storage. Flushing (which
/// every `put` does) hands the bytes to the OS; only an fsync survives a
/// power loss. `Always` pays one `fdatasync` per new record, `EveryN`
/// amortises it, `Never` trusts the OS page cache (the pre-existing
/// behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync on `put`; an OS crash can lose every record since boot.
    Never,
    /// Fsync after every `n` appended records (must be ≥ 1).
    EveryN(u32),
    /// Fsync after each appended record.
    Always,
}

impl Default for FsyncPolicy {
    /// Fsync every 8 records: bounded loss without a per-record fsync.
    fn default() -> Self {
        FsyncPolicy::EveryN(8)
    }
}

/// Which record format [`DiskTier::put`] and [`DiskTier::compact`] write.
/// Both formats always *load*; this only chooses what new records look
/// like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskFormat {
    /// JSONL records (`{"key":...,"body":...}` lines) — the compat format
    /// every prior release wrote.
    V1,
    /// Compact binary records (the [`crate::wire_bin`] response encoding).
    #[default]
    V2,
}

/// First bytes of a v2 record: a byte no valid JSON line can start with,
/// then a human-greppable format marker.
const V2_TAG: [u8; 3] = [0x00, b'B', b'2'];

/// v2 fixed header: 3-byte tag + 8-byte key + 4-byte blob length.
const V2_HEADER_LEN: usize = 15;

/// One persisted cache record (a single JSONL line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DiskRecord {
    /// Canonical content hash, 16 hex digits (the response `key` format).
    key: String,
    /// The complete serialised response body, replayed bit-identically.
    body: String,
}

/// Byte span of one record line within the cache file.
#[derive(Debug, Clone, Copy)]
struct Span {
    offset: u64,
    len: u32,
}

/// The persistent result-cache tier behind the in-memory shards.
#[derive(Debug)]
pub struct DiskTier {
    path: PathBuf,
    /// Append handle; all writes are whole flushed lines.
    writer: BufWriter<File>,
    /// Independent read handle for on-demand body loads.
    reader: File,
    /// key → span of the latest record for it.
    index: HashMap<u64, Span>,
    /// Where the next append lands (== current file length).
    end: u64,
    /// When appended records are fsynced.
    fsync: FsyncPolicy,
    /// Appends since the last fsync (drives [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    /// Record format written by `put`/`compact` (both formats load).
    format: DiskFormat,
    /// Injection probes for chaos tests; disarmed in production.
    faults: FaultPlane,
}

impl DiskTier {
    /// Opens (creating if absent) the cache file at `path` and indexes its
    /// records, with the default fsync policy, record format, and a
    /// disarmed fault plane. Malformed or truncated records are skipped,
    /// not fatal — a crash mid-append must not brick the tier.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (unreachable path, permissions).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<DiskTier> {
        Self::open_with(path, FsyncPolicy::default(), FaultPlane::disarmed())
    }

    /// Opens the tier with an explicit fsync policy and fault plane, in
    /// the default record format.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (unreachable path, permissions).
    pub fn open_with(
        path: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        faults: FaultPlane,
    ) -> io::Result<DiskTier> {
        Self::open_with_format(path, fsync, faults, DiskFormat::default())
    }

    /// Opens the tier with every knob explicit, including the record
    /// format new appends are written in.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (unreachable path, permissions).
    pub fn open_with_format(
        path: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        faults: FaultPlane,
        format: DiskFormat,
    ) -> io::Result<DiskTier> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let reader = File::open(&path)?;
        let (index, valid_end, file_end) = index_file(&path)?;
        // Repair a torn tail (crash mid-append): truncate back to the last
        // whole record so the next append starts a clean one. The repair
        // is fsynced unconditionally — it happens once per boot and losing
        // it would re-tear the tail on the next crash.
        if file_end > valid_end {
            faults.disk_gate(FaultSite::DiskWrite, "torn-tail-repair")?;
            file.set_len(valid_end)?;
            file.sync_data()?;
        }
        Ok(DiskTier {
            path,
            writer: BufWriter::new(file),
            reader,
            index,
            end: valid_end,
            fsync,
            unsynced: 0,
            format,
            faults,
        })
    }

    /// The file this tier persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The record format new appends and compactions are written in.
    pub fn format(&self) -> DiskFormat {
        self.format
    }

    /// Number of distinct keys on disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Reads the body stored for `key`, if any. A record that no longer
    /// parses (torn by an unclean shutdown mid-compaction) is dropped from
    /// the index and reported as a miss — only real I/O failures are
    /// errors, so the caller's breaker can tell "the disk is sick" apart
    /// from "we never stored that".
    ///
    /// # Errors
    ///
    /// Propagates read failures (and injected [`FaultSite::DiskRead`]
    /// faults).
    pub fn get(&mut self, key: u64) -> io::Result<Option<String>> {
        let Some(span) = self.index.get(&key).copied() else {
            return Ok(None);
        };
        self.faults.disk_gate(FaultSite::DiskRead, &key_hex(key))?;
        match self.read_span(span)? {
            Some((stored, body)) if stored == key => Ok(Some(body)),
            _ => {
                self.index.remove(&key);
                Ok(None)
            }
        }
    }

    /// Persists `body` under `key`. Already-present keys are skipped:
    /// responses are pure functions of the canonical key, so the first
    /// record is as good as any later one.
    ///
    /// # Errors
    ///
    /// Propagates write failures (and injected [`FaultSite::DiskAppend`]
    /// faults); the index is only updated after the record is flushed.
    pub fn put(&mut self, key: u64, body: &str) -> io::Result<()> {
        if self.index.contains_key(&key) {
            return Ok(());
        }
        self.faults
            .disk_gate(FaultSite::DiskAppend, &key_hex(key))?;
        let record = encode_record(self.format, key, body);
        self.writer.write_all(&record)?;
        self.writer.flush()?;
        match self.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::Always => self.writer.get_ref().sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.writer.get_ref().sync_data()?;
                    self.unsynced = 0;
                }
            }
        }
        self.index.insert(
            key,
            Span {
                offset: self.end,
                len: record.len() as u32,
            },
        );
        self.end += record.len() as u64;
        Ok(())
    }

    /// Rewrites the file with exactly one record per live key, dropping
    /// duplicates and torn records, in the tier's configured format — so
    /// compacting a [`DiskFormat::V2`] tier upgrades v1 lines in place.
    /// Writes a sibling temp file first and renames it over the original,
    /// so a crash mid-compaction leaves either the old file or the new
    /// one — never a half file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the original file is untouched.
    pub fn compact(&mut self) -> io::Result<()> {
        self.faults.disk_gate(FaultSite::DiskWrite, "compact")?;
        self.writer.flush()?;
        let tmp_path = self.path.with_extension("compact-tmp");
        let mut new_index = HashMap::with_capacity(self.index.len());
        let mut offset = 0u64;
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            let mut keys: Vec<u64> = self.index.keys().copied().collect();
            keys.sort_unstable(); // deterministic file layout
            for key in keys {
                let span = self.index[&key];
                let Some((stored, body)) = self.read_span(span)? else {
                    continue; // torn record: drop it
                };
                if stored != key {
                    continue;
                }
                let record = encode_record(self.format, key, &body);
                tmp.write_all(&record)?;
                new_index.insert(
                    key,
                    Span {
                        offset,
                        len: record.len() as u32,
                    },
                );
                offset += record.len() as u64;
            }
            tmp.flush()?;
            // Make the data durable before the rename becomes visible:
            // without this, a power loss can persist the directory entry
            // while the new file's blocks are still in the page cache.
            tmp.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen both handles: the rename replaced the inode they pointed at.
        self.writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.reader = File::open(&self.path)?;
        self.index = new_index;
        self.end = offset;
        self.unsynced = 0;
        Ok(())
    }

    /// Reads one record (either format). I/O failures are errors; a record
    /// that no longer parses is `Ok(None)` (stale index entry, not a sick
    /// disk).
    fn read_span(&mut self, span: Span) -> io::Result<Option<(u64, String)>> {
        self.reader.seek(SeekFrom::Start(span.offset))?;
        let mut raw = vec![0u8; span.len as usize];
        if let Err(e) = self.reader.read_exact(&mut raw) {
            // A span past EOF means the file shrank under us (external
            // truncation / torn compaction): a stale entry, not a sick disk.
            return if e.kind() == io::ErrorKind::UnexpectedEof {
                Ok(None)
            } else {
                Err(e)
            };
        }
        Ok(parse_record(&raw))
    }
}

fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Renders one record in `format`. V2 only stores bodies that replay
/// bit-identically through the binary response codec (decode→re-render
/// must reproduce `body` exactly); anything else falls back to a v1 line,
/// which can hold an arbitrary string.
fn encode_record(format: DiskFormat, key: u64, body: &str) -> Vec<u8> {
    if format == DiskFormat::V2 {
        if let Ok(resp) = serde_json::from_str::<ScheduleResponse>(body) {
            if serde_json::to_string(&resp).as_deref() == Ok(body) {
                let blob = wire_bin::encode_response(&resp);
                let mut out = Vec::with_capacity(V2_HEADER_LEN + blob.len() + 1);
                out.extend_from_slice(&V2_TAG);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                out.extend_from_slice(&blob);
                out.push(b'\n');
                return out;
            }
        }
    }
    let rec = DiskRecord {
        key: key_hex(key),
        body: body.to_string(),
    };
    // lint:allow(panic-path): serialising DiskRecord (two owned strings) cannot
    // fail; this runs before the bytes ever reach the append path.
    let mut line = serde_json::to_string(&rec).expect("records serialise");
    line.push('\n');
    line.into_bytes()
}

/// Splits a v2 record header into `(key, blob length)`; `None` when the
/// tag does not match. All access is checked — disk bytes are untrusted
/// input and must never panic the reading thread.
fn parse_v2_header(header: &[u8]) -> Option<(u64, u64)> {
    if !header.starts_with(&V2_TAG) {
        return None;
    }
    let key = u64::from_le_bytes(header.get(3..11)?.try_into().ok()?);
    let len = u64::from(u32::from_le_bytes(header.get(11..15)?.try_into().ok()?));
    Some((key, len))
}

/// Parses one whole record in either format, returning its key and the
/// body as the canonical JSON string the cache replays.
fn parse_record(raw: &[u8]) -> Option<(u64, String)> {
    if raw.first() == Some(&0u8) {
        if raw.len() < V2_HEADER_LEN + 1 || raw.last() != Some(&b'\n') {
            return None;
        }
        let (key, len) = parse_v2_header(raw.get(..V2_HEADER_LEN)?)?;
        let len = len as usize;
        if raw.len() != V2_HEADER_LEN + len + 1 {
            return None;
        }
        let resp = wire_bin::decode_response(raw.get(V2_HEADER_LEN..V2_HEADER_LEN + len)?).ok()?;
        Some((key, serde_json::to_string(&resp).ok()?))
    } else {
        let line = std::str::from_utf8(raw).ok()?;
        let rec: DiskRecord = serde_json::from_str(line.trim_end()).ok()?;
        Some((u64::from_str_radix(&rec.key, 16).ok()?, rec.body))
    }
}

/// Scans the whole file once, returning the last-wins span index, the end
/// of the last whole record (where appends continue after the torn tail,
/// if any, is truncated), and the file's current length.
///
/// v1 lines are framed by `\n`; a malformed-but-terminated line mid-file
/// is skipped and scanning continues. v2 records are framed by their
/// declared length; an incomplete header/blob or a record that does not
/// end in `\n` (torn append) stops the scan there, as does a v1 tail with
/// no `\n` — everything past that point is the torn tail.
fn index_file(path: &Path) -> io::Result<(HashMap<u64, Span>, u64, u64)> {
    let file = File::open(path)?;
    let file_end = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut index = HashMap::new();
    let mut offset = 0u64;
    let mut raw = Vec::new();
    loop {
        let first = {
            let buf = reader.fill_buf()?;
            match buf.first() {
                Some(&b) => b,
                None => break,
            }
        };
        if first == 0x00 {
            // v2: fixed header, then a length-framed blob + newline. Any
            // framing shortfall is a torn tail — stop scanning here.
            let mut header = [0u8; V2_HEADER_LEN];
            if reader.read_exact(&mut header).is_err() {
                break;
            }
            let Some((key, len)) = parse_v2_header(&header) else {
                break;
            };
            let remaining = file_end - offset - V2_HEADER_LEN as u64;
            if len + 1 > remaining {
                break;
            }
            raw.resize(len as usize + 1, 0);
            if reader.read_exact(&mut raw).is_err() || raw.last() != Some(&b'\n') {
                break;
            }
            let total = V2_HEADER_LEN as u64 + len + 1;
            index.insert(
                key,
                Span {
                    offset,
                    len: total as u32,
                },
            );
            offset += total;
        } else {
            raw.clear();
            let n = reader.read_until(b'\n', &mut raw)?;
            if n == 0 || raw.last() != Some(&b'\n') {
                break;
            }
            if let Some(key) = parse_line_key(&raw) {
                index.insert(
                    key,
                    Span {
                        offset,
                        len: n as u32,
                    },
                );
            }
            offset += n as u64;
        }
    }
    Ok((index, offset, file_end))
}

/// Parses just the key out of a v1 record line (the body is left on disk).
fn parse_line_key(raw: &[u8]) -> Option<u64> {
    let line = std::str::from_utf8(raw).ok()?;
    let rec: DiskRecord = serde_json::from_str(line.trim_end()).ok()?;
    u64::from_str_radix(&rec.key, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("batsched_disk_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join(format!("{name}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// A canonical response body: round-trips bit-identically through
    /// serde, so a V2 tier stores it as a binary record.
    fn sample_response_json() -> String {
        let resp = ScheduleResponse {
            v: 1,
            key: "00aabbccddeeff11".into(),
            model: "rv".into(),
            order: vec![0, 2, 1],
            assignment: vec![1, 0, 3],
            sigma: 1234.5678,
            makespan: 74.9,
            deadline: 75.0,
            direct_charge: 1111.25,
            model_cost: 1300.0625,
            survives: Some(true),
            lifetime: None,
            iterations: 12,
        };
        serde_json::to_string(&resp).unwrap()
    }

    #[test]
    fn put_get_and_reload_round_trip() {
        let path = tmp_path("round_trip");
        let mut t = DiskTier::open(&path).unwrap();
        assert!(t.is_empty());
        t.put(1, "{\"answer\":42}").unwrap();
        t.put(2, "two\nlines \"quoted\" é").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().as_deref(), Some("{\"answer\":42}"));
        assert_eq!(
            t.get(2).unwrap().as_deref(),
            Some("two\nlines \"quoted\" é")
        );
        assert_eq!(t.get(3).unwrap(), None);
        drop(t);

        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(2).unwrap().as_deref(),
            Some("two\nlines \"quoted\" é")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn existing_keys_are_not_reappended() {
        let path = tmp_path("no_reappend");
        let mut t = DiskTier::open(&path).unwrap();
        t.put(7, "first").unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();
        t.put(7, "second").unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        assert_eq!(t.get(7).unwrap().as_deref(), Some("first"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_truncated_and_earlier_records_survive() {
        let path = tmp_path("torn");
        let mut t = DiskTier::open(&path).unwrap();
        t.put(1, "one").unwrap();
        t.put(2, "two").unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len();
        drop(t);
        // Simulate a crash mid-append: half a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"key\":\"00000000000000").unwrap();
        }
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 2, "torn line dropped");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail truncated back to the last whole record"
        );
        assert_eq!(t.get(1).unwrap().as_deref(), Some("one"));
        // New appends land where the torn bytes were and still read back.
        t.put(3, "three").unwrap();
        assert_eq!(t.get(3).unwrap().as_deref(), Some("three"));
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(3).unwrap().as_deref(), Some("three"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_v2_record_is_truncated_at_every_cut() {
        let path = tmp_path("torn_v2");
        let resp_json = sample_response_json();
        let mut t = DiskTier::open(&path).unwrap();
        t.put(1, "plain v1 body").unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let record = encode_record(DiskFormat::V2, 2, &resp_json);
        assert_eq!(record[..3], V2_TAG, "fixture must be a real v2 record");
        drop(t);
        // Append every strict prefix of a v2 record and confirm open()
        // truncates back to the clean boundary instead of mis-framing.
        for cut in 1..record.len() {
            {
                let mut f = OpenOptions::new().append(true).open(&path).unwrap();
                f.write_all(&record[..cut]).unwrap();
            }
            let mut t = DiskTier::open(&path).unwrap();
            assert_eq!(t.len(), 1, "cut {cut}: torn v2 record dropped");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                clean_len,
                "cut {cut}: truncated"
            );
            assert_eq!(t.get(1).unwrap().as_deref(), Some("plain v1 body"));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_dedups_and_drops_dead_bytes() {
        let path = tmp_path("compact");
        let mut t = DiskTier::open(&path).unwrap();
        for k in 0..8u64 {
            t.put(k, &format!("body-{k}")).unwrap();
        }
        // Dead bytes from a torn append.
        t.writer.get_mut().write_all(b"garbage no newline").unwrap();
        t.writer.get_mut().flush().unwrap();
        t.end += "garbage no newline".len() as u64;
        t.compact().unwrap();
        assert_eq!(t.len(), 8);
        for k in 0..8u64 {
            assert_eq!(
                t.get(k).unwrap().as_deref(),
                Some(format!("body-{k}").as_str())
            );
        }
        // Appending after compaction still works and reloads.
        t.put(99, "after").unwrap();
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(99).unwrap().as_deref(), Some("after"));
        assert_eq!(t.get(0).unwrap().as_deref(), Some("body-0"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_records_replay_bit_identically_and_reload() {
        let path = tmp_path("v2_round_trip");
        let body = sample_response_json();
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.format(), DiskFormat::V2, "V2 is the default");
        t.put(5, &body).unwrap();
        // The record on disk really is binary, and smaller than the JSONL
        // line the v1 format would have written.
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(raw[..3], V2_TAG);
        assert!(raw.len() < encode_record(DiskFormat::V1, 5, &body).len());
        assert_eq!(t.get(5).unwrap().as_deref(), Some(body.as_str()));
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.get(5).unwrap().as_deref(), Some(body.as_str()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_put_falls_back_to_v1_for_non_response_bodies() {
        let path = tmp_path("v2_fallback");
        let mut t = DiskTier::open(&path).unwrap();
        // Not a ScheduleResponse — must still round-trip exactly via v1.
        let hostile = "\u{0}B2 not json \n weird";
        t.put(9, hostile).unwrap();
        assert_eq!(t.get(9).unwrap().as_deref(), Some(hostile));
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(raw[0], b'{', "fallback record is a v1 JSONL line");
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.get(9).unwrap().as_deref(), Some(hostile));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mixed_v1_v2_file_loads_and_compaction_upgrades_bit_identically() {
        let path = tmp_path("v1_upgrade");
        let body = sample_response_json();
        // Write one record per format plus a free-form v1 body, by hand,
        // the way an old binary would have left the file.
        let mut t = DiskTier::open_with_format(
            &path,
            FsyncPolicy::default(),
            FaultPlane::disarmed(),
            DiskFormat::V1,
        )
        .unwrap();
        assert_eq!(t.format(), DiskFormat::V1);
        t.put(1, &body).unwrap();
        t.put(2, "free-form").unwrap();
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        t.put(3, &body).unwrap(); // lands as v2 in the same file
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1).unwrap().as_deref(), Some(body.as_str()));
        assert_eq!(t.get(2).unwrap().as_deref(), Some("free-form"));
        assert_eq!(t.get(3).unwrap().as_deref(), Some(body.as_str()));
        let before = std::fs::metadata(&path).unwrap().len();
        // Compacting the V2 tier upgrades the v1 response record; bodies
        // replay bit-identically afterwards and the file shrinks.
        t.compact().unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        assert_eq!(t.get(1).unwrap().as_deref(), Some(body.as_str()));
        assert_eq!(t.get(2).unwrap().as_deref(), Some("free-form"));
        assert_eq!(t.get(3).unwrap().as_deref(), Some(body.as_str()));
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1).unwrap().as_deref(), Some(body.as_str()));
        assert_eq!(t.get(2).unwrap().as_deref(), Some("free-form"));
        std::fs::remove_file(&path).unwrap();
    }
}
