//! Property tests for the cache tiers: the O(1) intrusive-list LRU must be
//! observation-equivalent to the retained scan-based implementation, the
//! sharded cache must answer exactly like a single-lock LRU, and the disk
//! tier must round-trip bodies bit-identically across persist → reload →
//! compact cycles.

use batsched_service::cache::{reference::ScanLruCache, LruCache, ShardedCache};
use batsched_service::disk::DiskTier;
use proptest::prelude::*;

/// One cache operation drawn by the proptests. Keys/raw hashes come from a
/// small space so collisions, overwrites and dangling aliases all happen.
#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, body: String },
    Get { key: u64 },
    Alias { raw: u64, doc: String, key: u64 },
    GetByAlias { raw: u64, doc: String },
}

/// Decodes a raw tuple into an [`Op`]. `kind` picks the variant; `a`/`b`
/// fold into keys and short documents (two doc spellings per raw hash, so
/// byte-verification mismatches occur).
fn op_of((kind, a, b): (u8, u64, u64)) -> Op {
    let doc = |x: u64| format!("doc-{}-{}", x % 13, x % 2);
    match kind % 4 {
        0 => Op::Insert {
            key: a % 13,
            body: format!("body-{a}-{b}"),
        },
        1 => Op::Get { key: a % 13 },
        2 => Op::Alias {
            raw: b % 13,
            doc: doc(b),
            key: a % 13,
        },
        _ => Op::GetByAlias {
            raw: b % 13,
            doc: doc(b),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The intrusive-list LRU observes identically to the scan-based
    /// reference under arbitrary op sequences — including evictions from
    /// tiny capacities and alias-index churn.
    #[test]
    fn linked_lru_matches_scan_reference(cap in 0usize..6, ops in prop::collection::vec((0u8..4, 0u64..64, 0u64..64), 0..120)) {
        let mut fast = LruCache::new(cap);
        let mut oracle = ScanLruCache::new(cap);
        for (step, raw_op) in ops.into_iter().enumerate() {
            let op = op_of(raw_op);
            match &op {
                Op::Insert { key, body } => {
                    fast.insert(*key, body.clone());
                    oracle.insert(*key, body.clone());
                }
                Op::Get { key } => {
                    prop_assert_eq!(fast.get(*key), oracle.get(*key), "step {}: {:?}", step, op);
                }
                Op::Alias { raw, doc, key } => {
                    fast.alias(*raw, doc.as_bytes(), *key);
                    oracle.alias(*raw, doc.as_bytes(), *key);
                }
                Op::GetByAlias { raw, doc } => {
                    prop_assert_eq!(
                        fast.get_by_alias(*raw, doc.as_bytes()),
                        oracle.get_by_alias(*raw, doc.as_bytes()),
                        "step {}: {:?}", step, op
                    );
                }
            }
            prop_assert_eq!(fast.len(), oracle.len(), "step {}: {:?}", step, op);
        }
    }

    /// With capacity ample enough that no shard evicts, the sharded cache
    /// is observation-equivalent to one single-lock LRU: same hits, same
    /// misses, same bodies, same totals — sharding must only change lock
    /// granularity, never answers.
    #[test]
    fn sharded_matches_single_lock(shards in 1usize..9, ops in prop::collection::vec((0u8..4, 0u64..64, 0u64..64), 0..120)) {
        let mut single = LruCache::new(1024);
        let sharded = ShardedCache::new(1024 * shards, shards);
        for (step, raw_op) in ops.into_iter().enumerate() {
            let op = op_of(raw_op);
            match &op {
                Op::Insert { key, body } => {
                    single.insert(*key, body.clone());
                    sharded.insert(*key, body.clone());
                }
                Op::Get { key } => {
                    prop_assert_eq!(single.get(*key), sharded.get(*key), "step {}: {:?}", step, op);
                }
                Op::Alias { raw, doc, key } => {
                    single.alias(*raw, doc.as_bytes(), *key);
                    sharded.alias(*raw, doc.as_bytes(), *key);
                }
                Op::GetByAlias { raw, doc } => {
                    prop_assert_eq!(
                        single.get_by_alias(*raw, doc.as_bytes()),
                        sharded.get_by_alias(*raw, doc.as_bytes()),
                        "step {}: {:?}", step, op
                    );
                }
            }
            prop_assert_eq!(single.len(), sharded.len(), "step {}: {:?}", step, op);
        }
    }

    /// Disk-tier round trip: persist a set of (key, body) records — with
    /// hostile bodies (quotes, backslashes, newlines, unicode, long runs)
    /// — reload from disk, compact, reload again; every body must come
    /// back bit-identical at each stage.
    #[test]
    fn disk_tier_round_trips_bit_identically(case in 0u64..1_000_000, records in prop::collection::vec((0u64..1_000_000_000, 0u8..6, 1usize..40), 1..24)) {
        let dir = std::env::temp_dir().join("batsched_cache_tiers");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("roundtrip_{}_{case}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Hostile body alphabet: JSON metacharacters, control chars,
        // multibyte UTF-8.
        let fragment = |style: u8, n: usize| -> String {
            let unit = match style {
                0 => "\"quoted\" ",
                1 => "back\\slash\\",
                2 => "line\nbreak\ttab ",
                3 => "ünïcödé-β∂σ ",
                4 => "{\"nested\":[1,2.5,null]} ",
                _ => "plain ",
            };
            unit.repeat(n)
        };
        let mut expected: std::collections::HashMap<u64, String> = Default::default();
        {
            let mut tier = DiskTier::open(&path).expect("open");
            for (key, style, n) in &records {
                let body = fragment(*style, *n);
                tier.put(*key, &body).expect("put");
                // First write per key wins (responses are pure functions
                // of the key) — mirror that in the oracle.
                expected.entry(*key).or_insert(body);
            }
            for (k, body) in &expected {
                prop_assert_eq!(tier.get(*k).expect("get").as_deref(), Some(body.as_str()));
            }
        }
        {
            let mut tier = DiskTier::open(&path).expect("reopen");
            prop_assert_eq!(tier.len(), expected.len());
            for (k, body) in &expected {
                prop_assert_eq!(tier.get(*k).expect("get").as_deref(), Some(body.as_str()), "after reload");
            }
            tier.compact().expect("compact");
            for (k, body) in &expected {
                prop_assert_eq!(tier.get(*k).expect("get").as_deref(), Some(body.as_str()), "after compact");
            }
        }
        {
            let mut tier = DiskTier::open(&path).expect("reopen post-compact");
            prop_assert_eq!(tier.len(), expected.len());
            for (k, body) in &expected {
                prop_assert_eq!(tier.get(*k).expect("get").as_deref(), Some(body.as_str()), "after compact+reload");
            }
        }
        std::fs::remove_file(&path).expect("cleanup");
    }
}
