//! Capacity planning: how big a battery does the mission actually need?
//!
//! The subtlety (missed by naive `σ(end)` sizing): the apparent charge
//! *crests mid-mission* after heavy tasks and recovers later, and a battery
//! dies at the first crossing — so the peak, not the final σ, sets the
//! requirement. Add duration jitter and the margin must grow again.
//!
//! Run with: `cargo run --example capacity_planning`

use batsched::battery::analysis::{rate_capacity_curve, required_capacity};
use batsched::battery::model::peak_apparent_charge;
use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::sim::{DurationJitter, MissionSampler, Simulator};
use batsched::taskgraph::paper::g3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = g3();
    let deadline = Minutes::new(230.0);
    let plan = schedule(&graph, deadline, &SchedulerConfig::paper())?;
    let model = RvModel::date05();
    let profile = plan.schedule.to_profile(&graph);

    println!(
        "mission: G3, deadline 230 min, plan σ(end) = {:.0}\n",
        plan.cost.value()
    );

    // 1. Final σ vs peak σ.
    let (peak_at, peak) = peak_apparent_charge(&model, &profile, 64);
    println!("σ at completion : {:>7.0} mA·min", plan.cost.value());
    println!(
        "σ peak          : {:>7.0} mA·min at t = {:.1} min",
        peak.value(),
        peak_at.value()
    );
    println!(
        "naive sizing by σ(end) under-provisions by {:.1}%\n",
        (peak.value() / plan.cost.value() - 1.0) * 100.0
    );

    // 2. Verify by simulation at three capacities.
    for (label, cap) in [
        ("σ(end)       ", MilliAmpMinutes::new(plan.cost.value())),
        ("peak σ + 1%  ", required_capacity(&model, &profile, 0.01)),
        ("peak σ + 25% ", required_capacity(&model, &profile, 0.25)),
    ] {
        let sim = Simulator::paper(cap, Some(deadline));
        let r = sim.run(&graph, &plan.schedule, &model);
        println!("capacity {} = {:>7.0} -> {}", label, cap.value(), r);
    }

    // 3. Jitter changes the answer again: survival probability by margin.
    println!("\nmission success probability under ±8% duration jitter (2000 samples):");
    for margin in [0.0, 0.05, 0.10, 0.25] {
        let cap = required_capacity(&model, &profile, margin);
        let sampler = MissionSampler {
            simulator: Simulator::paper(cap, Some(deadline * 1.1)),
            jitter: DurationJitter { spread: 0.08 },
            samples: 2_000,
            seed: 7,
        };
        let r = sampler.run(&graph, &plan.schedule, &model);
        println!(
            "  peak + {:>4.0}%  ->  P(success) = {:.3}  ({} depletions)",
            margin * 100.0,
            r.success_rate,
            r.depletions
        );
    }

    // 4. And the battery's own rate-capacity curve, for context.
    println!(
        "\nrate-capacity curve of the battery model (rated {:.0} mA·min):",
        peak.value()
    );
    let currents: Vec<MilliAmps> = [50.0, 100.0, 200.0, 400.0, 800.0]
        .map(MilliAmps::new)
        .to_vec();
    for p in rate_capacity_curve(&model, peak, &currents, Minutes::new(1e6)) {
        println!(
            "  {:>4.0} mA: dies after {:>6.1} min, usable capacity {:>5.1}%",
            p.current.value(),
            p.lifetime.value(),
            p.utilisation * 100.0
        );
    }
    Ok(())
}
