//! Property-based tests for the battery models: the physical invariants
//! every model must satisfy on arbitrary discharge profiles.

use batsched_battery::ideal::CoulombCounter;
use batsched_battery::kibam::KibamModel;
use batsched_battery::model::BatteryModel;
use batsched_battery::peukert::PeukertModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::rv::RvModel;
use batsched_battery::units::{MilliAmpMinutes, MilliAmps, Minutes};
use proptest::prelude::*;

/// Arbitrary staircase profiles: 1–20 steps, currents 0–1000 mA (zero steps
/// become rest gaps), durations 0.1–30 min.
fn arb_profile() -> impl Strategy<Value = LoadProfile> {
    prop::collection::vec((0.0f64..1000.0, 0.1f64..30.0), 1..20).prop_map(|steps| {
        LoadProfile::from_steps(
            steps
                .into_iter()
                .map(|(i, d)| (Minutes::new(d), MilliAmps::new(i))),
        )
        .expect("generated steps are valid")
    })
}

fn rv() -> RvModel {
    RvModel::date05()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ never under-counts the charge actually delivered.
    #[test]
    fn rv_sigma_dominates_direct_charge(p in arb_profile()) {
        let sigma = rv().apparent_charge(&p, p.end()).value();
        prop_assert!(sigma >= p.direct_charge().value() - 1e-6);
    }

    /// Long after the load ends, σ relaxes to exactly the delivered charge.
    #[test]
    fn rv_sigma_relaxes_to_direct_charge(p in arb_profile()) {
        let far = Minutes::new(p.end().value() + 5_000.0);
        let sigma = rv().apparent_charge(&p, far).value();
        let direct = p.direct_charge().value();
        prop_assert!((sigma - direct).abs() < 1e-6 * direct.max(1.0));
    }

    /// σ is linear in the current axis: scaling every current by k scales σ
    /// by k (the diffusion model is linear in load).
    #[test]
    fn rv_sigma_is_linear_in_current(p in arb_profile(), k in 0.1f64..5.0) {
        let scaled = LoadProfile::from_steps(
            p.intervals().iter().map(|iv| (iv.duration, MilliAmps::new(iv.current.value() * k))),
        ).unwrap();
        // Rebuild without gaps for comparability: compare on equal shapes.
        let base = LoadProfile::from_steps(
            p.intervals().iter().map(|iv| (iv.duration, iv.current)),
        ).unwrap();
        let t = base.end();
        let a = rv().apparent_charge(&base, t).value();
        let b = rv().apparent_charge(&scaled, t).value();
        prop_assert!((b - k * a).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// Sorting the steps by descending current never increases σ, and
    /// sorting ascending never decreases it (the ordering theorem of
    /// Rakhmatov et al. that the paper's §3 builds on).
    #[test]
    fn rv_descending_current_order_is_never_worse(p in arb_profile()) {
        let mut steps: Vec<(Minutes, MilliAmps)> =
            p.intervals().iter().map(|iv| (iv.duration, iv.current)).collect();
        steps.sort_by(|a, b| b.1.value().partial_cmp(&a.1.value()).unwrap());
        let desc = LoadProfile::from_steps(steps.iter().copied()).unwrap();
        steps.reverse();
        let asc = LoadProfile::from_steps(steps.iter().copied()).unwrap();
        let t = desc.end();
        let s_desc = rv().apparent_charge(&desc, t).value();
        let s_asc = rv().apparent_charge(&asc, t).value();
        prop_assert!(s_desc <= s_asc + 1e-6, "desc {s_desc} > asc {s_asc}");
    }

    /// The ideal model is a lower bound on every non-ideal model for
    /// profiles evaluated at their end.
    #[test]
    fn ideal_is_the_floor(p in arb_profile()) {
        let t = p.end();
        let ideal = CoulombCounter::new().apparent_charge(&p, t).value();
        prop_assert!(rv().apparent_charge(&p, t).value() >= ideal - 1e-6);
        let kibam = KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(1e7)).unwrap();
        prop_assert!(kibam.apparent_charge(&p, t).value() >= ideal - 1e-4);
    }

    /// Peukert with exponent 1 degenerates to the ideal model.
    #[test]
    fn peukert_exponent_one_is_ideal(p in arb_profile()) {
        let m = PeukertModel::new(1.0, MilliAmps::new(123.0)).unwrap();
        let t = p.end();
        let a = m.apparent_charge(&p, t).value();
        let b = p.direct_charge_until(t).value();
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + b));
    }

    /// When lifetime() reports a death instant, σ there equals capacity
    /// (within bisection tolerance) and σ just before is below it.
    #[test]
    fn rv_lifetime_is_the_first_crossing(p in arb_profile(), frac in 0.2f64..0.9) {
        let m = rv();
        let peak = m.apparent_charge(&p, p.end()).value();
        // Also probe mid-profile to find a capacity that actually dies.
        let cap = MilliAmpMinutes::new(peak * frac);
        if cap.value() <= 0.0 { return Ok(()); }
        if let Some(death) = m.lifetime(&p, cap) {
            let at = m.apparent_charge(&p, death).value();
            prop_assert!((at - cap.value()).abs() < cap.value() * 1e-3 + 1.0,
                "sigma at death {at} vs cap {}", cap.value());
            let before = m.apparent_charge(&p, death * 0.99).value();
            prop_assert!(before <= cap.value() + 1.0);
        }
    }

    /// KiBaM conserves charge: wells + delivered = capacity.
    #[test]
    fn kibam_conserves_charge(p in arb_profile()) {
        let alpha = 1e7;
        let m = KibamModel::new(0.4, 0.08, MilliAmpMinutes::new(alpha)).unwrap();
        let t = p.end();
        // available_head = y1/c; apparent = alpha − head. Reconstructing the
        // wells isn't public API, so assert the public invariant instead:
        // apparent charge is finite, non-negative, and ≥ direct as t→end.
        let a = m.apparent_charge(&p, t).value();
        prop_assert!(a.is_finite() && a >= -1e-6);
        let far = Minutes::new(t.value() + 50_000.0);
        let relaxed = m.apparent_charge(&p, far).value();
        prop_assert!((relaxed - p.direct_charge().value()).abs() < 1e-3,
            "kibam must equilibrate to the delivered charge, got {relaxed}");
    }

    /// Clipping: evaluating at time t only sees the profile prefix.
    #[test]
    fn rv_sigma_only_depends_on_the_prefix(p in arb_profile(), cut in 0.1f64..0.9) {
        let t = Minutes::new(p.end().value() * cut);
        let full = rv().apparent_charge(&p, t).value();
        // Rebuild a truncated profile.
        let mut trunc = LoadProfile::new();
        for iv in p.intervals() {
            if iv.start.value() >= t.value() { break; }
            let d = iv.duration.value().min(t.value() - iv.start.value());
            if d > 0.0 {
                trunc.insert(iv.start, Minutes::new(d), iv.current).unwrap();
            }
        }
        let cut_sigma = rv().apparent_charge(&trunc, t).value();
        prop_assert!((full - cut_sigma).abs() < 1e-6 * (1.0 + full));
    }
}
