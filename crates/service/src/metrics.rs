//! Hand-rolled metrics primitives: a fixed-boundary log-bucket latency
//! histogram with atomic buckets and mergeable snapshots, plus the
//! Prometheus text-exposition rendering helpers behind `GET /v1/metrics`.
//!
//! No external dependencies: the bucket boundaries are a compile-time
//! 1–2–5 ladder in microseconds (1 µs … 60 s), wide enough that a cache
//! hit (~tens of µs) and a pathological 60 s solve land in distinct
//! buckets while the whole histogram stays 25 counters. `observe` is two
//! relaxed atomic adds and a branch-free binary search — cheap enough to
//! sit on the cache-hit fast path.
//!
//! [`HistogramSnapshot`] is the *shared* histogram type: the service
//! snapshots its atomic histograms into it for rendering and quantiles,
//! and `loadgen` accumulates into it directly (single-threaded, no
//! atomics) so benchmark percentiles and service percentiles come from
//! the same estimator.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bucket boundaries in microseconds (`le` values), ascending.
/// Observations above the last boundary land in the overflow bucket
/// (`le="+Inf"`).
pub const BUCKET_BOUNDS_US: [u64; 24] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Buckets per histogram: one per boundary plus the overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// Index of the bucket an observation of `us` microseconds falls into
/// (`BUCKET_BOUNDS_US.len()` = overflow).
fn bucket_index(us: u64) -> usize {
    BUCKET_BOUNDS_US.partition_point(|&b| b < us)
}

/// The largest finite bucket boundary (the value percentile estimation
/// reports when the mass lands in the overflow bucket).
fn last_finite_bound() -> u64 {
    BUCKET_BOUNDS_US.last().copied().unwrap_or(0)
}

/// A concurrent fixed-boundary histogram: per-bucket atomic counters plus
/// an atomic sum/count pair. Microsecond observations only — the unit is
/// part of the metric name, not the type.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn observe(&self, us: u64) {
        self.buckets[bucket_index(us).min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (consistent enough: buckets are read after
    /// sum/count, so a racing `observe` can at worst appear in the buckets
    /// but not yet in the totals by one observation).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain (non-atomic) histogram over the same boundaries: the snapshot
/// of a [`Histogram`], the accumulator `loadgen` fills directly, and the
/// unit both sides derive quantiles from. Mergeable by bucket-wise
/// addition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (index = [`BUCKET_BOUNDS_US`] index;
    /// last = overflow).
    pub buckets: Vec<u64>,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            sum_us: 0,
            count: 0,
        }
    }

    /// Records one observation (single-threaded accumulation).
    pub fn observe(&mut self, us: u64) {
        self.buckets[bucket_index(us).min(BUCKETS - 1)] += 1;
        self.sum_us += us;
        self.count += 1;
    }

    /// Adds `other`'s observations into `self` (bucket-wise; both sides
    /// share the compile-time boundaries, so merging is exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_us += other.sum_us;
        self.count += other.count;
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in microseconds: finds the
    /// bucket holding the target rank and interpolates linearly inside
    /// it. The estimate is bounded by the bucket (never off by more than
    /// one bucket width); the overflow bucket reports its lower boundary.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let Some(&upper) = BUCKET_BOUNDS_US.get(i) else {
                    // Overflow bucket: no upper boundary to interpolate
                    // toward; report the last finite boundary.
                    return last_finite_bound() as f64;
                };
                let lower = if i == 0 {
                    0
                } else {
                    BUCKET_BOUNDS_US.get(i - 1).copied().unwrap_or(0)
                } as f64;
                let frac = (target - cum as f64) / c as f64;
                return lower + (upper as f64 - lower) * frac;
            }
            cum = next;
        }
        last_finite_bound() as f64
    }

    /// Mean observation in microseconds (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// Appends one `# TYPE` header line.
pub(crate) fn render_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Appends one `name{labels} value` sample line (`labels` already
/// rendered, without braces; empty = no label set).
pub(crate) fn render_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Appends a full Prometheus histogram family member — cumulative
/// `_bucket` series (including `le="+Inf"`), `_sum` and `_count` — with
/// `labels` (e.g. `stage="solve"`) merged into each bucket's label set.
pub(crate) fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    snap: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate() {
        cum += c;
        let le = match BUCKET_BOUNDS_US.get(i) {
            Some(b) => b.to_string(),
            None => "+Inf".to_string(),
        };
        let sep = if labels.is_empty() { "" } else { "," };
        let full = format!("{labels}{sep}le=\"{le}\"");
        render_sample(out, &format!("{name}_bucket"), &full, cum);
    }
    render_sample(out, &format!("{name}_sum"), labels, snap.sum_us);
    render_sample(out, &format!("{name}_count"), labels, snap.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_le_semantics() {
        // An observation equal to a boundary lands in that boundary's
        // bucket (Prometheus `le` is inclusive).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1_000), 9);
        assert_eq!(bucket_index(1_001), 10);
        assert_eq!(bucket_index(60_000_000), BUCKET_BOUNDS_US.len() - 1);
        assert_eq!(bucket_index(60_000_001), BUCKET_BOUNDS_US.len());
    }

    #[test]
    fn atomic_and_plain_histograms_agree() {
        let h = Histogram::new();
        let mut s = HistogramSnapshot::new();
        for us in [0, 1, 7, 499, 500, 501, 70_000_000] {
            h.observe(us);
            s.observe(us);
        }
        assert_eq!(h.snapshot(), s);
        assert_eq!(s.count, 7);
        assert_eq!(s.sum_us, 1 + 7 + 499 + 500 + 501 + 70_000_000);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        for us in [3, 40, 900] {
            a.observe(us);
        }
        for us in [4, 41, 901, 5_000_000] {
            b.observe(us);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut oracle = HistogramSnapshot::new();
        for us in [3, 40, 900, 4, 41, 901, 5_000_000] {
            oracle.observe(us);
        }
        assert_eq!(merged, oracle);
    }

    #[test]
    fn quantiles_bound_the_sorted_vec_oracle() {
        // The histogram quantile must land within the bucket that holds
        // the oracle value (the estimator's documented error bound).
        let values: Vec<u64> = (0..1000).map(|i| (i * i) % 90_000 + 1).collect();
        let mut h = HistogramSnapshot::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let oracle = sorted[((sorted.len() - 1) as f64 * q) as usize];
            let est = h.quantile(q);
            let oracle_bucket = bucket_index(oracle);
            let lower = if oracle_bucket == 0 {
                0
            } else {
                BUCKET_BOUNDS_US[oracle_bucket - 1]
            } as f64;
            let upper = BUCKET_BOUNDS_US[oracle_bucket] as f64;
            assert!(
                est >= lower && est <= upper,
                "q={q}: estimate {est} outside oracle bucket [{lower}, {upper}] (oracle {oracle})"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramSnapshot::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        let mut one = HistogramSnapshot::new();
        one.observe(7);
        // A single observation: every quantile lands in its bucket.
        for q in [0.0, 0.5, 1.0] {
            let est = one.quantile(q);
            assert!((5.0..=10.0).contains(&est), "q={q} -> {est}");
        }
        // Everything in the overflow bucket reports the last boundary.
        let mut over = HistogramSnapshot::new();
        over.observe(120_000_000);
        assert_eq!(over.quantile(0.5), 60_000_000.0);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_complete() {
        let mut s = HistogramSnapshot::new();
        for us in [1, 3, 70_000_000] {
            s.observe(us);
        }
        let mut out = String::new();
        render_histogram(&mut out, "x_us", "stage=\"solve\"", &s);
        assert!(
            out.contains("x_us_bucket{stage=\"solve\",le=\"1\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("x_us_bucket{stage=\"solve\",le=\"5\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("x_us_bucket{stage=\"solve\",le=\"+Inf\"} 3\n"),
            "{out}"
        );
        assert!(
            out.contains("x_us_sum{stage=\"solve\"} 70000004\n"),
            "{out}"
        );
        assert!(out.contains("x_us_count{stage=\"solve\"} 3\n"), "{out}");
        // +Inf bucket equals _count — the exposition-format invariant.
        let inf: u64 = out
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(inf, s.count);
    }
}
